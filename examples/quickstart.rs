//! Quickstart: build a single-core system, run Pythia against the
//! no-prefetching baseline on a delta-pattern workload, and print the
//! paper's metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pythia::runner::{run_workload, RunSpec};
use pythia_stats::metrics::compare;
use pythia_workloads::generators::PatternKind;
use pythia_workloads::suites::Suite;
use pythia_workloads::{TraceSpec, Workload};

fn main() {
    // 1. Describe a workload: a GemsFDTD-like sweep that touches each 4 KB
    //    page at offsets 0 and +23 (the paper's §6.5 case study pattern).
    let workload = Workload {
        name: "quickstart-gems".into(),
        suite: Suite::Spec06,
        spec: TraceSpec::new(
            "quickstart-gems",
            PatternKind::PageVisit {
                offsets: vec![0, 23],
            },
        )
        .with_seed(7),
    };

    // 2. Pick the simulated system: Table 5's single-core configuration
    //    with a scaled-down warmup/measure budget.
    let spec = RunSpec::single_core().with_budget(100_000, 400_000);

    // 3. Run the no-prefetching baseline and Pythia.
    let baseline = run_workload(&workload, "none", &spec);
    let pythia = run_workload(&workload, "pythia", &spec);

    // 4. Compare using the paper's Appendix A.6 metrics.
    let m = compare(&baseline, &pythia);
    println!("workload             : {}", workload.name);
    println!("baseline IPC         : {:.3}", baseline.geomean_ipc());
    println!("pythia IPC           : {:.3}", pythia.geomean_ipc());
    println!("speedup              : {:.3}x", m.speedup);
    println!("prefetch coverage    : {:.1}%", m.coverage * 100.0);
    println!("overprediction       : {:.1}%", m.overprediction * 100.0);
    println!("baseline LLC MPKI    : {:.1}", m.baseline_mpki);

    assert!(m.speedup > 1.0, "Pythia should beat no-prefetching here");
}
