//! Bandwidth scaling: reproduce the shape of Fig. 8(b) on two workloads.
//!
//! As per-core DRAM bandwidth shrinks from 9600 MTPS (desktop-like) to
//! 150 MTPS (server-like share), bandwidth-oblivious prefetchers lose their
//! gains while Pythia degrades gracefully.
//!
//! ```text
//! cargo run --release --example bandwidth_scaling
//! ```

use pythia::runner::{run_workload, RunSpec};
use pythia_sim::config::SystemConfig;
use pythia_stats::metrics::compare;
use pythia_stats::report::ascii_series;
use pythia_workloads::all_suites;

fn main() {
    let pool = all_suites();
    let workload = pool
        .iter()
        .find(|w| w.name == "PARSEC-Facesim")
        .expect("facesim");
    let prefetchers = ["mlop", "bingo", "pythia"];
    let mtps_points = [150u64, 600, 2400, 9600];

    for p in prefetchers {
        let mut labels = Vec::new();
        let mut values = Vec::new();
        for mtps in mtps_points {
            let spec = RunSpec::single_core()
                .with_system(SystemConfig::single_core_with_mtps(mtps))
                .with_budget(100_000, 400_000);
            let baseline = run_workload(workload, "none", &spec);
            let report = run_workload(workload, p, &spec);
            let m = compare(&baseline, &report);
            labels.push(format!("{mtps} MTPS"));
            values.push(m.speedup);
        }
        println!(
            "{}",
            ascii_series(&format!("{p} speedup vs bandwidth"), &labels, &values, 40)
        );
    }
    println!(
        "Note the crossover: aggressive prefetchers win with ample bandwidth\n\
         but fall hardest when the bus is scarce; Pythia's bandwidth-aware\n\
         rewards keep it out of trouble (paper §6.2.2)."
    );
}
