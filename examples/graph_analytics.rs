//! Reward customization on graph analytics: the paper's §6.6.1 scenario.
//!
//! Ligra-style graph kernels are bandwidth-hungry and intolerant of
//! inaccurate prefetches. This example runs a Ligra-CC-like workload under
//! three Pythia reward configurations — basic (Table 2), strict (§6.6.1)
//! and bandwidth-oblivious (§6.3.3) — and against Bingo, showing how reward
//! levels steer the same hardware toward accuracy.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use pythia::runner::{run_workload, RunSpec};
use pythia_stats::metrics::compare;
use pythia_stats::report::Table;
use pythia_workloads::suites::ligra;

fn main() {
    let workload = ligra()
        .into_iter()
        .find(|w| w.name == "Ligra-CC")
        .expect("Ligra-CC in suite");
    let spec = RunSpec::single_core().with_budget(150_000, 600_000);

    let baseline = run_workload(&workload, "none", &spec);
    let mut table = Table::new(&["prefetcher", "speedup", "coverage", "overprediction"]);
    for name in ["bingo", "pythia_bw_oblivious", "pythia", "pythia_strict"] {
        let report = run_workload(&workload, name, &spec);
        let m = compare(&baseline, &report);
        table.row(&[
            name.to_string(),
            format!("{:.3}", m.speedup),
            format!("{:.1}%", m.coverage * 100.0),
            format!("{:.1}%", m.overprediction * 100.0),
        ]);
    }
    println!("Ligra-CC-like graph kernel, single core:\n");
    println!("{}", table.to_markdown());
    println!(
        "The strict rewards (R_IN^H=-22, R_NP=0) push Pythia toward accuracy \
         on bandwidth-bound graph kernels — the paper's Fig. 14/15 effect."
    );
}
