//! Implementing your own prefetcher against the public `Prefetcher` trait
//! and racing it against the built-ins.
//!
//! The example builds a tiny "pairwise-correlation" prefetcher (remembers
//! which line followed which) and evaluates it on a pointer-chase workload
//! next to SPP and Pythia.
//!
//! ```text
//! cargo run --release --example custom_prefetcher
//! ```

use pythia::runner::{run_sources_with, run_workload, RunSpec};
use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;
use pythia_stats::metrics::compare;
use pythia_workloads::all_suites;

/// A minimal Markov-style correlation prefetcher: a direct-mapped table of
/// `line -> next line` pairs, trained on the demand stream.
struct PairwiseCorrelation {
    table: Vec<(u64, u64)>, // (line, next_line)
    last_line: u64,
    stats: PrefetcherStats,
}

impl PairwiseCorrelation {
    fn new(entries: usize) -> Self {
        Self {
            table: vec![(u64::MAX, 0); entries],
            last_line: u64::MAX,
            stats: PrefetcherStats::default(),
        }
    }

    fn slot(&self, line: u64) -> usize {
        (line as usize).wrapping_mul(0x9e3779b9) % self.table.len()
    }
}

impl Prefetcher for PairwiseCorrelation {
    fn name(&self) -> &str {
        "pairwise"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _fb: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        // Train: record that `last_line` was followed by this line.
        if self.last_line != u64::MAX {
            let idx = self.slot(self.last_line);
            self.table[idx] = (self.last_line, access.line);
        }
        self.last_line = access.line;
        // Predict: if we have a successor for this line, prefetch it.
        let (tag, next) = self.table[self.slot(access.line)];
        if tag == access.line && next != access.line {
            self.stats.issued += 1;
            out.push(PrefetchRequest::to_l2(next));
        }
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * (32 + 32)
    }
}

fn main() {
    let pool = all_suites();
    // Pointer chasing repeats the same pseudo-random permutation when the
    // trace replays, which is exactly what temporal correlation captures
    // and spatial prefetchers cannot.
    let workload = pool.iter().find(|w| w.name == "429.mcf-184B").expect("mcf");
    let spec = RunSpec::single_core().with_budget(100_000, 400_000);
    let source = workload.source(500_000);

    let baseline = run_workload(workload, "none", &spec);
    println!("pointer-chase workload, single core\n");
    for name in ["spp", "pythia"] {
        let report = run_workload(workload, name, &spec);
        let m = compare(&baseline, &report);
        println!(
            "{name:10} speedup {:.3}  coverage {:5.1}%",
            m.speedup,
            m.coverage * 100.0
        );
    }
    let report = run_sources_with(vec![source], &spec, |_| {
        Box::new(PairwiseCorrelation::new(1 << 20))
    });
    let m = compare(&baseline, &report);
    println!(
        "{:10} speedup {:.3}  coverage {:5.1}%",
        "pairwise",
        m.speedup,
        m.coverage * 100.0
    );
    println!(
        "\nA big-table temporal prefetcher can cover recurring chains that\n\
         spatial/offset prefetchers (including Pythia) cannot -- at a metadata\n\
         cost of megabytes instead of Pythia's 25.5 KB (paper §7)."
    );
}
