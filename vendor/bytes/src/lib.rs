//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits
//! with the big-endian accessors the trace codec uses.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-buffer sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read access to a byte buffer, big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a byte buffer, big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xdead_beef);
        b.put_u16(0x1234);
        b.put_u8(7);
        b.put_u64(u64::MAX - 1);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        assert_eq!(frozen.get_u32(), 0xdead_beef);
        assert_eq!(frozen.get_u16(), 0x1234);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u64(), u64::MAX - 1);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(b.slice(..2).as_ref(), &[1, 2]);
    }
}
