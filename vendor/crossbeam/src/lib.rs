//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses: a mutex-backed
//! [`queue::SegQueue`] and [`thread::scope`] built on `std::thread::scope`.

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue (mutex-backed stand-in for the
    /// lock-free original — the runner pushes all jobs before workers
    /// start, so contention is a pop-only trickle).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends `value` to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .expect("queue lock poisoned")
                .push_back(value);
        }

        /// Pops from the front of the queue, if non-empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue lock poisoned").pop_front()
        }

        /// Number of queued values.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue lock poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads.
pub mod thread {
    /// A scope handle mirroring `crossbeam::thread::Scope`; spawned
    /// closures receive a reference to it (unused by this workspace).
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Unlike crossbeam, a panicking child propagates the
    /// panic directly instead of returning `Err` (callers here `expect()`
    /// the result either way).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;

    #[test]
    fn queue_is_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scoped_threads_drain_queue() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.into_inner(), (0..100).sum::<u64>());
    }
}
