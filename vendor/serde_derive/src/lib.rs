//! No-op derive macros backing the vendored `serde` shim.
//!
//! The shim's `Serialize` / `Deserialize` traits carry blanket impls, so
//! the derives only need to exist (and accept `#[serde(...)]` helper
//! attributes); they expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
