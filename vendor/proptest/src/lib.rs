//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: range and
//! tuple strategies, `any::<T>()`, `prop_map`, `proptest::option::of`,
//! `proptest::collection::vec`, and the [`proptest!`] macro. Inputs are
//! drawn from a deterministic per-test RNG (seeded from the test's module
//! path), so failures reproduce exactly; there is no shrinking.

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 RNG used to draw test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary tag (typically the test name).
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the tag.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in tag.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                strategy: self,
                map: f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.strategy.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a default "anything goes" strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // 1-in-4 None, matching proptest's default weighting loosely.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Generates `None` or `Some(value)` from the inner strategy.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.start < self.size.end, "empty size range strategy");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// becomes a unit test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` that reports the failing property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports the failing property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports the failing property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -3i32..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn mapped_and_optional(x in (0u32..5, any::<bool>()).prop_map(|(a, b)| (a * 2, b)), o in crate::option::of(0u8..3)) {
            prop_assert!(x.0 % 2 == 0);
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }
    }
}
