//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides `Criterion`, benchmark groups, `criterion_group!` /
//! `criterion_main!` and a simple wall-clock measurement (fixed batches,
//! median-free mean) so `cargo bench` produces readable numbers without
//! the statistics machinery of the real crate.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which callers here already use).
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(200);

/// A single-benchmark timing harness.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Calls `f` repeatedly for roughly 200 ms (`MEASURE_TIME`) and records the
    /// mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE_TIME {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.nanos_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

fn report(label: &str, nanos: f64) {
    if nanos >= 1_000_000.0 {
        println!("{label:<40} time: {:>10.3} ms/iter", nanos / 1_000_000.0);
    } else if nanos >= 1_000.0 {
        println!("{label:<40} time: {:>10.3} µs/iter", nanos / 1_000.0);
    } else {
        println!("{label:<40} time: {:>10.1} ns/iter", nanos);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.nanos_per_iter);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.nanos_per_iter);
        self
    }

    /// Finishes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Benchmark driver mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(name, b.nanos_per_iter);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
