//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny API surface it actually uses: the [`Serialize`] /
//! [`Deserialize`] marker traits and the corresponding derive macros
//! (which expand to nothing — the traits carry blanket impls). Swapping in
//! the real `serde` is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// Blanket-implemented for every type; the derive macro is a no-op.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Blanket-implemented for every sized type; the derive macro is a no-op.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Mirror of `serde::de`.
pub mod de {
    pub use crate::Deserialize;

    /// Mirror of `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T> DeserializeOwned for T {}
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
