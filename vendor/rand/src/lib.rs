//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: `StdRng` (a
//! SplitMix64 generator — deterministic per seed, which is what the
//! simulator's reproducibility tests rely on), `SeedableRng::seed_from_u64`,
//! and `Rng::{gen, gen_range, gen_bool}` over integer and float ranges.

/// A source of `u64` random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a value of `T` from its standard distribution
    /// (floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `word % span`, avoiding 128-bit division when the span fits in 64 bits
/// (the overwhelmingly common case — `span` only exceeds `u64::MAX` for
/// near-full 64-bit-wide ranges). Bit-identical to the plain `u128`
/// modulo it replaces.
#[inline]
fn reduce_u64(word: u64, span: u128) -> u128 {
    match u64::try_from(span) {
        Ok(span64) => (word % span64) as u128,
        Err(_) => (word as u128) % span,
    }
}

/// Ranges that [`Rng::gen_range`] can sample values of `T` from.
pub trait SampleRange<T> {
    /// Samples a uniform value; panics if the range is empty.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = reduce_u64(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = reduce_u64(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
