//! Cell-sharding invariants of the campaign planner: any campaign split
//! into independent grid cells, executed in a shuffled order, and merged
//! back is byte-identical to the serial monolithic run — and every
//! intermediate fill level merges to a valid row-prefix of the final
//! artifact (the `?partial=1` contract at the engine layer).

use proptest::prelude::*;

use pythia_sim::stats::SimReport;
use pythia_sweep::{engine, plan_campaign, ConfigPoint, PrefetcherSpec, SweepSpec, WorkUnit};
use pythia_workloads::all_suites;

/// Deterministic Fisher–Yates driven by an LCG, so the execution order is
/// a pure function of the proptest-chosen seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// A small but structurally rich panel: several workloads, several cheap
/// prefetchers, swept configs, a seed axis. Budgets stay tiny so a
/// proptest case is milliseconds, not minutes.
fn small_spec(
    tag: &str,
    unit_picks: &[usize],
    prefetcher_picks: &[usize],
    configs: &[(u8, u8)],
    seeds: &[u64],
) -> SweepSpec {
    const NAMES: [&str; 3] = ["stride", "next_line", "streamer"];
    let pool = all_suites();
    let mut spec = SweepSpec::new(tag);
    let mut seen_units = Vec::new();
    for &pick in unit_picks {
        let key = pick % pool.len();
        if seen_units.contains(&key) {
            continue;
        }
        seen_units.push(key);
        spec.units.push(WorkUnit::single(pool[key].clone()));
    }
    let mut seen_prefetchers = Vec::new();
    for &pick in prefetcher_picks {
        let name = NAMES[pick % NAMES.len()];
        if seen_prefetchers.contains(&name) {
            continue;
        }
        seen_prefetchers.push(name);
        spec.prefetchers.push(PrefetcherSpec::named(name));
    }
    let mut seen_configs = Vec::new();
    for &(w, m) in configs {
        if seen_configs.contains(&(w, m)) {
            continue;
        }
        seen_configs.push((w, m));
        spec.configs.push(ConfigPoint::single_core(
            &format!("cfg-{w}-{m}"),
            200 + u64::from(w) * 8,
            1_000 + u64::from(m) * 16,
        ));
    }
    let mut seeds: Vec<u64> = seeds.to_vec();
    seeds.sort_unstable();
    seeds.dedup();
    spec.seeds = seeds;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The tentpole pin: shuffled cell-sharded execution == serial
    // monolithic run, byte for byte, with every intermediate fill level
    // a valid prefix merge.
    #[test]
    fn shuffled_cell_execution_merges_byte_identical_to_monolithic(
        unit_picks in proptest::collection::vec(0usize..32, 1..3),
        prefetcher_picks in proptest::collection::vec(0usize..3, 1..3),
        configs in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..3),
        seeds in proptest::collection::vec(0u64..5, 1..3),
        two_panels in any::<bool>(),
        shuffle_seed in any::<u64>(),
    ) {
        let mut specs = vec![small_spec(
            "panel-a",
            &unit_picks,
            &prefetcher_picks,
            &configs,
            &seeds,
        )];
        if two_panels {
            // Same units/configs under a second panel name: the planner
            // must share baselines across panels exactly like the
            // monolithic engine's cross-panel baseline cache does.
            specs.push(small_spec(
                "panel-b",
                &unit_picks,
                &prefetcher_picks,
                &configs,
                &seeds,
            ));
        }

        let monolithic = engine::run_all("cellprop", &specs, 1)
            .expect("generated campaign is valid")
            .stripped();

        let plan = plan_campaign("cellprop", &specs).expect("generated campaign plans");
        let mut order: Vec<usize> = (0..plan.job_count()).collect();
        shuffle(&mut order, shuffle_seed);

        let mut slots: Vec<Option<SimReport>> = vec![None; plan.job_count()];
        let mut last_rows = 0usize;
        for &flat in &order {
            slots[flat] = Some(plan.jobs()[flat].run());
            // Every fill level — i.e. every split granularity a scheduler
            // could pause at — merges to a monotonic row-prefix.
            let partial = plan.merge_prefix(&slots).expect("prefix merges");
            let rows = partial.baselines.len() + partial.cells.len();
            prop_assert!(rows >= last_rows, "rows regressed: {rows} < {last_rows}");
            last_rows = rows;
            prop_assert_eq!(
                &partial.baselines[..],
                &monolithic.baselines[..partial.baselines.len()],
                "baselines are a prefix of the monolithic row order"
            );
            prop_assert_eq!(
                &partial.cells[..],
                &monolithic.cells[..partial.cells.len()],
                "cells are a prefix of the monolithic row order"
            );
        }

        let reports: Vec<SimReport> = slots
            .into_iter()
            .map(|s| s.expect("every cell executed"))
            .collect();
        let merged = plan.merge_cells(&reports).expect("complete set merges");
        prop_assert_eq!(
            merged.to_json().render_pretty(),
            monolithic.to_json().render_pretty(),
            "shuffled cell execution merges byte-identical to the serial run"
        );
    }
}

/// Merging with too few or too many reports is a hard error, not a
/// silent truncation.
#[test]
fn merge_rejects_wrong_report_counts() {
    let spec = small_spec("panel-a", &[0], &[0], &[(0, 0)], &[0]);
    let plan = plan_campaign("counts", &[spec]).expect("valid");
    assert!(plan.job_count() >= 2, "baseline + at least one cell");
    let err = plan.merge_cells(&[]).expect_err("empty set rejected");
    assert!(err.contains("planned job"), "{err}");
    let short = vec![None; plan.job_count() - 1];
    let err = plan
        .merge_prefix(&short)
        .expect_err("short slot set rejected");
    assert!(err.contains("planned job"), "{err}");
}
