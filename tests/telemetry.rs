//! The telemetry sink's read-only contract: enabling per-window
//! telemetry must not perturb the simulation by a single byte.
//!
//! [`run_workload_telemetry`] runs the same deterministic system as
//! [`run_workload`] with a window recorder attached; these tests pin the
//! [`SimReport`] byte-identical with telemetry on vs. off across three
//! prefetchers and two robustness profiles, and sanity-check the window
//! stream itself.

use pythia::runner::{run_workload, run_workload_telemetry, RunSpec};
use pythia_sim::stats::SimReport;
use pythia_workloads::profiles::{Profile, CAMPAIGN_SEED};

fn spec() -> RunSpec {
    RunSpec::single_core().with_budget(20_000, 60_000)
}

/// Byte-level fingerprint of a report: every counter, in a stable order.
fn fingerprint(report: &SimReport) -> Vec<u8> {
    format!("{report:?}").into_bytes()
}

#[test]
fn telemetry_is_byte_invisible_across_prefetchers_and_profiles() {
    let spec = spec();
    for profile in [Profile::Expected, Profile::Stress] {
        // The first workload of each profile keeps the matrix cheap while
        // still crossing two very different access-pattern families.
        let w = profile.workloads(CAMPAIGN_SEED).remove(0);
        for prefetcher in ["pythia", "spp", "bingo"] {
            let plain = run_workload(&w, prefetcher, &spec);
            let (telemetered, windows) = run_workload_telemetry(&w, prefetcher, &spec, 10_000);
            assert_eq!(
                fingerprint(&plain),
                fingerprint(&telemetered),
                "{}/{prefetcher}: telemetry must not perturb the report",
                profile.label()
            );
            // The window stream itself must be present and well-formed.
            assert_eq!(windows.len(), 1, "single-core run has one core");
            let rows = &windows[0];
            assert!(!rows.is_empty(), "measured phase must close windows");
            let instructions: f64 = rows
                .iter()
                .map(|r| {
                    r.fields
                        .iter()
                        .find(|(name, _)| *name == "instructions")
                        .map(|(_, v)| *v)
                        .expect("window carries instructions")
                })
                .sum();
            assert_eq!(
                instructions as u64,
                telemetered.cores[0].instructions,
                "{}/{prefetcher}: windows must cover the measured phase",
                profile.label()
            );
        }
    }
}

#[test]
fn telemetry_reruns_are_deterministic() {
    let w = Profile::Expected.workloads(CAMPAIGN_SEED).remove(0);
    let spec = spec();
    let (a, wa) = run_workload_telemetry(&w, "pythia", &spec, 10_000);
    let (b, wb) = run_workload_telemetry(&w, "pythia", &spec, 10_000);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(wa, wb, "window rows must be reproducible");
}
