//! Cross-crate integration tests: whole-system runs exercising the public
//! API the way the paper's experiments do.

use pythia::runner::{build_prefetcher, run_sources, run_workload, RunSpec};
use pythia_sim::config::SystemConfig;
use pythia_sim::trace::VecSource;
use pythia_stats::metrics::compare;
use pythia_workloads::generators::{PatternKind, TraceSpec};
use pythia_workloads::suites::{all_suites, Suite};
use pythia_workloads::Workload;

fn quick_spec() -> RunSpec {
    RunSpec::single_core().with_budget(40_000, 160_000)
}

fn workload(kind: PatternKind, seed: u64) -> Workload {
    Workload {
        name: "test".into(),
        suite: Suite::Spec06,
        spec: TraceSpec::new("test", kind).with_seed(seed),
    }
}

#[test]
fn pythia_beats_baseline_on_page_visit_pattern() {
    let w = workload(
        PatternKind::PageVisit {
            offsets: vec![0, 23],
        },
        11,
    );
    let spec = RunSpec::single_core().with_budget(100_000, 400_000);
    let baseline = run_workload(&w, "none", &spec);
    let pythia = run_workload(&w, "pythia", &spec);
    let m = compare(&baseline, &pythia);
    assert!(
        m.speedup > 1.3,
        "expected a clear win, got {:.3}",
        m.speedup
    );
    assert!(m.coverage > 0.3, "coverage {:.2}", m.coverage);
    assert!(
        m.overprediction < 0.3,
        "overprediction {:.2}",
        m.overprediction
    );
}

#[test]
fn pythia_does_not_flood_random_traffic() {
    let w = workload(PatternKind::CloudMix { hot_pct: 0 }, 12);
    let spec = RunSpec::single_core().with_budget(150_000, 600_000);
    let baseline = run_workload(&w, "none", &spec);
    let pythia = run_workload(&w, "pythia", &spec);
    let m = compare(&baseline, &pythia);
    // Random traffic: nothing to cover; the agent must learn restraint.
    assert!(
        m.overprediction < 0.4,
        "overprediction {:.2}",
        m.overprediction
    );
    assert!(m.speedup > 0.9, "speedup {:.3}", m.speedup);
}

#[test]
fn every_registered_prefetcher_completes_a_run() {
    let w = workload(PatternKind::DeltaChain { deltas: vec![2, 5] }, 13);
    let spec = quick_spec();
    for name in [
        "none",
        "next_line",
        "stride",
        "streamer",
        "spp",
        "spp+ppf",
        "bingo",
        "mlop",
        "dspatch",
        "ipcp",
        "cp_hw",
        "power7",
        "pythia",
        "pythia_strict",
        "pythia_bw_oblivious",
        "stride+pythia",
        "st+s+b+d+m",
    ] {
        let report = run_workload(&w, name, &spec);
        assert_eq!(report.cores[0].instructions, spec.measure, "{name}");
        assert!(report.cores[0].ipc() > 0.0, "{name}");
    }
}

#[test]
fn unknown_prefetcher_is_rejected() {
    assert!(build_prefetcher("no-such-prefetcher", 0).is_none());
}

#[test]
fn runs_are_deterministic() {
    let w = workload(
        PatternKind::IrregularGraph {
            vertices: 100_000,
            avg_degree: 8,
        },
        14,
    );
    let spec = quick_spec();
    let a = run_workload(&w, "pythia", &spec);
    let b = run_workload(&w, "pythia", &spec);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    assert_eq!(a.llc, b.llc);
    assert_eq!(a.dram, b.dram);
}

#[test]
fn bandwidth_scaling_changes_outcomes() {
    // An overpredicting prefetcher must hurt more at 150 MTPS than at 9600.
    let w = workload(
        PatternKind::SpatialFootprint {
            patterns: vec![vec![0, 1, 2, 3, 4, 5, 6, 7]],
            noise_pct: 10,
        },
        15,
    );
    let run_at = |mtps: u64, p: &str| {
        let spec = RunSpec::single_core()
            .with_system(SystemConfig::single_core_with_mtps(mtps))
            .with_budget(40_000, 160_000);
        let baseline = run_workload(&w, "none", &spec);
        compare(&baseline, &run_workload(&w, p, &spec)).speedup
    };
    let slow = run_at(150, "mlop");
    let fast = run_at(9600, "mlop");
    assert!(
        fast > slow,
        "MLOP should do relatively better with ample bandwidth: {fast} vs {slow}"
    );
}

#[test]
fn multi_core_contention_lowers_per_core_ipc() {
    let mk = |seed| {
        TraceSpec::new("s", PatternKind::Stream { store_every: 0 })
            .with_seed(seed)
            .generate()
    };
    let solo = {
        let spec = RunSpec::single_core().with_budget(20_000, 80_000);
        run_sources(vec![VecSource::boxed(mk(21))], "none", &spec)
    };
    let crowd = {
        let mut cfg = SystemConfig::with_cores(4);
        // Force all four streams through a single channel to create
        // contention.
        cfg.dram.channels = 1;
        let spec = RunSpec::multi_core(4)
            .with_system(cfg)
            .with_budget(20_000, 80_000);
        run_sources(
            vec![mk(21), mk(22), mk(23), mk(24)]
                .into_iter()
                .map(VecSource::boxed)
                .collect(),
            "none",
            &spec,
        )
    };
    assert!(
        crowd.cores[0].ipc() < solo.cores[0].ipc(),
        "sharing one channel must cost IPC: {} vs {}",
        crowd.cores[0].ipc(),
        solo.cores[0].ipc()
    );
}

#[test]
fn suite_definitions_are_runnable() {
    // One workload from each suite end-to-end (cheap budgets).
    let spec = RunSpec::single_core().with_budget(5_000, 20_000);
    for s in [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::Cloudsuite,
    ] {
        let w = &pythia_workloads::suite(s)[0];
        let report = run_workload(w, "pythia", &spec);
        assert!(report.cores[0].ipc() > 0.0, "{}", w.name);
    }
    assert_eq!(all_suites().len(), 50);
}

#[test]
fn coverage_accounting_is_consistent() {
    let w = workload(PatternKind::Stream { store_every: 0 }, 16);
    let spec = quick_spec();
    let baseline = run_workload(&w, "none", &spec);
    let report = run_workload(&w, "spp", &spec);
    // Sanity of raw counters: prefetch fills happened, useful <= fills,
    // and DRAM reads account for demand misses plus prefetches.
    assert!(report.l2[0].prefetch_fills > 0);
    assert!(report.l2[0].useful_prefetches <= report.l2[0].prefetch_fills);
    assert!(report.dram.prefetch_reads > 0);
    let m = compare(&baseline, &report);
    assert!(m.coverage > 0.5 && m.coverage <= 1.0);
}
