//! Integration tests for the parallel evaluation API: results must be
//! identical to the sequential path (simulations are deterministic and
//! share no mutable state).

use pythia::runner::{evaluate_suite, evaluate_suite_parallel, run_parallel, RunSpec};
use pythia_workloads::generators::PatternKind;
use pythia_workloads::suites::Suite;
use pythia_workloads::{TraceSpec, Workload};

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "w-stream".into(),
            suite: Suite::Spec06,
            spec: TraceSpec::new("w-stream", PatternKind::Stream { store_every: 0 }).with_seed(41),
        },
        Workload {
            name: "w-gems".into(),
            suite: Suite::Spec06,
            spec: TraceSpec::new(
                "w-gems",
                PatternKind::PageVisit {
                    offsets: vec![0, 23],
                },
            )
            .with_seed(42),
        },
        Workload {
            name: "w-chase".into(),
            suite: Suite::Spec06,
            spec: TraceSpec::new("w-chase", PatternKind::PointerChase).with_seed(43),
        },
    ]
}

#[test]
fn run_parallel_preserves_order() {
    let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..64)
        .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
        .collect();
    let results = run_parallel(jobs, 8);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(*r, i * i);
    }
}

#[test]
fn run_parallel_single_thread_works() {
    let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 7), Box::new(|| 9)];
    assert_eq!(run_parallel(jobs, 1), vec![7, 9]);
}

#[test]
#[should_panic(expected = "at least one worker")]
fn zero_threads_rejected() {
    let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 1)];
    let _ = run_parallel(jobs, 0);
}

#[test]
fn parallel_evaluation_matches_sequential() {
    let ws = workloads();
    let prefetchers = ["stride", "pythia"];
    let spec = RunSpec::single_core().with_budget(10_000, 40_000);
    let seq = evaluate_suite(&ws, &prefetchers, &spec);
    let par = evaluate_suite_parallel(&ws, &prefetchers, &spec, 4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.prefetcher, b.prefetcher);
        assert!(
            (a.metrics.speedup - b.metrics.speedup).abs() < 1e-12,
            "{}/{}: {} vs {}",
            a.workload,
            a.prefetcher,
            a.metrics.speedup,
            b.metrics.speedup
        );
        assert!((a.metrics.coverage - b.metrics.coverage).abs() < 1e-12);
    }
}

#[test]
fn parallel_evaluation_with_more_threads_than_jobs() {
    let ws = workloads()[..1].to_vec();
    let spec = RunSpec::single_core().with_budget(5_000, 20_000);
    let evals = evaluate_suite_parallel(&ws, &["none"], &spec, 64);
    assert_eq!(evals.len(), 1);
}
