//! Golden-report pins for every figure-registry campaign.
//!
//! Each registered figure runs at a tiny `PYTHIA_BENCH_SCALE` and the
//! digest of its rendered result JSON (throughput telemetry stripped) is
//! compared against a checked-in golden value. Any change to the hot
//! paths — cache layout, QVStore storage, EQ indexing, trace decode —
//! that perturbs even one counter of one cell shows up as a digest
//! mismatch here, so performance rewrites cannot silently change results.
//!
//! The digests pin IEEE float arithmetic on the x86-64 CI target; when a
//! figure's definition (or an intentional semantic change) moves them,
//! regenerate with:
//!
//! ```text
//! PYTHIA_GOLDEN_PRINT=1 cargo test -q --test golden_reports -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use pythia_stats::json::Json;

/// Scale every figure runs at (budgets floor at 1 K warmup + 4 K measured
/// instructions per cell).
const SCALE: &str = "0.01";

/// Worker threads per figure: the engine's output is pinned byte-identical
/// for any thread count, so this only affects wall time.
const THREADS: usize = 4;

/// `(figure id, FNV-1a-64 digest of the stripped result JSON)`.
///
/// Re-goldened once for the Q8.7 fixed-point QVStore: 18 of 20 digests
/// were unchanged (the batched core-slice scheduler is byte-identical,
/// and quantized Q-values reproduced the f32 trajectories everywhere
/// else); only the hyperparameter-sensitivity figures moved — fig20,
/// whose deep exponential-grid α points (≤ 1e-5) now quantize to an
/// effective learning rate of zero, and fig23, where warmup-length
/// trajectories straddle quantization ties.
const GOLDEN: &[(&str, u64)] = &[
    ("fig01", 0x5f2ce0158dc557d3),
    ("fig07", 0x7f94374a592d27f9),
    ("fig08a", 0x97dd0f88ffac0d85),
    ("fig08b", 0xcb017716928facda),
    ("fig08c", 0x3c40af256e64f99a),
    ("fig08d", 0x96e1e2febb09171b),
    ("fig09", 0xd62b8c7d9f98276c),
    ("fig10", 0x700ee6f7d74ba815),
    ("fig11", 0x98f862c4d3f5d93d),
    ("fig12", 0xa6b2bed1a16dd633),
    ("fig14", 0x29da07107a0d2523),
    ("fig15", 0x258d9e8a365538bd),
    ("fig16", 0x4abaee87a8d6dcf4),
    ("fig17", 0xf64942f22694b879),
    ("fig20", 0xde1366cf90900b4b),
    ("fig21", 0xe5e92dfc0e25b4cf),
    ("fig22", 0xe5779ff0bfd506c4),
    ("fig23", 0xead0af668dacd36b),
    ("tab02", 0x57c5218fbfd99be6),
    ("ablation", 0x4dcb70a206d8d0f9),
];

/// FNV-1a 64-bit — the same digest the content-addressed campaign cache
/// uses, re-exported so the two cannot drift.
use pythia_sweep::codec::fnv1a_64 as fnv1a;

/// Drops the wall-clock throughput telemetry, the only nondeterministic
/// part of a sweep artifact.
fn strip_throughput(json: Json) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "throughput")
                .collect(),
        ),
        other => other,
    }
}

#[test]
fn every_figure_registry_entry_pins_its_report_digest() {
    // One test, one process: the scale variable is process-global and the
    // figure budgets read it when specs are built.
    std::env::set_var("PYTHIA_BENCH_SCALE", SCALE);

    let print_mode = std::env::var("PYTHIA_GOLDEN_PRINT").is_ok();
    let mut computed = Vec::new();
    let mut mismatches = Vec::new();
    for def in pythia_bench::figures::registry() {
        let specs = (def.build)();
        let result =
            pythia_sweep::engine::run_all(def.id, &specs, THREADS).expect("figure runs clean");
        let digest = fnv1a(strip_throughput(result.to_json()).render().as_bytes());
        computed.push((def.id, digest));
        match GOLDEN.iter().find(|(id, _)| *id == def.id) {
            Some(&(_, expected)) if expected == digest => {}
            Some(&(_, expected)) => mismatches.push(format!(
                "{}: digest {digest:#018x} != pinned {expected:#018x}",
                def.id
            )),
            None => mismatches.push(format!("{}: no pinned digest for this figure", def.id)),
        }
    }
    // Retired figures must drop their pins too.
    for (id, _) in GOLDEN {
        if !computed.iter().any(|(cid, _)| cid == id) {
            mismatches.push(format!("{id}: pinned digest for an unregistered figure"));
        }
    }

    if print_mode {
        println!("const GOLDEN: &[(&str, u64)] = &[");
        for (id, digest) in &computed {
            println!("    ({id:?}, {digest:#018x}),");
        }
        println!("];");
        return;
    }
    assert!(
        mismatches.is_empty(),
        "golden report digests changed — if intentional, regenerate with \
         PYTHIA_GOLDEN_PRINT=1 cargo test --test golden_reports -- --nocapture\n{}",
        mismatches.join("\n")
    );
}
