//! Golden-report pins for every figure-registry campaign.
//!
//! Each registered figure runs at a tiny `PYTHIA_BENCH_SCALE` and the
//! digest of its rendered result JSON (throughput telemetry stripped) is
//! compared against a checked-in golden value. Any change to the hot
//! paths — cache layout, QVStore storage, EQ indexing, trace decode —
//! that perturbs even one counter of one cell shows up as a digest
//! mismatch here, so performance rewrites cannot silently change results.
//!
//! The digests pin IEEE float arithmetic on the x86-64 CI target; when a
//! figure's definition (or an intentional semantic change) moves them,
//! regenerate with:
//!
//! ```text
//! PYTHIA_GOLDEN_PRINT=1 cargo test -q --test golden_reports -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use pythia_stats::json::Json;

/// Scale every figure runs at (budgets floor at 1 K warmup + 4 K measured
/// instructions per cell).
const SCALE: &str = "0.01";

/// Worker threads per figure: the engine's output is pinned byte-identical
/// for any thread count, so this only affects wall time.
const THREADS: usize = 4;

/// `(figure id, FNV-1a-64 digest of the stripped result JSON)`.
///
/// Re-goldened for the workload-generator bugfixes (and extended with the
/// `robust01`–`robust03` campaigns): the `DeltaChain` page-crossing fix
/// (the delta index no longer resets, so every `cactusADM`/`leslie3d`-style
/// chain emits a different stream), the `SpatialFootprint` mid-visit noise
/// fix (`sphinx3`/`canneal`/`facesim` deviating visits now perturb region
/// learning), and the `Phased` phase-accounting fix (phases now last
/// `phase_len` memory records instead of ~10×, moving `server-2`) each
/// change trace content, so every figure containing an affected workload
/// moved. Only fig14 and fig15 — pure-Ligra figures built solely on
/// `IrregularGraph` — kept their previous digests, which is exactly the
/// expected blast radius.
const GOLDEN: &[(&str, u64)] = &[
    ("fig01", 0x26d1d2bb768e9506),
    ("fig07", 0x5c4d3cd503be1a0a),
    ("fig08a", 0x47548df7ded3cac5),
    ("fig08b", 0x96584179d85380fb),
    ("fig08c", 0x53f86327eaf143e7),
    ("fig08d", 0x4ef027f623392632),
    ("fig09", 0x74f59f61f05013eb),
    ("fig10", 0x5d3414014e66f389),
    ("fig11", 0xcddd16b054dd210f),
    ("fig12", 0xd6e4f0ffecb06a06),
    ("fig14", 0x29da07107a0d2523),
    ("fig15", 0x258d9e8a365538bd),
    ("fig16", 0xe082db9d532fe449),
    ("fig17", 0xb16375583367dfcc),
    ("fig20", 0x0b5e5a8e3e2d5203),
    ("fig21", 0xd00de047a1561e49),
    ("fig22", 0x18d317f855295ca5),
    ("fig23", 0x386858539920840d),
    ("tab02", 0x7c5a87744c549402),
    ("ablation", 0x2a21bc9250e2f281),
    ("robust01", 0xda77ba76528232c6),
    ("robust02", 0x8e5ff91c116aae72),
    ("robust03", 0xdf31b053c6c12441),
];

/// FNV-1a 64-bit — the same digest the content-addressed campaign cache
/// uses, re-exported so the two cannot drift.
use pythia_sweep::codec::fnv1a_64 as fnv1a;

/// Drops the wall-clock throughput telemetry, the only nondeterministic
/// part of a sweep artifact.
fn strip_throughput(json: Json) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "throughput")
                .collect(),
        ),
        other => other,
    }
}

#[test]
fn every_figure_registry_entry_pins_its_report_digest() {
    // One test, one process: the scale variable is process-global and the
    // figure budgets read it when specs are built.
    std::env::set_var("PYTHIA_BENCH_SCALE", SCALE);

    let print_mode = std::env::var("PYTHIA_GOLDEN_PRINT").is_ok();
    let mut computed = Vec::new();
    let mut mismatches = Vec::new();
    for def in pythia_bench::figures::registry() {
        let specs = (def.build)();
        let result =
            pythia_sweep::engine::run_all(def.id, &specs, THREADS).expect("figure runs clean");
        let digest = fnv1a(strip_throughput(result.to_json()).render().as_bytes());
        computed.push((def.id, digest));
        match GOLDEN.iter().find(|(id, _)| *id == def.id) {
            Some(&(_, expected)) if expected == digest => {}
            Some(&(_, expected)) => mismatches.push(format!(
                "{}: digest {digest:#018x} != pinned {expected:#018x}",
                def.id
            )),
            None => mismatches.push(format!("{}: no pinned digest for this figure", def.id)),
        }
    }
    // Retired figures must drop their pins too.
    for (id, _) in GOLDEN {
        if !computed.iter().any(|(cid, _)| cid == id) {
            mismatches.push(format!("{id}: pinned digest for an unregistered figure"));
        }
    }

    if print_mode {
        println!("const GOLDEN: &[(&str, u64)] = &[");
        for (id, digest) in &computed {
            println!("    ({id:?}, {digest:#018x}),");
        }
        println!("];");
        return;
    }
    assert!(
        mismatches.is_empty(),
        "golden report digests changed — if intentional, regenerate with \
         PYTHIA_GOLDEN_PRINT=1 cargo test --test golden_reports -- --nocapture\n{}",
        mismatches.join("\n")
    );
}
