//! Determinism of the robustness campaigns (`robust01`–`robust03`).
//!
//! The robustness score is a delta between per-group geomeans, so a single
//! perturbed cell silently shifts every verdict. These tests pin the two
//! properties the campaigns rely on: the sweep engine renders byte-identical
//! artifacts at any thread count, and the profile workload lists themselves
//! are reproducible from the campaign seed alone.

use pythia_stats::json::Json;
use pythia_workloads::profiles::{Profile, CAMPAIGN_SEED};

/// Tiny instruction budgets so all three campaigns run in seconds.
const SCALE: &str = "0.01";

/// Render a campaign's result artifact at the given thread count, minus the
/// wall-clock `throughput` telemetry — the only field allowed to vary.
fn render(id: &str, threads: usize) -> String {
    let specs = pythia_bench::figures::specs(id).expect("campaign is registered");
    let json = pythia_sweep::engine::run_all(id, &specs, threads)
        .expect("campaign runs clean")
        .to_json();
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "throughput")
                .collect(),
        ),
        other => other,
    }
    .render()
}

#[test]
fn robust_campaigns_parallel_matches_serial_byte_for_byte() {
    std::env::set_var("PYTHIA_BENCH_SCALE", SCALE);
    for id in ["robust01", "robust02", "robust03"] {
        let serial = render(id, 1);
        let parallel = render(id, 4);
        assert_eq!(
            serial, parallel,
            "{id}: 1-thread and 4-thread artifacts must be byte-identical"
        );
    }
}

#[test]
fn profile_workloads_are_reproducible_and_disjoint() {
    for profile in Profile::all() {
        let a = profile.workloads(CAMPAIGN_SEED);
        let b = profile.workloads(CAMPAIGN_SEED);
        assert_eq!(a.len(), b.len(), "{profile:?}: stable trace count");
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.name, wb.name, "{profile:?}: stable trace names");
            assert_eq!(
                wa.spec.seed, wb.spec.seed,
                "{}: per-trace seed must derive from the campaign seed",
                wa.name
            );
        }
        // A different campaign seed must re-seed every trace: campaigns can
        // be re-rolled without any trace accidentally pinning the old seed.
        let rerolled = profile.workloads(CAMPAIGN_SEED ^ 0x5eed);
        for (wa, wr) in a.iter().zip(&rerolled) {
            assert_ne!(
                wa.spec.seed, wr.spec.seed,
                "{}: trace seed ignores the campaign seed",
                wa.name
            );
        }
    }
    // Trace names are globally unique across profiles so grouped sweep rows
    // never collide.
    let mut names: Vec<String> = Profile::all()
        .into_iter()
        .flat_map(|p| p.workloads(CAMPAIGN_SEED))
        .map(|w| w.name)
        .collect();
    let total = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), total, "trace names must be unique");
}
