//! Registry coverage: every advertised prefetcher name — the full
//! [`pythia_prefetchers::registry`] list plus the `pythia*` variants that
//! only [`pythia::runner::build_prefetcher`] knows — must construct and
//! survive a short smoke simulation. Adding a prefetcher without
//! registering it (or registering a name that no longer builds) fails here.

use pythia::runner::{build_prefetcher, run_workload, RunSpec};
use pythia_prefetchers::registry;
use pythia_workloads::generators::{PatternKind, TraceSpec};
use pythia_workloads::{suites::Suite, Workload};

use pythia::runner::RUNNER_ONLY;

fn all_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = registry::available().to_vec();
    names.extend_from_slice(RUNNER_ONLY);
    names
}

fn smoke_workload() -> Workload {
    let spec = TraceSpec::new(
        "smoke",
        PatternKind::DeltaChain {
            deltas: vec![1, 2, -1, 4],
        },
    )
    .with_seed(5)
    .with_footprint_pages(64);
    Workload {
        name: "smoke".into(),
        suite: Suite::Spec06,
        spec,
    }
}

#[test]
fn every_registered_name_constructs() {
    for name in all_names() {
        let p = build_prefetcher(name, 42);
        assert!(p.is_some(), "{name:?} is advertised but fails to construct");
        assert!(!p.unwrap().name().is_empty(), "{name:?} must report a name");
    }
}

#[test]
fn every_registered_name_survives_smoke_simulation() {
    // 2k measured instructions end-to-end through the full system: enough
    // to hit the demand / fill / useful / useless paths of each prefetcher.
    let w = smoke_workload();
    let spec = RunSpec::single_core().with_budget(500, 2_000);
    for name in all_names() {
        let report = run_workload(&w, name, &spec);
        assert_eq!(
            report.cores[0].instructions, 2_000,
            "{name:?} must retire the measured instruction budget"
        );
        assert!(
            report.cores[0].ipc() > 0.0,
            "{name:?} produced a stuck simulation"
        );
    }
}

#[test]
fn runner_only_names_stay_out_of_the_registry() {
    // If one of these ever moves into the registry, drop it from
    // RUNNER_ONLY so the two lists cannot drift apart silently.
    for name in RUNNER_ONLY {
        assert!(
            registry::build(name, 0).is_none(),
            "{name:?} is now in the registry; update RUNNER_ONLY"
        );
        assert!(
            !registry::available().contains(name),
            "{name:?} is advertised by the registry; update RUNNER_ONLY"
        );
    }
}

#[test]
fn registry_rejects_unknown_names_end_to_end() {
    assert!(build_prefetcher("definitely-not-a-prefetcher", 0).is_none());
}
