//! Property-based tests over the workspace's core data structures and
//! invariants (deliverable (c) of the reproduction): trace codecs, address
//! arithmetic, cache behaviour, the evaluation queue, the QVStore, and the
//! trace generators.

use proptest::prelude::*;

use pythia_core::eq::{EqEntry, EvaluationQueue};
use pythia_core::{PythiaConfig, QvStore};
use pythia_sim::addr;
use pythia_sim::cache::{AccessKind, Cache, ReplacementKind};
use pythia_sim::config::CacheConfig;
use pythia_sim::trace::{decode_trace, encode_trace, Branch, MemOp, TraceRecord};
use pythia_workloads::generators::{PatternKind, TraceSpec};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u64>(),
        proptest::option::of((any::<u64>(), any::<bool>())),
        proptest::option::of((any::<bool>(), any::<bool>())),
        any::<bool>(),
    )
        .prop_map(|(pc, mem, branch, dep)| TraceRecord {
            pc,
            mem: mem.map(|(addr, is_write)| MemOp { addr, is_write }),
            branch: branch.map(|(taken, mispredicted)| Branch {
                taken,
                mispredicted,
            }),
            depends_on_prev_load: dep,
        })
}

proptest! {
    #[test]
    fn trace_codec_roundtrips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let encoded = encode_trace(&records);
        let decoded = decode_trace(encoded).unwrap();
        prop_assert_eq!(records, decoded);
    }

    #[test]
    fn offset_page_invariant(line in 0u64..1u64 << 40, offset in -63i32..=63) {
        // offset_stays_in_page agrees with actually applying the offset.
        let stays = addr::offset_stays_in_page(line, offset);
        let target = addr::apply_offset(line, offset);
        if stays {
            prop_assert_eq!(addr::page_of_line(target), addr::page_of_line(line));
        }
        // Page offsets always land in [0, 64).
        prop_assert!(addr::page_offset_of_line(target) < 64);
    }

    #[test]
    fn cache_never_exceeds_capacity(
        lines in proptest::collection::vec(0u64..10_000, 1..400),
        ways in 1usize..8,
    ) {
        let cfg = CacheConfig {
            size_bytes: 64 * 64 * ways as u64, // 64 sets x ways
            ways,
            latency: 1,
            mshrs: 4,
            replacement: ReplacementKind::Lru,
        };
        let mut cache = Cache::new("prop", &cfg);
        for (i, &l) in lines.iter().enumerate() {
            cache.access(l, AccessKind::DemandLoad, i as u64);
            cache.fill(l, i as u64, AccessKind::DemandLoad, 0);
            prop_assert!(cache.resident_lines() <= cache.capacity_lines());
            prop_assert!(cache.probe(l), "line just filled must be resident");
        }
    }

    #[test]
    fn cache_stats_balance(
        lines in proptest::collection::vec(0u64..256, 1..300),
    ) {
        let cfg = CacheConfig {
            size_bytes: 16 * 64 * 2,
            ways: 2,
            latency: 1,
            mshrs: 4,
            replacement: ReplacementKind::Lru,
        };
        let mut cache = Cache::new("prop", &cfg);
        for (i, &l) in lines.iter().enumerate() {
            if matches!(cache.access(l, AccessKind::DemandLoad, i as u64), pythia_sim::cache::Lookup::Miss) {
                cache.fill(l, i as u64, AccessKind::DemandLoad, 0);
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.demand_loads, lines.len() as u64);
        prop_assert_eq!(s.demand_load_hits + s.demand_load_misses, s.demand_loads);
        prop_assert!(s.evictions <= s.demand_load_misses);
    }

    #[test]
    fn eq_capacity_and_fifo(
        capacity in 1usize..64,
        inserts in 1usize..200,
    ) {
        let mut eq = EvaluationQueue::new(capacity);
        let mut evicted_order = Vec::new();
        for i in 0..inserts {
            let e = EqEntry::new(vec![i as u64], 0, Some(i as u64), i as u64);
            if let Some(ev) = eq.insert(e) {
                evicted_order.push(ev.prefetch_line.unwrap());
            }
            prop_assert!(eq.len() <= capacity);
        }
        // FIFO: evictions come out in insertion order.
        for (i, &l) in evicted_order.iter().enumerate() {
            prop_assert_eq!(l, i as u64);
        }
    }

    #[test]
    fn qvstore_argmax_in_range(
        updates in proptest::collection::vec(
            (0u64..1000, 0usize..16, -20i16..=20, 0u64..1000, 0usize..16),
            0..200,
        ),
        probe in 0u64..1000,
    ) {
        let cfg = PythiaConfig::basic();
        let mut store = QvStore::new(&cfg);
        for (v1, a1, r, v2, a2) in updates {
            store.sarsa_update(&[v1, v1 ^ 7], a1, r as f32, &[v2, v2 ^ 7], a2, 0.1, cfg.gamma);
        }
        let best = store.argmax(&[probe, probe ^ 7]);
        prop_assert!(best < cfg.actions.len());
    }

    #[test]
    fn qvstore_q_values_bounded(
        reward in -30i16..=30,
        n in 1u32..4000,
    ) {
        // Repeated identical updates converge within the theoretical bound
        // |Q| <= max(|init|, |r|/(1-gamma)) + slack.
        let cfg = PythiaConfig::basic();
        let mut store = QvStore::new(&cfg);
        let s = [42u64, 43u64];
        for _ in 0..n {
            store.sarsa_update(&s, 3, reward as f32, &s, 3, 0.1, cfg.gamma);
        }
        let bound = (reward as f32 / (1.0 - cfg.gamma)).abs().max(cfg.q_init()) + 1.0;
        prop_assert!(store.q(&s, 3).abs() <= bound, "q={} bound={}", store.q(&s, 3), bound);
    }

    #[test]
    fn generated_traces_have_exact_length_and_bounds(
        seed in 0u64..1_000,
        pages in 1u64..256,
        n in 1usize..5_000,
    ) {
        let spec = TraceSpec::new("prop", PatternKind::CloudMix { hot_pct: 50 })
            .with_seed(seed)
            .with_footprint_pages(pages)
            .with_instructions(n);
        let trace = spec.generate();
        prop_assert_eq!(trace.len(), n);
        let base = (seed % 1024 + 1) * 0x1_0000_0000;
        for r in &trace {
            if let Some(m) = r.mem {
                prop_assert!(m.addr >= base);
                prop_assert!(m.addr < base + pages * 4096 + 64);
            }
        }
    }

    #[test]
    fn all_pattern_kinds_generate(seed in 0u64..50) {
        let kinds = [
            PatternKind::Stream { store_every: 3 },
            PatternKind::Stride { lines: 5 },
            PatternKind::PageVisit { offsets: vec![0, 11, 23] },
            PatternKind::DeltaChain { deltas: vec![1, 2, 3] },
            PatternKind::PointerChase,
            PatternKind::IrregularGraph { vertices: 10_000, avg_degree: 4 },
            PatternKind::CloudMix { hot_pct: 10 },
        ];
        for kind in kinds {
            let t = TraceSpec::new("p", kind).with_seed(seed).with_instructions(500).generate();
            prop_assert_eq!(t.len(), 500);
            prop_assert!(t.iter().any(|r| r.mem.is_some()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prefetchers_never_panic_on_arbitrary_streams(
        accesses in proptest::collection::vec((0u64..1u64<<30, 0u64..64, any::<bool>()), 1..300),
        which in 0usize..12,
    ) {
        use pythia_sim::prefetch::{DemandAccess, SystemFeedback};
        let names = pythia_prefetchers::available();
        let name = names[which % names.len()];
        let mut p = pythia_prefetchers::build(name, 3).unwrap();
        let fb = SystemFeedback { bandwidth_high: false, bandwidth_utilization_pct: 10 };
        for (i, (page, off, w)) in accesses.iter().enumerate() {
            let addr = page * 4096 + off * 64;
            let a = DemandAccess {
                pc: 0x400000 + (i as u64 % 16) * 4,
                addr,
                line: addr >> 6,
                is_write: *w,
                cycle: i as u64 * 10,
                missed: true,
            };
            for req in p.on_demand(&a, &fb) {
                // Requests address sane lines (non-saturated arithmetic).
                prop_assert!(req.line < 1u64 << 58);
            }
            if i % 3 == 0 {
                p.on_useful(addr >> 6);
            } else if i % 7 == 0 {
                p.on_useless(addr >> 6);
            }
        }
        let _ = p.stats();
    }
}
