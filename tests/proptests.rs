//! Property-based tests over the workspace's core data structures and
//! invariants (deliverable (c) of the reproduction): trace codecs, address
//! arithmetic, cache behaviour, the evaluation queue, the QVStore, and the
//! trace generators.

use proptest::prelude::*;

use pythia_core::eq::{EqEntry, EvaluationQueue};
use pythia_core::{PythiaConfig, QvStore};
use pythia_sim::addr;
use pythia_sim::cache::{AccessKind, Cache, ReplacementKind};
use pythia_sim::config::CacheConfig;
use pythia_sim::trace::{decode_trace, encode_trace, Branch, MemOp, TraceRecord};
use pythia_workloads::generators::{PatternKind, TraceSpec};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u64>(),
        proptest::option::of((any::<u64>(), any::<bool>())),
        proptest::option::of((any::<bool>(), any::<bool>())),
        any::<bool>(),
    )
        .prop_map(|(pc, mem, branch, dep)| TraceRecord {
            pc,
            mem: mem.map(|(addr, is_write)| MemOp { addr, is_write }),
            branch: branch.map(|(taken, mispredicted)| Branch {
                taken,
                mispredicted,
            }),
            depends_on_prev_load: dep,
        })
}

proptest! {
    #[test]
    fn trace_codec_roundtrips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let encoded = encode_trace(&records);
        let decoded = decode_trace(encoded).unwrap();
        prop_assert_eq!(records, decoded);
    }

    #[test]
    fn offset_page_invariant(line in 0u64..1u64 << 40, offset in -63i32..=63) {
        // offset_stays_in_page agrees with actually applying the offset.
        let stays = addr::offset_stays_in_page(line, offset);
        let target = addr::apply_offset(line, offset);
        if stays {
            prop_assert_eq!(addr::page_of_line(target), addr::page_of_line(line));
        }
        // Page offsets always land in [0, 64).
        prop_assert!(addr::page_offset_of_line(target) < 64);
    }

    #[test]
    fn cache_never_exceeds_capacity(
        lines in proptest::collection::vec(0u64..10_000, 1..400),
        ways in 1usize..8,
    ) {
        let cfg = CacheConfig {
            size_bytes: 64 * 64 * ways as u64, // 64 sets x ways
            ways,
            latency: 1,
            mshrs: 4,
            replacement: ReplacementKind::Lru,
        };
        let mut cache = Cache::new("prop", &cfg);
        for (i, &l) in lines.iter().enumerate() {
            cache.access(l, AccessKind::DemandLoad, i as u64);
            cache.fill(l, i as u64, AccessKind::DemandLoad, 0);
            prop_assert!(cache.resident_lines() <= cache.capacity_lines());
            prop_assert!(cache.probe(l), "line just filled must be resident");
        }
    }

    #[test]
    fn cache_stats_balance(
        lines in proptest::collection::vec(0u64..256, 1..300),
    ) {
        let cfg = CacheConfig {
            size_bytes: 16 * 64 * 2,
            ways: 2,
            latency: 1,
            mshrs: 4,
            replacement: ReplacementKind::Lru,
        };
        let mut cache = Cache::new("prop", &cfg);
        for (i, &l) in lines.iter().enumerate() {
            if matches!(cache.access(l, AccessKind::DemandLoad, i as u64), pythia_sim::cache::Lookup::Miss) {
                cache.fill(l, i as u64, AccessKind::DemandLoad, 0);
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.demand_loads, lines.len() as u64);
        prop_assert_eq!(s.demand_load_hits + s.demand_load_misses, s.demand_loads);
        prop_assert!(s.evictions <= s.demand_load_misses);
    }

    #[test]
    fn eq_capacity_and_fifo(
        capacity in 1usize..64,
        inserts in 1usize..200,
    ) {
        let mut eq = EvaluationQueue::new(capacity);
        let mut evicted_order = Vec::new();
        for i in 0..inserts {
            let e = EqEntry::new(vec![i as u64], 0, Some(i as u64), i as u64);
            if let Some(ev) = eq.insert(e) {
                evicted_order.push(ev.prefetch_line.unwrap());
            }
            prop_assert!(eq.len() <= capacity);
        }
        // FIFO: evictions come out in insertion order.
        for (i, &l) in evicted_order.iter().enumerate() {
            prop_assert_eq!(l, i as u64);
        }
    }

    #[test]
    fn qvstore_argmax_in_range(
        updates in proptest::collection::vec(
            (0u64..1000, 0usize..16, -20i16..=20, 0u64..1000, 0usize..16),
            0..200,
        ),
        probe in 0u64..1000,
    ) {
        let cfg = PythiaConfig::basic();
        let mut store = QvStore::new(&cfg);
        for (v1, a1, r, v2, a2) in updates {
            store.sarsa_update(&[v1, v1 ^ 7], a1, r as f32, &[v2, v2 ^ 7], a2, 0.1, cfg.gamma);
        }
        let best = store.argmax(&[probe, probe ^ 7]);
        prop_assert!(best < cfg.actions.len());
    }

    #[test]
    fn qvstore_q_values_bounded(
        reward in -30i16..=30,
        n in 1u32..4000,
    ) {
        // Repeated identical updates converge within the theoretical bound
        // |Q| <= max(|init|, |r|/(1-gamma)) + slack.
        let cfg = PythiaConfig::basic();
        let mut store = QvStore::new(&cfg);
        let s = [42u64, 43u64];
        for _ in 0..n {
            store.sarsa_update(&s, 3, reward as f32, &s, 3, 0.1, cfg.gamma);
        }
        let bound = (reward as f32 / (1.0 - cfg.gamma)).abs().max(cfg.q_init()) + 1.0;
        prop_assert!(store.q(&s, 3).abs() <= bound, "q={} bound={}", store.q(&s, 3), bound);
    }

    #[test]
    fn generated_traces_have_exact_length_and_bounds(
        seed in 0u64..1_000,
        pages in 1u64..256,
        n in 1usize..5_000,
    ) {
        let spec = TraceSpec::new("prop", PatternKind::CloudMix { hot_pct: 50 })
            .with_seed(seed)
            .with_footprint_pages(pages)
            .with_instructions(n);
        let trace = spec.generate();
        prop_assert_eq!(trace.len(), n);
        let base = (seed % 1024 + 1) * 0x1_0000_0000;
        for r in &trace {
            if let Some(m) = r.mem {
                prop_assert!(m.addr >= base);
                prop_assert!(m.addr < base + pages * 4096 + 64);
            }
        }
    }

    #[test]
    fn all_pattern_kinds_generate(seed in 0u64..50) {
        let kinds = [
            PatternKind::Stream { store_every: 3 },
            PatternKind::Stride { lines: 5 },
            PatternKind::PageVisit { offsets: vec![0, 11, 23] },
            PatternKind::DeltaChain { deltas: vec![1, 2, 3] },
            PatternKind::PointerChase,
            PatternKind::IrregularGraph { vertices: 10_000, avg_degree: 4 },
            PatternKind::CloudMix { hot_pct: 10 },
        ];
        for kind in kinds {
            let t = TraceSpec::new("p", kind).with_seed(seed).with_instructions(500).generate();
            prop_assert_eq!(t.len(), 500);
            prop_assert!(t.iter().any(|r| r.mem.is_some()));
        }
    }
}

/// Reference model of one LRU set: lines kept in recency order (front =
/// least recently touched). Mirrors the cache's pinned semantics exactly:
/// a hit refreshes recency, a fill of a resident line does *not* (it only
/// refreshes readiness), and eviction picks the least recently touched
/// line once the set is full.
struct LruSetModel {
    ways: usize,
    lines: Vec<u64>,
}

impl LruSetModel {
    fn access(&mut self, line: u64) -> bool {
        match self.lines.iter().position(|&l| l == line) {
            Some(i) => {
                let l = self.lines.remove(i);
                self.lines.push(l);
                true
            }
            None => false,
        }
    }

    fn fill(&mut self, line: u64) -> Option<u64> {
        if self.lines.contains(&line) {
            return None; // duplicate fill: readiness refresh only
        }
        let victim = if self.lines.len() >= self.ways {
            Some(self.lines.remove(0))
        } else {
            None
        };
        self.lines.push(line);
        victim
    }
}

proptest! {
    #[test]
    fn lru_victim_matches_reference_model(
        ops in proptest::collection::vec((0u64..24, any::<bool>()), 1..400),
        ways in 2usize..8,
    ) {
        // Single-set cache so every line contends for the same ways.
        let cfg = CacheConfig {
            size_bytes: 64 * ways as u64,
            ways,
            latency: 1,
            mshrs: 4,
            replacement: ReplacementKind::Lru,
        };
        let mut cache = Cache::new("prop-lru", &cfg);
        let mut model = LruSetModel { ways, lines: Vec::new() };
        for (i, &(line, is_fill)) in ops.iter().enumerate() {
            if is_fill {
                let expected = model.fill(line);
                let got = cache.fill(line, i as u64, AccessKind::DemandLoad, 0);
                prop_assert_eq!(got.map(|e| e.line), expected,
                    "fill({}) victim mismatch at step {}", line, i);
            } else {
                let hit = model.access(line);
                let got = cache.access(line, AccessKind::DemandLoad, i as u64);
                prop_assert_eq!(
                    matches!(got, pythia_sim::cache::Lookup::Hit { .. }), hit,
                    "access({}) hit/miss mismatch at step {}", line, i);
            }
        }
    }

    #[test]
    fn srrip_eviction_invariants_hold(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..400),
        ways in 2usize..8,
    ) {
        // SHiP/SRRIP victim choice depends on internal SHCT state; pin the
        // structural invariants instead: capacity is never exceeded, a
        // filled line is immediately resident, the victim is never the
        // line being filled, and evictions only report lines that were
        // resident.
        let cfg = CacheConfig {
            size_bytes: 64 * ways as u64,
            ways,
            latency: 1,
            mshrs: 4,
            replacement: ReplacementKind::Ship,
        };
        let mut cache = Cache::new("prop-ship", &cfg);
        let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (i, &(line, is_fill)) in ops.iter().enumerate() {
            if is_fill {
                if let Some(ev) = cache.fill(line, i as u64, AccessKind::DemandLoad, (line % 7) as u16) {
                    prop_assert_ne!(ev.line, line, "victim is never the filled line");
                    prop_assert!(resident.remove(&ev.line), "evicted a non-resident line");
                }
                resident.insert(line);
                prop_assert!(cache.probe(line), "filled line must be resident");
            } else {
                let hit = matches!(
                    cache.access(line, AccessKind::DemandLoad, i as u64),
                    pythia_sim::cache::Lookup::Hit { .. }
                );
                prop_assert_eq!(hit, resident.contains(&line));
            }
            prop_assert!(cache.resident_lines() <= cache.capacity_lines());
        }
    }

    #[test]
    fn open_addressed_lookup_matches_linear_scan_model(
        lines in proptest::collection::vec(0u64..100_000, 1..500),
        probes in proptest::collection::vec(0u64..100_000, 1..100),
    ) {
        // The flat SoA tag path must agree, line for line, with a naive
        // resident-set model fed by the cache's own fill/eviction reports —
        // i.e. open-addressed lookup == linear scan over what is resident.
        let cfg = CacheConfig {
            size_bytes: 64 * 64 * 4, // 64 sets x 4 ways
            ways: 4,
            latency: 1,
            mshrs: 4,
            replacement: ReplacementKind::Lru,
        };
        let mut cache = Cache::new("prop-oa", &cfg);
        let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (i, &line) in lines.iter().enumerate() {
            if matches!(cache.access(line, AccessKind::DemandLoad, i as u64), pythia_sim::cache::Lookup::Miss) {
                if let Some(ev) = cache.fill(line, i as u64, AccessKind::DemandLoad, 0) {
                    prop_assert!(resident.remove(&ev.line));
                }
                resident.insert(line);
            }
        }
        for &p in &probes {
            prop_assert_eq!(cache.probe(p), resident.contains(&p),
                "probe({}) disagrees with the linear-scan model", p);
        }
        prop_assert_eq!(cache.resident_lines(), resident.len());
    }

    #[test]
    fn mshr_occupancy_and_wait_bounds(
        reqs in proptest::collection::vec((0u64..50, 1u64..400), 1..300),
        capacity in 1usize..64,
    ) {
        use pythia_sim::cache::MshrFile;
        let mut mshr = MshrFile::new(capacity);
        let mut cycle = 0u64;
        let mut last_stalls = 0u64;
        for &(advance, latency) in &reqs {
            cycle += advance;
            let before = mshr.occupancy(cycle);
            prop_assert!(before <= capacity, "occupancy bound violated");
            let wait = mshr.allocate(cycle, cycle + latency);
            if before < capacity {
                prop_assert_eq!(wait, 0, "no wait while registers are free");
            }
            let stalls = mshr.stalls();
            prop_assert!(stalls >= last_stalls, "stall counter is monotone");
            prop_assert_eq!(stalls > last_stalls, wait > 0, "stall counted iff waited");
            last_stalls = stalls;
            prop_assert!(mshr.occupancy(cycle) <= capacity);
        }
        // Far in the future, everything retires.
        prop_assert_eq!(mshr.occupancy(u64::MAX), 0);
    }
}

/// Slow f64 reference model of the QVStore: the same plane hash
/// ([`pythia_core::qvstore::plane_slot`]) and layout, but double-precision
/// cells and no SWAR — the oracle the Q8.7 fixed-point implementation
/// must track within quantization tolerance. Max vault combine (the
/// paper's default, which `PythiaConfig::basic()` selects).
struct QvModelF64 {
    planes: usize,
    index_bits: u32,
    /// Sparse cell overrides keyed by `(vault, plane, slot, action)`;
    /// untouched cells hold `init`.
    cells: std::collections::HashMap<(usize, usize, usize, usize), f64>,
    init: f64,
}

impl QvModelF64 {
    fn new(cfg: &PythiaConfig) -> Self {
        Self {
            planes: cfg.planes,
            index_bits: cfg.plane_index_bits,
            cells: std::collections::HashMap::new(),
            // The store quantizes its per-plane init; start from the same
            // value so the models agree exactly at t=0.
            init: f64::from(pythia_core::qvstore::quantize(
                cfg.q_init() / cfg.planes as f32,
            )),
        }
    }

    fn cell(&self, vault: usize, plane: usize, value: u64, action: usize) -> f64 {
        let slot = pythia_core::qvstore::plane_slot(value, plane, self.index_bits);
        *self
            .cells
            .get(&(vault, plane, slot, action))
            .unwrap_or(&self.init)
    }

    fn q(&self, state: &[u64], action: usize) -> f64 {
        state
            .iter()
            .enumerate()
            .map(|(v, &value)| {
                (0..self.planes)
                    .map(|p| self.cell(v, p, value, action))
                    .sum::<f64>()
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The SARSA update in f64, with α and γ pre-quantized to the same
    /// 1/2¹⁶ grid the fixed-point path uses (so the only divergence left
    /// is the store's per-plane Q8.7 write-back rounding).
    #[allow(clippy::too_many_arguments)]
    fn sarsa(
        &mut self,
        s1: &[u64],
        a1: usize,
        r: f64,
        s2: &[u64],
        a2: usize,
        alpha: f64,
        gamma: f64,
    ) {
        let gamma_q = (gamma * 65536.0).round() / 65536.0;
        let per_plane_rate = (alpha / self.planes as f64 * 65536.0).round() / 65536.0;
        let delta = r + gamma_q * self.q(s2, a2) - self.q(s1, a1);
        let step = per_plane_rate * delta;
        let (floor, cap) = (
            f64::from(i16::MIN) / f64::from(pythia_core::qvstore::Q_ONE),
            f64::from(i16::MAX) / f64::from(pythia_core::qvstore::Q_ONE),
        );
        for (v, &value) in s1.iter().enumerate() {
            for p in 0..self.planes {
                let slot = pythia_core::qvstore::plane_slot(value, p, self.index_bits);
                let cell = self.cells.entry((v, p, slot, a1)).or_insert(self.init);
                *cell = (*cell + step).clamp(floor, cap);
            }
        }
    }
}

proptest! {
    #[test]
    fn fixed_point_sarsa_tracks_f64_reference(
        updates in proptest::collection::vec(
            (0u64..40, 0usize..16, -20i16..=20, 0u64..40, 0usize..16),
            1..60,
        ),
        alpha_pct in 5u32..30,
    ) {
        let cfg = PythiaConfig::basic();
        let alpha = alpha_pct as f32 / 100.0;
        let mut store = QvStore::new(&cfg);
        let mut model = QvModelF64::new(&cfg);
        for &(v1, a1, r, v2, a2) in &updates {
            let (s1, s2) = ([v1, v1 ^ 7], [v2, v2 ^ 7]);
            store.sarsa_update(&s1, a1, r as f32, &s2, a2, alpha, cfg.gamma);
            model.sarsa(&s1, a1, r as f64, &s2, a2, alpha as f64, cfg.gamma as f64);
        }
        // Each update's per-plane write-back rounds to the Q8.7 grid
        // (≤ half an LSB per plane); allow that per update plus slack for
        // the TD-error feedback of the accumulated drift.
        let tol = (updates.len() as f64 + 1.0)
            * cfg.planes as f64
            * (f64::from(pythia_core::qvstore::Q_ONE).recip())
            + 0.2;
        for &(v1, _, _, v2, _) in &updates {
            for probe in [[v1, v1 ^ 7], [v2, v2 ^ 7]] {
                for a in 0..cfg.actions.len() {
                    let got = f64::from(store.q(&probe, a));
                    let want = model.q(&probe, a);
                    prop_assert!(
                        (got - want).abs() <= tol,
                        "q({probe:?}, {a}): fixed-point {got} vs f64 reference {want}, tol {tol}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_point_argmax_matches_float_row_scan(
        updates in proptest::collection::vec(
            (0u64..60, 0usize..127, -20i16..=20),
            0..120,
        ),
        probes in proptest::collection::vec(0u64..200, 1..30),
        full_list in any::<bool>(),
    ) {
        // The basic 16-action list runs pure SWAR blocks; the full
        // 127-action list also exercises the scalar tail lanes.
        let cfg = if full_list {
            PythiaConfig::basic().with_actions(PythiaConfig::full_actions())
        } else {
            PythiaConfig::basic()
        };
        let n_actions = cfg.actions.len();
        let mut store = QvStore::new(&cfg);
        for &(v, a, r) in &updates {
            let s = [v, v ^ 7];
            store.sarsa_update(&s, a % n_actions, r as f32, &s, a % n_actions, 0.2, cfg.gamma);
        }
        for &p in &probes {
            let probe = [p, p ^ 7];
            let best = store.argmax(&probe);
            // Exact agreement with a scalar scan of the float row,
            // including the lowest-index tie-break.
            let row = store.q_row(&probe);
            let mut scan = 0usize;
            for (a, &q) in row.iter().enumerate().skip(1) {
                if q > row[scan] {
                    scan = a;
                }
            }
            prop_assert_eq!(best, scan, "probe {:?}: row {:?}", probe, row);
        }
    }

    #[test]
    fn fixed_point_saturation_never_wraps(
        updates in proptest::collection::vec(
            (0u64..10, 0usize..16, any::<bool>(), 10_000u32..1_000_000),
            1..200,
        ),
        alpha_pct in 10u32..=100,
    ) {
        // Enormous α·δ products must pin partials at the i16 rails, never
        // wrap past them: the combined Q stays inside the representable
        // window after every single update.
        let cfg = PythiaConfig::basic();
        let alpha = alpha_pct as f32 / 100.0;
        let cap = cfg.planes as f32 * f32::from(i16::MAX) / pythia_core::qvstore::Q_ONE as f32;
        let floor = cfg.planes as f32 * f32::from(i16::MIN) / pythia_core::qvstore::Q_ONE as f32;
        let mut store = QvStore::new(&cfg);
        for &(v, a, negative, magnitude) in &updates {
            let r = if negative { -(magnitude as f32) } else { magnitude as f32 };
            let s = [v, v ^ 7];
            store.sarsa_update(&s, a, r, &s, a, alpha, cfg.gamma);
            let q = store.q(&s, a);
            prop_assert!(
                (floor..=cap).contains(&q),
                "q({s:?}, {a}) = {q} escaped [{floor}, {cap}] after reward {r}"
            );
            for (vault, &value) in s.iter().enumerate() {
                let f = store.feature_q(vault, value, a);
                prop_assert!((floor..=cap).contains(&f), "feature_q wrapped: {f}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prefetchers_never_panic_on_arbitrary_streams(
        accesses in proptest::collection::vec((0u64..1u64<<30, 0u64..64, any::<bool>()), 1..300),
        which in 0usize..12,
    ) {
        use pythia_sim::prefetch::{DemandAccess, SystemFeedback};
        let names = pythia_prefetchers::available();
        let name = names[which % names.len()];
        let mut p = pythia_prefetchers::build(name, 3).unwrap();
        let fb = SystemFeedback { bandwidth_high: false, bandwidth_utilization_pct: 10 };
        for (i, (page, off, w)) in accesses.iter().enumerate() {
            let addr = page * 4096 + off * 64;
            let a = DemandAccess {
                pc: 0x400000 + (i as u64 % 16) * 4,
                addr,
                line: addr >> 6,
                is_write: *w,
                cycle: i as u64 * 10,
                missed: true,
            };
            for req in p.on_demand(&a, &fb) {
                // Requests address sane lines (non-saturated arithmetic).
                prop_assert!(req.line < 1u64 << 58);
            }
            if i % 3 == 0 {
                p.on_useful(addr >> 6);
            } else if i % 7 == 0 {
                p.on_useless(addr >> 6);
            }
        }
        let _ = p.stats();
    }
}
