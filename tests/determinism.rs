//! Determinism guarantees of the whole simulation stack: the property every
//! future parallel / sharded runner must preserve.
//!
//! Same (workload, prefetcher, seed) ⇒ byte-identical [`SimReport`]s;
//! different workload seeds ⇒ observably different runs.

use pythia::runner::{run_workload, RunSpec};
use pythia_sim::stats::SimReport;
use pythia_workloads::generators::{PatternKind, TraceSpec};
use pythia_workloads::{suites::Suite, Workload};

fn workload(seed: u64) -> Workload {
    let mut spec = TraceSpec::new(
        "det",
        PatternKind::SpatialFootprint {
            patterns: vec![vec![0, 2, 5, 11], vec![0, 7, 9]],
            noise_pct: 20,
        },
    )
    .with_seed(seed);
    spec.mem_pct = 40;
    spec.footprint_pages = 2048;
    Workload {
        name: "det".into(),
        suite: Suite::Spec06,
        spec,
    }
}

fn spec() -> RunSpec {
    RunSpec::single_core().with_budget(20_000, 60_000)
}

/// Byte-level fingerprint of a report: every counter, in a stable order.
fn fingerprint(report: &SimReport) -> Vec<u8> {
    format!("{report:?}").into_bytes()
}

#[test]
fn same_seed_same_report_across_prefetchers() {
    for prefetcher in ["pythia", "spp", "bingo"] {
        let w = workload(7);
        let a = run_workload(&w, prefetcher, &spec());
        let b = run_workload(&w, prefetcher, &spec());
        assert_eq!(a, b, "{prefetcher}: reruns with the same seed must agree");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{prefetcher}: reports must be byte-identical"
        );
    }
}

#[test]
fn different_seeds_differ() {
    for prefetcher in ["pythia", "spp", "bingo"] {
        let a = run_workload(&workload(7), prefetcher, &spec());
        let b = run_workload(&workload(8), prefetcher, &spec());
        assert_ne!(
            fingerprint(&a),
            fingerprint(&b),
            "{prefetcher}: different workload seeds must perturb the report"
        );
    }
}

#[test]
fn reports_survive_interleaved_runs() {
    // A run is not affected by other simulations happening "around" it
    // (no hidden global state) — the property a parallel runner relies on.
    let w = workload(7);
    let solo = run_workload(&w, "pythia", &spec());
    let _noise = run_workload(&workload(99), "spp", &spec());
    let again = run_workload(&w, "pythia", &spec());
    assert_eq!(
        solo, again,
        "interleaved unrelated runs must not perturb results"
    );
}
