//! Canonical-codec invariants: encode → parse → re-encode is a fixed
//! point (property-tested over generated specs and pinned over the whole
//! figure registry), and campaign digests are collision-free across every
//! registered figure and panel.

use proptest::prelude::*;

use pythia_bench::figures;
use pythia_core::PythiaConfig;
use pythia_stats::json::parse;
use pythia_sweep::codec::{self, Campaign};
use pythia_sweep::{ConfigPoint, PrefetcherSpec, SweepSpec, WorkUnit};
use pythia_workloads::all_suites;

/// A pseudo-random but *structurally rich* spec drawn from primitive
/// values: workload subsets, mixes, named prefetchers, an inline Pythia
/// variant, swept configs and a replication seed axis all get exercised.
#[allow(clippy::type_complexity)]
fn build_spec(
    name_tag: u16,
    unit_picks: Vec<(usize, bool)>,
    prefetcher_picks: Vec<usize>,
    variant: Option<(u8, u8, bool)>,
    configs: Vec<(u16, u16, u8)>,
    seeds: Vec<u64>,
) -> SweepSpec {
    const NAMES: [&str; 6] = ["stride", "spp", "bingo", "mlop", "next_line", "streamer"];
    let pool = all_suites();
    let mut spec = SweepSpec::new(&format!("gen-{name_tag}"));
    for (pick, homogeneous) in unit_picks {
        let w = &pool[pick % pool.len()];
        spec.units.push(if homogeneous {
            WorkUnit::homogeneous(w, 2, 7919)
        } else {
            WorkUnit::single(w.clone())
        });
    }
    for pick in prefetcher_picks {
        spec.prefetchers
            .push(PrefetcherSpec::named(NAMES[pick % NAMES.len()]));
    }
    if let Some((alpha_step, eq_pow, graded)) = variant {
        let mut cfg = PythiaConfig::tuned();
        // Exact f32 values only (the codec requires exact f32↔f64 trips).
        cfg.alpha = f32::from(alpha_step) / 256.0;
        cfg.eq_size = 1usize << (eq_pow % 12);
        cfg.graded_timeliness = graded;
        spec = spec.with_pythia_variant("gen-variant", cfg);
    }
    for (warmup, measure, mtps_pow) in configs {
        let system =
            pythia_sim::config::SystemConfig::single_core_with_mtps(150u64 << (mtps_pow % 7));
        spec.configs.push(ConfigPoint::new(
            &format!("cfg-{warmup}-{measure}"),
            system,
            u64::from(warmup) + 1_000,
            u64::from(measure) + 4_000,
        ));
    }
    spec.seeds = if seeds.is_empty() { vec![0] } else { seeds };
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_encode_parse_reencode_is_a_fixed_point(
        name_tag in any::<u16>(),
        unit_picks in proptest::collection::vec((0usize..64, any::<bool>()), 1..5),
        prefetcher_picks in proptest::collection::vec(0usize..6, 1..4),
        variant in proptest::option::of((any::<u8>(), any::<u8>(), any::<bool>())),
        configs in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 1..4),
        seeds in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let spec = build_spec(name_tag, unit_picks, prefetcher_picks, variant, configs, seeds);
        let encoded = codec::spec_json(&spec).render();
        let decoded = codec::spec_from_json(&parse(&encoded).expect("canonical text parses"))
            .expect("canonical text decodes");
        prop_assert_eq!(&decoded, &spec, "decode reproduces the spec");
        prop_assert_eq!(
            codec::spec_json(&decoded).render(),
            encoded,
            "re-encode reproduces the bytes"
        );

        // The digest is a pure function of the canonical bytes.
        let c1 = Campaign::single(spec.clone());
        let c2 = Campaign::single(decoded);
        prop_assert_eq!(c1.digest(), c2.digest());
    }
}

#[test]
fn every_registry_campaign_round_trips_exactly() {
    for def in figures::registry() {
        let campaign = figures::campaign(def.id).expect("registry entry builds");
        let text = campaign.canonical();
        let back = Campaign::parse(&text)
            .unwrap_or_else(|e| panic!("{}: canonical text fails to decode: {e}", def.id));
        assert_eq!(back, campaign, "{}: decode changed the campaign", def.id);
        assert_eq!(
            back.canonical(),
            text,
            "{}: re-encode changed the bytes",
            def.id
        );
    }
}

#[test]
fn registry_digests_are_collision_free_across_figures_and_panels() {
    let mut seen: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    for def in figures::registry() {
        let campaign = figures::campaign(def.id).expect("registry entry builds");
        let digest = campaign.digest();
        assert!(
            codec::is_digest(&digest),
            "{}: malformed digest {digest:?}",
            def.id
        );
        if let Some(previous) = seen.insert(digest.clone(), def.id.to_string()) {
            panic!(
                "digest collision between {previous} and {} ({digest})",
                def.id
            );
        }
        // Individual panels are campaigns too (the ad-hoc submission path)
        // and must not collide with each other or with any whole figure.
        // A one-panel figure IS its panel (same content, same digest by
        // design), so only multi-panel figures contribute extra entries.
        if campaign.panels.len() == 1 {
            continue;
        }
        for panel in campaign.panels {
            let digest = Campaign::single(panel.clone()).digest();
            if let Some(previous) =
                seen.insert(digest.clone(), format!("{}:{}", def.id, panel.name))
            {
                panic!(
                    "digest collision between {previous} and {}:{} ({digest})",
                    def.id, panel.name
                );
            }
        }
    }
    assert!(
        seen.len() > 30,
        "expected figures + panels, saw {}",
        seen.len()
    );
}
