//! Integration tests for the paper's customization story (§6.6): the same
//! Pythia hardware re-targeted through configuration registers.

use pythia::runner::{build_pythia_with, run_sources_with, run_workload, RunSpec};
use pythia_core::{ControlFlow, DataFlow, Feature, Pythia, PythiaConfig};
use pythia_sim::prefetch::Prefetcher;
use pythia_sim::trace::VecSource;
use pythia_stats::metrics::compare;
use pythia_workloads::generators::{PatternKind, TraceSpec};
use pythia_workloads::suites::Suite;
use pythia_workloads::Workload;

/// A noisy spatial-footprint workload on which basic Pythia measurably
/// overpredicts, so the strict-vs-basic comparison has real amplitude
/// (irregular-graph traces make the agent go near-silent in *both*
/// configurations, which reduces the comparison to noise).
fn overpredicting_workload() -> Workload {
    let mut spec = TraceSpec::new(
        "spatial_noisy",
        PatternKind::SpatialFootprint {
            patterns: vec![vec![0, 3, 7, 12], vec![0, 1, 9]],
            noise_pct: 30,
        },
    )
    .with_seed(31);
    spec.mem_pct = 45;
    spec.footprint_pages = 4096;
    Workload {
        name: "spatial_noisy".into(),
        suite: Suite::Ligra,
        spec,
    }
}

#[test]
fn strict_rewards_reduce_overprediction() {
    let w = overpredicting_workload();
    let spec = RunSpec::single_core().with_budget(100_000, 400_000);
    let baseline = run_workload(&w, "none", &spec);
    let basic = compare(&baseline, &run_workload(&w, "pythia", &spec));
    let strict = compare(&baseline, &run_workload(&w, "pythia_strict", &spec));
    // Guard: the workload must make basic Pythia overpredict, otherwise the
    // comparison below is vacuous.
    assert!(
        basic.overprediction > 0.02,
        "workload no longer provokes overprediction (basic: {})",
        basic.overprediction
    );
    assert!(
        strict.overprediction < basic.overprediction,
        "strict must overpredict less: {} vs {}",
        strict.overprediction,
        basic.overprediction
    );
}

#[test]
fn custom_feature_vector_is_honoured() {
    // A Pythia with only the PageOffset feature still runs and behaves
    // deterministically.
    let features = vec![Feature {
        control: ControlFlow::None,
        data: DataFlow::PageOffset,
    }];
    let cfg = PythiaConfig::basic().with_features(features);
    let trace = TraceSpec::new("t", PatternKind::Stream { store_every: 0 })
        .with_instructions(100_000)
        .generate();
    let spec = RunSpec::single_core().with_budget(10_000, 50_000);
    let c = cfg.clone();
    let report = run_sources_with(vec![VecSource::boxed(trace)], &spec, move |_| {
        build_pythia_with(c.clone())
    });
    assert!(report.cores[0].ipc() > 0.0);
    assert_eq!(Pythia::new(cfg).qvstore().vaults(), 1);
}

#[test]
fn larger_action_list_increases_storage_and_search_latency() {
    use pythia_core::pipeline::SearchPipeline;
    let basic = PythiaConfig::basic();
    let full = PythiaConfig::basic().with_actions(PythiaConfig::full_actions());
    let p_basic = Pythia::new(basic.clone());
    let p_full = Pythia::new(full.clone());
    assert!(p_full.storage_bits() > p_basic.storage_bits() * 6);
    assert!(
        SearchPipeline::new(&full).search_latency()
            > SearchPipeline::new(&basic).search_latency() * 6
    );
}

#[test]
fn reward_register_changes_policy_direction() {
    // Make not-prefetching maximally attractive: the agent should converge
    // to silence on any workload.
    let mut cfg = PythiaConfig::basic();
    cfg.rewards.no_prefetch_high_bw = 30;
    cfg.rewards.no_prefetch_low_bw = 30;
    cfg.rewards.accurate_timely = -5;
    cfg.rewards.accurate_late = -5;
    let trace = TraceSpec::new("t", PatternKind::Stream { store_every: 0 })
        .with_instructions(400_000)
        .generate();
    let spec = RunSpec::single_core().with_budget(100_000, 300_000);
    let c = cfg.clone();
    let report = run_sources_with(vec![VecSource::boxed(trace)], &spec, move |_| {
        build_pythia_with(c.clone())
    });
    let issued = report.prefetchers[0].issued;
    assert!(
        issued < report.cores[0].instructions / 100,
        "anti-prefetch rewards must silence the agent (issued {issued})"
    );
}

#[test]
fn seed_controls_exploration_stream() {
    let cfg_a = PythiaConfig::basic().with_seed(1);
    let cfg_b = PythiaConfig::basic().with_seed(2);
    let trace = TraceSpec::new("t", PatternKind::CloudMix { hot_pct: 20 })
        .with_instructions(100_000)
        .generate();
    let spec = RunSpec::single_core().with_budget(10_000, 50_000);
    let run = |cfg: PythiaConfig| {
        let t = trace.clone();
        run_sources_with(vec![VecSource::boxed(t)], &spec, move |_| {
            build_pythia_with(cfg.clone())
        })
    };
    let a = run(cfg_a.clone());
    let a2 = run(cfg_a);
    let b = run(cfg_b);
    assert_eq!(
        a.prefetchers[0].issued, a2.prefetchers[0].issued,
        "same seed, same run"
    );
    // Different seeds explore differently (statistically certain on 50k
    // demands with epsilon > 0).
    assert!(
        a.prefetchers[0].issued != b.prefetchers[0].issued
            || a.cores[0].cycles != b.cores[0].cycles,
        "different seeds should perturb the run"
    );
}
