//! The streaming trace pipeline's contract, pinned for every
//! [`PatternKind`]:
//!
//! 1. the streaming generator yields exactly the sequence `generate()`
//!    materializes (and replays it identically after a reset),
//! 2. the binary codec round-trips (encode → decode → re-encode is
//!    byte-identical), streaming writer included,
//! 3. simulating from a stream, from a materialized `Vec`, and from a
//!    recorded trace file all produce byte-identical [`SimReport`]s.

use pythia::runner::{run_sources, RunSpec};
use pythia_sim::stats::SimReport;
use pythia_sim::trace::{
    decode_trace, encode_trace, FileTraceSource, TraceSource, TraceWriter, VecSource,
};
use pythia_workloads::{PatternKind, TraceSpec};

/// One spec per pattern class, small enough to simulate quickly.
fn all_pattern_specs() -> Vec<TraceSpec> {
    let kinds = vec![
        PatternKind::Stream { store_every: 3 },
        PatternKind::Stride { lines: 4 },
        PatternKind::PageVisit {
            offsets: vec![0, 23],
        },
        PatternKind::SpatialFootprint {
            patterns: vec![vec![0, 3, 7, 12], vec![1, 4]],
            noise_pct: 10,
        },
        PatternKind::DeltaChain {
            deltas: vec![2, 5, -1, 3],
        },
        PatternKind::IrregularGraph {
            vertices: 50_000,
            avg_degree: 6,
        },
        PatternKind::PointerChase,
        PatternKind::CloudMix { hot_pct: 30 },
        PatternKind::Phased {
            phases: vec![
                PatternKind::Stream { store_every: 0 },
                PatternKind::PointerChase,
            ],
            phase_len: 500,
        },
    ];
    kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            TraceSpec::new(format!("pattern-{i}"), kind)
                .with_instructions(12_000)
                .with_seed(40 + i as u64)
                .with_footprint_pages(1024)
        })
        .collect()
}

#[test]
fn stream_yields_exactly_the_materialized_sequence() {
    for spec in all_pattern_specs() {
        let materialized = spec.generate();
        let streamed: Vec<_> = spec.stream().collect();
        assert_eq!(
            materialized, streamed,
            "{}: stream() must equal generate()",
            spec.name
        );
    }
}

#[test]
fn stream_reset_replays_identically() {
    for spec in all_pattern_specs() {
        let mut stream = spec.stream();
        let first: Vec<_> = std::iter::from_fn(|| stream.next_record()).collect();
        assert_eq!(stream.next_record(), None, "{}: pass ended", spec.name);
        stream.reset();
        let second: Vec<_> = std::iter::from_fn(|| stream.next_record()).collect();
        assert_eq!(first, second, "{}: reset must replay", spec.name);
        assert_eq!(first.len(), spec.instructions);
    }
}

#[test]
fn codec_roundtrips_byte_identically_for_every_pattern() {
    for spec in all_pattern_specs() {
        let records = spec.generate();
        let encoded = encode_trace(&records);
        let decoded = decode_trace(encoded.clone()).expect("decode");
        assert_eq!(records, decoded, "{}: decode(encode(t)) == t", spec.name);
        let reencoded = encode_trace(&decoded);
        assert_eq!(
            encoded, reencoded,
            "{}: encode → decode → re-encode must be byte-identical",
            spec.name
        );
    }
}

#[test]
fn streaming_writer_matches_the_one_shot_encoder() {
    let dir = std::env::temp_dir().join("pythia_trace_streaming");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for spec in all_pattern_specs() {
        let path = dir.join(format!("{}_{}.pytr", spec.name, std::process::id()));
        let mut writer = TraceWriter::create(&path).expect("create");
        let mut stream = spec.stream();
        while let Some(r) = stream.next_record() {
            writer.write_record(&r).expect("write record");
        }
        writer.finish().expect("finish");
        let on_disk = std::fs::read(&path).expect("read back");
        assert_eq!(
            on_disk,
            encode_trace(&spec.generate()).to_vec(),
            "{}: streamed file must equal encode_trace output",
            spec.name
        );
        std::fs::remove_file(&path).ok();
    }
}

fn simulate(source: Box<dyn TraceSource>, spec: &RunSpec) -> SimReport {
    run_sources(vec![source], "pythia", spec)
}

#[test]
fn streaming_materialized_and_file_replay_reports_are_byte_identical() {
    let dir = std::env::temp_dir().join("pythia_trace_streaming_sim");
    std::fs::create_dir_all(&dir).expect("temp dir");
    // Budgets force trace wrap-around (trace len 12 K < warmup+measure),
    // so the reset path is covered too.
    let run = RunSpec::single_core().with_budget(4_000, 16_000);
    for spec in all_pattern_specs() {
        let from_stream = simulate(spec.source(), &run);
        let from_vec = simulate(VecSource::boxed(spec.generate()), &run);
        assert_eq!(
            from_stream, from_vec,
            "{}: streaming and materialized runs must agree",
            spec.name
        );

        let path = dir.join(format!("{}_{}.pytr", spec.name, std::process::id()));
        let mut writer = TraceWriter::create(&path).expect("create");
        let mut stream = spec.stream();
        while let Some(r) = stream.next_record() {
            writer.write_record(&r).expect("write record");
        }
        writer.finish().expect("finish");
        let from_file = simulate(Box::new(FileTraceSource::open(&path).expect("open")), &run);
        assert_eq!(
            from_stream, from_file,
            "{}: file replay must reproduce the direct run",
            spec.name
        );
        std::fs::remove_file(&path).ok();
    }
}
