//! High-level experiment runner: build a system, attach prefetchers by
//! name, run the paper's warmup/measure methodology, and compute the
//! Appendix A.6 metrics against a no-prefetching baseline.
//!
//! This is the API the examples, the integration tests and the
//! `pythia-sweep` experiment-campaign engine are written against. The
//! figure/table harnesses in `pythia-bench` no longer loop over
//! [`run_workload`] directly — they declare grids as `pythia_sweep::SweepSpec`s
//! that expand into [`run_sources`]/[`run_sources_with`] jobs executed on
//! [`run_parallel`] (the in-process stand-in for the paper's slurm
//! fan-out, §A.5), so regenerating the whole evaluation is an
//! embarrassingly parallel, machine-checkable operation.
//!
//! Simulations are fed by `pythia_sim::trace::TraceSource` streams —
//! workload generators ([`pythia_workloads::Workload::source`]) or trace
//! files (`pythia_sim::trace::FileTraceSource`) — so no path in the
//! runner ever materializes a full trace; peak memory is independent of
//! trace length.
//!
//! [`evaluate_suite`] / [`evaluate_suite_parallel`] remain as the simple
//! single-axis API for examples and tests; for anything with more than one
//! swept axis, or for JSON/CSV artifacts, reach for `pythia-sweep`.

use pythia_core::{Pythia, PythiaConfig};
use pythia_prefetchers::multi::Multi;
use pythia_prefetchers::registry;
use pythia_prefetchers::stride::StridePrefetcher;
use pythia_sim::config::SystemConfig;
use pythia_sim::prefetch::Prefetcher;
use pythia_sim::stats::SimReport;
use pythia_sim::system::{System, WindowRow};
use pythia_sim::trace::TraceSource;
use pythia_stats::metrics::{self, Metrics};
use pythia_workloads::Workload;

/// Prefetcher names only [`build_prefetcher`] knows (not in the registry).
/// Consumed by the CLI listing and the registry-coverage test so the three
/// places cannot drift apart.
pub const RUNNER_ONLY: &[&str] = &[
    "pythia",
    "pythia_strict",
    "pythia_bw_oblivious",
    "stride+pythia",
];

/// Builds any prefetcher in the workspace by name: every baseline from
/// [`pythia_prefetchers::registry`] plus the Pythia variants:
///
/// * `"pythia"` — the Table 2 configuration with the re-derived learning
///   rate ([`PythiaConfig::tuned`])
/// * `"pythia_strict"` — §6.6.1 reward customization
/// * `"pythia_bw_oblivious"` — §6.3.3 ablation
/// * `"stride+pythia"` — the multi-level configuration of §6.2.4
///
/// Returns `None` for unknown names.
pub fn build_prefetcher(name: &str, seed: u64) -> Option<Box<dyn Prefetcher>> {
    match name {
        "pythia" => Some(Box::new(Pythia::new(PythiaConfig::tuned().with_seed(seed)))),
        "pythia_strict" => Some(Box::new(Pythia::new(
            PythiaConfig::strict().with_seed(seed),
        ))),
        "pythia_bw_oblivious" => Some(Box::new(Pythia::new(
            PythiaConfig::bandwidth_oblivious().with_seed(seed),
        ))),
        "stride+pythia" => Some(Box::new(Multi::new(vec![
            Box::new(StridePrefetcher::default()),
            Box::new(Pythia::new(PythiaConfig::tuned().with_seed(seed))),
        ]))),
        other => registry::build(other, seed),
    }
}

/// Builds a Pythia with a custom configuration (for the customization
/// experiments of §6.6).
pub fn build_pythia_with(config: PythiaConfig) -> Box<dyn Prefetcher> {
    Box::new(Pythia::new(config))
}

/// Warmup/measure instruction budgets (the paper's §5 methodology scaled to
/// synthetic traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// System configuration.
    pub system: SystemConfig,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub measure: u64,
}

impl RunSpec {
    /// Single-core default: 50 K warmup + 200 K measured (the paper uses
    /// 100 M + 500 M on real traces; the synthetic patterns reach steady
    /// state much sooner).
    pub fn single_core() -> Self {
        Self {
            system: SystemConfig::single_core(),
            warmup: 50_000,
            measure: 200_000,
        }
    }

    /// `n`-core default with the Table 5 channel scaling.
    pub fn multi_core(n: usize) -> Self {
        Self {
            system: SystemConfig::with_cores(n),
            warmup: 25_000,
            measure: 100_000,
        }
    }

    /// Overrides the system configuration.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Overrides the instruction budgets.
    pub fn with_budget(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Trace length covering the whole run (warmup + measured phase) —
    /// the length [`run_workload`] streams per core.
    pub fn trace_len(&self) -> usize {
        (self.warmup + self.measure) as usize
    }
}

/// Runs one workload on a single-core (or the spec's) system with the named
/// prefetcher, streaming the trace on demand.
///
/// # Panics
///
/// Panics if `prefetcher` is unknown (see [`build_prefetcher`]).
pub fn run_workload(workload: &Workload, prefetcher: &str, spec: &RunSpec) -> SimReport {
    assert_eq!(
        spec.system.cores, 1,
        "run_workload is single-core; use run_mix"
    );
    run_sources(vec![workload.source(spec.trace_len())], prefetcher, spec)
}

/// Runs an `n`-core mix (one workload per core), streaming every trace.
pub fn run_mix(workloads: &[Workload], prefetcher: &str, spec: &RunSpec) -> SimReport {
    assert_eq!(workloads.len(), spec.system.cores, "one workload per core");
    let sources = workloads
        .iter()
        .map(|w| w.source(spec.trace_len()))
        .collect();
    run_sources(sources, prefetcher, spec)
}

/// Runs raw trace sources (one per core) with the named prefetcher.
/// Sources can be streaming generators ([`Workload::source`]), trace
/// files (`pythia_sim::trace::FileTraceSource`), or in-memory traces
/// (`pythia_sim::trace::VecSource`).
pub fn run_sources(
    sources: Vec<Box<dyn TraceSource>>,
    prefetcher: &str,
    spec: &RunSpec,
) -> SimReport {
    let mut system = build_system(sources, prefetcher, spec);
    system.run(spec.warmup, spec.measure)
}

/// Like [`run_workload`], but with the simulator's windowed telemetry
/// enabled: alongside the [`SimReport`], returns one vector of
/// [`WindowRow`]s per core, each row covering `window` retired
/// instructions of the measured phase. Telemetry is strictly read-only,
/// so the report is byte-identical to [`run_workload`]'s
/// (pinned by `tests/telemetry.rs`).
pub fn run_workload_telemetry(
    workload: &Workload,
    prefetcher: &str,
    spec: &RunSpec,
    window: u64,
) -> (SimReport, Vec<Vec<WindowRow>>) {
    assert_eq!(
        spec.system.cores, 1,
        "run_workload_telemetry is single-core; use run_sources_telemetry"
    );
    run_sources_telemetry(
        vec![workload.source(spec.trace_len())],
        prefetcher,
        spec,
        window,
    )
}

/// Telemetry-enabled variant of [`run_sources`] (see
/// [`run_workload_telemetry`]).
pub fn run_sources_telemetry(
    sources: Vec<Box<dyn TraceSource>>,
    prefetcher: &str,
    spec: &RunSpec,
    window: u64,
) -> (SimReport, Vec<Vec<WindowRow>>) {
    let mut system = build_system(sources, prefetcher, spec);
    system.enable_telemetry(window);
    let report = system.run(spec.warmup, spec.measure);
    let rows = system.take_telemetry().expect("telemetry was enabled");
    (report, rows)
}

/// Shared constructor for [`run_sources`] / [`run_sources_telemetry`]:
/// both paths must derive identical per-core seeds or the telemetry
/// variant would simulate a different system.
fn build_system(sources: Vec<Box<dyn TraceSource>>, prefetcher: &str, spec: &RunSpec) -> System {
    let name = prefetcher.to_string();
    System::with_prefetchers(spec.system, sources, move |core| {
        build_prefetcher(&name, 0x517e_a5e5 ^ core as u64)
            .unwrap_or_else(|| panic!("unknown prefetcher {name:?}"))
    })
}

/// Runs raw trace sources with per-core prefetchers built by `factory`.
pub fn run_sources_with(
    sources: Vec<Box<dyn TraceSource>>,
    spec: &RunSpec,
    factory: impl Fn(usize) -> Box<dyn Prefetcher>,
) -> SimReport {
    let mut system = System::with_prefetchers(spec.system, sources, factory);
    system.run(spec.warmup, spec.measure)
}

/// Result of evaluating one prefetcher on one workload.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Workload name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Derived metrics vs. the no-prefetching baseline.
    pub metrics: Metrics,
}

/// Evaluates several prefetchers across workloads (single-core), running
/// the baseline once per workload.
pub fn evaluate_suite(
    workloads: &[Workload],
    prefetchers: &[&str],
    spec: &RunSpec,
) -> Vec<Evaluation> {
    let mut out = Vec::new();
    for w in workloads {
        let baseline = run_workload(w, "none", spec);
        for &p in prefetchers {
            let report = run_workload(w, p, spec);
            out.push(Evaluation {
                workload: w.name.clone(),
                prefetcher: p.to_string(),
                metrics: metrics::compare(&baseline, &report),
            });
        }
    }
    out
}

/// Geometric-mean speedup of one prefetcher across an evaluation set.
pub fn geomean_speedup(evals: &[Evaluation], prefetcher: &str) -> f64 {
    let s: Vec<f64> = evals
        .iter()
        .filter(|e| e.prefetcher == prefetcher)
        .map(|e| e.metrics.speedup)
        .collect();
    metrics::geomean(&s)
}

/// Runs `jobs` closures on up to `threads` worker threads and returns their
/// results in input order. Each job is an independent simulation, so the
/// experiment harness parallelizes across (workload × prefetcher) pairs —
/// the in-process stand-in for the paper's slurm fan-out (§A.5).
pub fn run_parallel<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>, threads: usize) -> Vec<T> {
    assert!(threads > 0, "need at least one worker thread");
    let n = jobs.len();
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let queue: crossbeam::queue::SegQueue<(usize, Box<dyn FnOnce() -> T + Send>)> =
        crossbeam::queue::SegQueue::new();
    for (i, j) in jobs.into_iter().enumerate() {
        queue.push((i, j));
    }
    let results_mutex = std::sync::Mutex::new(&mut results);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| {
                while let Some((i, job)) = queue.pop() {
                    let value = job();
                    results_mutex.lock().expect("no poisoned workers")[i] = Some(value);
                }
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

/// Parallel version of [`evaluate_suite`]: runs every (workload, prefetcher)
/// simulation — baselines included — across `threads` workers.
pub fn evaluate_suite_parallel(
    workloads: &[Workload],
    prefetchers: &[&str],
    spec: &RunSpec,
    threads: usize,
) -> Vec<Evaluation> {
    // Baselines first (one per workload), in parallel.
    let baseline_jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = workloads
        .iter()
        .map(|w| {
            let w = w.clone();
            let spec = *spec;
            Box::new(move || run_workload(&w, "none", &spec))
                as Box<dyn FnOnce() -> SimReport + Send>
        })
        .collect();
    let baselines = run_parallel(baseline_jobs, threads);

    // Then the full cross product.
    let mut jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = Vec::new();
    for w in workloads {
        for &p in prefetchers {
            let w = w.clone();
            let p = p.to_string();
            let spec = *spec;
            jobs.push(Box::new(move || run_workload(&w, &p, &spec)));
        }
    }
    let reports = run_parallel(jobs, threads);

    let mut out = Vec::with_capacity(reports.len());
    let mut it = reports.into_iter();
    for (wi, w) in workloads.iter().enumerate() {
        for &p in prefetchers {
            let report = it.next().expect("report per job");
            out.push(Evaluation {
                workload: w.name.clone(),
                prefetcher: p.to_string(),
                metrics: metrics::compare(&baselines[wi], &report),
            });
        }
    }
    out
}
