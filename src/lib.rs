//! # pythia
//!
//! Facade crate for the Rust reproduction of *Pythia: A Customizable
//! Hardware Prefetching Framework Using Online Reinforcement Learning*
//! (Bera et al., MICRO 2021).
//!
//! Re-exports the workspace crates and provides a high-level [`runner`] API
//! used by the examples, integration tests, and the experiment harness.

pub use pythia_core as core;
pub use pythia_prefetchers as prefetchers;
pub use pythia_sim as sim;
pub use pythia_stats as stats;
pub use pythia_workloads as workloads;

pub mod runner;
