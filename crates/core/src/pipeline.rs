//! Cycle model of the pipelined QVStore search (§4.2.2, Fig. 6).
//!
//! To find `argmax_a Q(S, a)` the hardware iterates over the action list
//! through a five-stage pipeline:
//!
//! | Stage | Work |
//! |---|---|
//! | 0 | index generation for each plane of each feature |
//! | 1 | retrieve partial feature-action Q-values |
//! | 2 | sum partial Q-values per feature (longest stage) |
//! | 3 | max across features → state-action Q-value |
//! | 4 | compare against the running max |
//!
//! One action enters the pipeline per cycle (initiation interval 1), so a
//! full search over `n` actions takes `n - 1 + depth` cycles. This module
//! reproduces that arithmetic so experiments can report prediction latency
//! for arbitrary configurations.

use crate::config::PythiaConfig;

/// Number of pipeline stages (Fig. 6: Stage 0 through Stage 4).
pub const STAGES: u64 = 5;

/// Latency model of the QVStore search pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchPipeline {
    actions: u64,
    /// Adder-tree depth of Stage 2 (log2 of planes, at least 1).
    sum_depth: u64,
    /// Comparator-tree depth of Stage 3 (log2 of vaults, at least 1).
    max_depth: u64,
}

impl SearchPipeline {
    /// Builds the pipeline model for a configuration.
    pub fn new(config: &PythiaConfig) -> Self {
        Self {
            actions: config.actions.len() as u64,
            sum_depth: (config.planes as u64)
                .next_power_of_two()
                .trailing_zeros()
                .max(1) as u64,
            max_depth: (config.features.len() as u64)
                .next_power_of_two()
                .trailing_zeros()
                .max(1) as u64,
        }
    }

    /// Cycles from presenting a state to knowing the best action, assuming
    /// one action issues per cycle.
    pub fn search_latency(&self) -> u64 {
        STAGES + self.actions - 1
    }

    /// Latency of retrieving a single action's Q-value.
    pub fn single_lookup_latency(&self) -> u64 {
        STAGES
    }

    /// The pipeline's critical stage depth in "logic levels" — Stage 2's
    /// adder tree per the paper ("the longest stage ... dictates the
    /// pipeline's throughput").
    pub fn critical_stage_depth(&self) -> u64 {
        self.sum_depth.max(self.max_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_search_is_20_cycles() {
        // 16 actions through a 5-stage pipeline: 5 + 15 = 20 cycles.
        let p = SearchPipeline::new(&PythiaConfig::basic());
        assert_eq!(p.search_latency(), 20);
        assert_eq!(p.single_lookup_latency(), 5);
    }

    #[test]
    fn full_action_list_is_much_slower() {
        let full = PythiaConfig::basic().with_actions(PythiaConfig::full_actions());
        let p = SearchPipeline::new(&full);
        assert_eq!(p.search_latency(), 5 + 127 - 1);
        // This is the latency argument for action pruning (§4.3.2).
        assert!(
            p.search_latency() > 6 * SearchPipeline::new(&PythiaConfig::basic()).search_latency()
        );
    }

    #[test]
    fn critical_stage_reflects_plane_count() {
        let p = SearchPipeline::new(&PythiaConfig::basic());
        assert!(p.critical_stage_depth() >= 1);
        let mut cfg = PythiaConfig::basic();
        cfg.planes = 8;
        let deep = SearchPipeline::new(&cfg);
        assert!(deep.critical_stage_depth() >= p.critical_stage_depth());
    }
}
