//! Hardware cost model: reproduces the storage budget of Table 4 and the
//! area/power overheads of Table 8.
//!
//! The paper's absolute numbers come from Chisel RTL synthesized with a
//! GlobalFoundries 14 nm library — not reproducible without the PDK. What
//! *is* reproducible is the arithmetic behind them: bit-widths × entry
//! counts for storage, and proportional scaling of the published area/power
//! figures for non-basic configurations (documented substitution in
//! DESIGN.md).

use serde::{Deserialize, Serialize};

use crate::config::PythiaConfig;
use crate::qvstore::QV_ENTRY_BITS;

/// Storage breakdown of a Pythia configuration (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageBreakdown {
    /// QVStore bits: vaults × planes × entries × actions ×
    /// [`QV_ENTRY_BITS`] — the Q8.7 fixed-point entries the store
    /// actually allocates, not an assumed width.
    pub qvstore_bits: u64,
    /// EQ bits: entries × (state + action idx + reward + filled + address).
    pub eq_bits: u64,
}

impl StorageBreakdown {
    /// Total metadata bits.
    pub fn total_bits(&self) -> u64 {
        self.qvstore_bits + self.eq_bits
    }

    /// Total metadata in kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }

    /// QVStore share of the total.
    pub fn qvstore_fraction(&self) -> f64 {
        self.qvstore_bits as f64 / self.total_bits() as f64
    }
}

/// Computes the Table 4 storage breakdown for a configuration.
pub fn storage(config: &PythiaConfig) -> StorageBreakdown {
    let entries = 1u64 << config.plane_index_bits;
    let qvstore_bits = config.features.len() as u64
        * config.planes as u64
        * entries
        * config.actions.len() as u64
        * QV_ENTRY_BITS;
    // Table 4 EQ entry: state (21 b) + action index (5 b) + reward (5 b) +
    // filled bit (1 b) + address (16 b) = 48 b.
    let state_bits = 21u64;
    let action_bits = 5u64;
    let reward_bits = 5u64;
    let filled_bits = 1u64;
    let address_bits = 16u64;
    let eq_bits = config.eq_size as u64
        * (state_bits + action_bits + reward_bits + filled_bits + address_bits);
    StorageBreakdown {
        qvstore_bits,
        eq_bits,
    }
}

/// Published synthesis results for the basic configuration (§6.7): used as
/// the anchor for proportional estimates.
pub mod anchors {
    /// Pythia area in mm² (14 nm, basic config).
    pub const AREA_MM2: f64 = 0.33;
    /// Pythia power in mW (basic config).
    pub const POWER_MW: f64 = 55.11;
    /// QVStore's share of total area.
    pub const QVSTORE_AREA_SHARE: f64 = 0.904;
    /// QVStore's share of total power.
    pub const QVSTORE_POWER_SHARE: f64 = 0.956;
}

/// Area/power estimate for an arbitrary configuration, scaled from the
/// published basic-configuration synthesis by QVStore storage ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadEstimate {
    /// Estimated area in mm² per core.
    pub area_mm2: f64,
    /// Estimated power in mW per core.
    pub power_mw: f64,
}

impl OverheadEstimate {
    /// Overhead relative to a processor of `cores` cores with the given die
    /// area (mm²) — the Table 8 percentages.
    pub fn area_overhead_pct(&self, cores: usize, die_area_mm2: f64) -> f64 {
        self.area_mm2 * cores as f64 / die_area_mm2 * 100.0
    }
}

/// Estimates area/power by scaling the published anchors with the QVStore
/// storage ratio (QVStore dominates both, §6.7).
pub fn estimate_overhead(config: &PythiaConfig) -> OverheadEstimate {
    let basic = storage(&PythiaConfig::basic());
    let this = storage(config);
    let ratio = this.qvstore_bits as f64 / basic.qvstore_bits as f64;
    let area = anchors::AREA_MM2
        * (anchors::QVSTORE_AREA_SHARE * ratio + (1.0 - anchors::QVSTORE_AREA_SHARE));
    let power = anchors::POWER_MW
        * (anchors::QVSTORE_POWER_SHARE * ratio + (1.0 - anchors::QVSTORE_POWER_SHARE));
    OverheadEstimate {
        area_mm2: area,
        power_mw: power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_total_is_25_5_kb() {
        let s = storage(&PythiaConfig::basic());
        assert_eq!(s.qvstore_bits / 8 / 1024, 24, "QVStore must be 24 KB");
        assert_eq!(s.eq_bits, 256 * 48);
        assert_eq!(s.eq_bits / 8 / 1024, 1, "EQ must be 1.5 KB (rounds to 1)");
        assert!(
            (s.total_kb() - 25.5).abs() < 0.01,
            "total {} KB",
            s.total_kb()
        );
    }

    #[test]
    fn qvstore_reports_the_true_fixed_point_budget() {
        // The live store, the cost model and the paper's Table 4 hardware
        // budget must all agree on the bit count: 2 vaults × 3 planes ×
        // 128 entries × 16 actions × 16-bit Q8.7 entries = 196,608 bits.
        let cfg = PythiaConfig::basic();
        let live = crate::qvstore::QvStore::new(&cfg).storage_bits();
        assert_eq!(live, storage(&cfg).qvstore_bits);
        assert_eq!(live, 196_608);
        assert_eq!(live / 8 / 1024, 24, "Table 4 budgets the QVStore 24 KB");
        // The in-memory representation matches the accounted width exactly:
        // an i16 per entry, no hidden f32 shadow copies.
        assert_eq!(crate::qvstore::QV_ENTRY_BITS, 16);
        assert_eq!(
            std::mem::size_of::<i16>() as u64 * 8,
            crate::qvstore::QV_ENTRY_BITS
        );
    }

    #[test]
    fn qvstore_dominates_storage() {
        let s = storage(&PythiaConfig::basic());
        assert!(s.qvstore_fraction() > 0.9);
    }

    #[test]
    fn basic_overhead_matches_published_anchor() {
        let o = estimate_overhead(&PythiaConfig::basic());
        assert!((o.area_mm2 - anchors::AREA_MM2).abs() < 1e-9);
        assert!((o.power_mw - anchors::POWER_MW).abs() < 1e-9);
    }

    #[test]
    fn table8_percentages_reproduce() {
        // 4-core Skylake D-2123IT: Pythia in all 4 cores incurs 1.03% area.
        // Die area implied: 4 * 0.33 / 0.0103 = ~128 mm².
        let o = estimate_overhead(&PythiaConfig::basic());
        let pct = o.area_overhead_pct(4, 128.0);
        assert!((pct - 1.03).abs() < 0.05, "got {pct}%");
    }

    #[test]
    fn larger_state_vector_scales_overhead() {
        let mut cfg = PythiaConfig::basic();
        cfg.features.push(crate::features::Feature {
            control: crate::features::ControlFlow::PcPath,
            data: crate::features::DataFlow::PageOffset,
        });
        let bigger = estimate_overhead(&cfg);
        let base = estimate_overhead(&PythiaConfig::basic());
        assert!(bigger.area_mm2 > base.area_mm2);
        assert!(bigger.power_mw > base.power_mw);
        // Adding a vault scales QVStore by 1.5x.
        let s = storage(&cfg);
        assert_eq!(
            s.qvstore_bits,
            storage(&PythiaConfig::basic()).qvstore_bits * 3 / 2
        );
    }

    #[test]
    fn full_action_list_costs_8x_storage() {
        let pruned = storage(&PythiaConfig::basic());
        let full = storage(&PythiaConfig::basic().with_actions(PythiaConfig::full_actions()));
        // 127 actions vs 16: ~7.9x QVStore.
        assert!(full.qvstore_bits > pruned.qvstore_bits * 7);
        assert!(full.qvstore_bits < pruned.qvstore_bits * 9);
    }
}
