//! Program features: the state space of the RL formulation (§3.1, Table 3).
//!
//! Each feature concatenates a **control-flow component** (load PC, PC-path,
//! PC⊕branch-PC, or none) with a **data-flow component** (cacheline address,
//! page number, page offset, delta, last-4 offsets, last-4 deltas,
//! offset⊕delta, or none) — 4 × 8 = 32 candidate features, from which the
//! automated design-space exploration (§4.3.1) picks the state vector. The
//! winning basic configuration uses `PC+Delta` and `Sequence of last-4
//! deltas` (Table 2).
//!
//! [`FeatureContext`] is the streaming extractor: feed it every demand
//! access and ask for any feature's current value (or the whole state
//! vector) at the triggering access.
//!
//! ```rust
//! use pythia_core::{Feature, FeatureContext};
//! use pythia_sim::prefetch::DemandAccess;
//!
//! let mut ctx = FeatureContext::new();
//! for i in 0..4u64 {
//!     let addr = 0x1000_0000 + i * 64;
//!     ctx.update(&DemandAccess {
//!         pc: 0x400100,
//!         addr,
//!         line: addr >> 6,
//!         is_write: false,
//!         cycle: i * 40,
//!         missed: true,
//!     });
//! }
//! assert_eq!(ctx.delta(), 1, "unit-stride stream");
//! let state = ctx.state(&[Feature::PC_DELTA, Feature::LAST_4_DELTAS]);
//! assert_eq!(state.len(), 2);
//! ```

use serde::{Deserialize, Serialize};

use pythia_sim::prefetch::DemandAccess;

/// Control-flow component of a feature (Table 3, left column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlFlow {
    /// PC of the load request.
    Pc,
    /// XOR of the last three load PCs ("PC-path").
    PcPath,
    /// PC XOR-ed with the PC of the immediately preceding branch.
    ///
    /// The trace interface does not deliver branch PCs to the prefetcher, so
    /// this reproduction substitutes the previous demand's PC — documented
    /// in DESIGN.md; the component keeps its role of mixing in recent
    /// control-flow context.
    PcXorBranchPc,
    /// No control-flow component.
    None,
}

/// Data-flow component of a feature (Table 3, right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataFlow {
    /// Load cacheline address.
    CachelineAddress,
    /// Physical page number.
    PageNumber,
    /// Line offset within the page (0..64).
    PageOffset,
    /// Delta, in lines, from the previous access to the same page.
    Delta,
    /// Concatenated sequence of the last four page offsets.
    LastFourOffsets,
    /// Concatenated sequence of the last four deltas (the SPP-like feature).
    LastFourDeltas,
    /// Page offset XOR-ed with the delta.
    OffsetXorDelta,
    /// No data-flow component.
    None,
}

/// A program feature: one dimension of the state vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Feature {
    /// Control-flow component.
    pub control: ControlFlow,
    /// Data-flow component.
    pub data: DataFlow,
}

impl Feature {
    /// The `PC+Delta` feature of the basic configuration.
    pub const PC_DELTA: Feature = Feature {
        control: ControlFlow::Pc,
        data: DataFlow::Delta,
    };
    /// The `Sequence of last-4 deltas` feature of the basic configuration.
    pub const LAST_4_DELTAS: Feature = Feature {
        control: ControlFlow::None,
        data: DataFlow::LastFourDeltas,
    };

    /// All 32 candidate features of the §4.3.1 exploration space.
    pub fn all() -> Vec<Feature> {
        let controls = [
            ControlFlow::Pc,
            ControlFlow::PcPath,
            ControlFlow::PcXorBranchPc,
            ControlFlow::None,
        ];
        let datas = [
            DataFlow::CachelineAddress,
            DataFlow::PageNumber,
            DataFlow::PageOffset,
            DataFlow::Delta,
            DataFlow::LastFourOffsets,
            DataFlow::LastFourDeltas,
            DataFlow::OffsetXorDelta,
            DataFlow::None,
        ];
        let mut out = Vec::with_capacity(32);
        for c in controls {
            for d in datas {
                out.push(Feature {
                    control: c,
                    data: d,
                });
            }
        }
        out
    }

    /// Short human-readable name, e.g. `"PC+Delta"`.
    pub fn label(&self) -> String {
        let c = match self.control {
            ControlFlow::Pc => "PC",
            ControlFlow::PcPath => "PCPath",
            ControlFlow::PcXorBranchPc => "PC^BrPC",
            ControlFlow::None => "",
        };
        let d = match self.data {
            DataFlow::CachelineAddress => "Address",
            DataFlow::PageNumber => "Page",
            DataFlow::PageOffset => "Offset",
            DataFlow::Delta => "Delta",
            DataFlow::LastFourOffsets => "Last4Offsets",
            DataFlow::LastFourDeltas => "Last4Deltas",
            DataFlow::OffsetXorDelta => "Offset^Delta",
            DataFlow::None => "",
        };
        match (c.is_empty(), d.is_empty()) {
            (false, false) => format!("{c}+{d}"),
            (false, true) => c.to_string(),
            (true, false) => d.to_string(),
            (true, true) => "Const".to_string(),
        }
    }
}

const PAGE_TABLE_ENTRIES: usize = 64;
// `valid_mask` packs one bit per slot into a u64.
const _: () = assert!(PAGE_TABLE_ENTRIES == u64::BITS as usize);

/// Per-page access history (everything but the tag, which lives in the
/// context's SoA tag array so the per-access page lookup scans a dense
/// 512-byte tag vector instead of a strided struct array).
#[derive(Debug, Clone, Copy, Default)]
struct PageHistory {
    last_offset: i32,
    /// Last four deltas, most recent in slot 0 (7-bit signed each).
    deltas: [i8; 4],
    /// Last four offsets, most recent in slot 0.
    offsets: [u8; 4],
    lru: u64,
}

/// Tracks the program context needed to evaluate features: recent PCs and
/// per-page access history (the hardware would hold this next to the
/// prefetcher's request queue).
#[derive(Debug, Clone)]
pub struct FeatureContext {
    pcs: [u64; 3],
    prev_pc: u64,
    /// Page tags, scanned contiguously on every access.
    page_tags: [u64; PAGE_TABLE_ENTRIES],
    /// Bit `i` set ⇔ `page_tags[i]`/`page_hist[i]` hold a live entry.
    valid_mask: u64,
    /// Slot of the most recently touched page — checked before the full
    /// tag scan (demand streams revisit the same page in bursts).
    mru_slot: usize,
    page_hist: [PageHistory; PAGE_TABLE_ENTRIES],
    clock: u64,
    /// Snapshot of the current access, filled by [`FeatureContext::update`].
    line: u64,
    page: u64,
    offset: u64,
    delta: i32,
    deltas: [i8; 4],
    offsets: [u8; 4],
}

impl FeatureContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self {
            pcs: [0; 3],
            prev_pc: 0,
            page_tags: [0; PAGE_TABLE_ENTRIES],
            valid_mask: 0,
            mru_slot: 0,
            page_hist: [PageHistory::default(); PAGE_TABLE_ENTRIES],
            clock: 0,
            line: 0,
            page: 0,
            offset: 0,
            delta: 0,
            deltas: [0; 4],
            offsets: [0; 4],
        }
    }

    /// First live slot holding `page`, scanning slots in index order (the
    /// same order the old `Vec::position` scan used). Branchless
    /// match-mask over the dense tag array so the compiler can vectorize.
    #[inline]
    fn find_page(&self, page: u64) -> Option<usize> {
        // MRU shortcut: page tags are unique, so finding the page in the
        // last-touched slot is the same answer the full scan would give.
        let mru = self.mru_slot;
        if self.valid_mask & (1 << mru) != 0 && self.page_tags[mru] == page {
            return Some(mru);
        }
        let mut matches = 0u64;
        for (i, &t) in self.page_tags.iter().enumerate() {
            matches |= u64::from(t == page) << i;
        }
        matches &= self.valid_mask;
        if matches != 0 {
            Some(matches.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Victim slot for a new page: the first invalid slot, else the first
    /// slot with the minimum LRU stamp — exactly the old
    /// `min_by_key(if valid { lru } else { 0 })` selection.
    #[inline]
    fn victim_slot(&self) -> usize {
        if self.valid_mask != u64::MAX {
            return (!self.valid_mask).trailing_zeros() as usize;
        }
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, h) in self.page_hist.iter().enumerate() {
            if h.lru < best {
                best = h.lru;
                victim = i;
            }
        }
        victim
    }

    /// Ingests a demand access, updating PC and per-page histories. After
    /// this call, [`FeatureContext::value`] evaluates features for this
    /// access.
    pub fn update(&mut self, access: &DemandAccess) {
        self.clock += 1;
        let page = access.page();
        let offset = access.page_offset();

        // Per-page history.
        let (delta, deltas, offsets) = match self.find_page(page) {
            Some(i) => {
                self.mru_slot = i;
                let e = &mut self.page_hist[i];
                e.lru = self.clock;
                let delta = offset as i32 - e.last_offset;
                if delta != 0 {
                    e.deltas = [delta as i8, e.deltas[0], e.deltas[1], e.deltas[2]];
                    e.offsets = [offset as u8, e.offsets[0], e.offsets[1], e.offsets[2]];
                    e.last_offset = offset as i32;
                }
                (delta, e.deltas, e.offsets)
            }
            None => {
                let victim = self.victim_slot();
                self.mru_slot = victim;
                self.page_tags[victim] = page;
                self.valid_mask |= 1 << victim;
                self.page_hist[victim] = PageHistory {
                    last_offset: offset as i32,
                    deltas: [0; 4],
                    offsets: [offset as u8, 0, 0, 0],
                    lru: self.clock,
                };
                (0, [0; 4], [offset as u8, 0, 0, 0])
            }
        };

        self.line = access.line;
        self.page = page;
        self.offset = offset;
        self.delta = delta;
        self.deltas = deltas;
        self.offsets = offsets;

        // PC history (after data-flow so "previous branch PC" predates this
        // access).
        self.prev_pc = self.pcs[0];
        self.pcs = [access.pc, self.pcs[0], self.pcs[1]];
    }

    /// Delta of the current access (lines, within its page).
    pub fn delta(&self) -> i32 {
        self.delta
    }

    /// Evaluates `feature` for the most recently ingested access, returning
    /// the raw feature value hashed down the road by the QVStore planes.
    pub fn value(&self, feature: &Feature) -> u64 {
        let control = match feature.control {
            ControlFlow::Pc => self.pcs[0],
            ControlFlow::PcPath => self.pcs[0] ^ (self.pcs[1] << 1) ^ (self.pcs[2] << 2),
            ControlFlow::PcXorBranchPc => self.pcs[0] ^ self.prev_pc,
            ControlFlow::None => 0,
        };
        let data = match feature.data {
            DataFlow::CachelineAddress => self.line,
            DataFlow::PageNumber => self.page,
            DataFlow::PageOffset => self.offset,
            DataFlow::Delta => encode_delta(self.delta),
            DataFlow::LastFourOffsets => self
                .offsets
                .iter()
                .fold(0u64, |acc, &o| (acc << 6) | o as u64),
            DataFlow::LastFourDeltas => self
                .deltas
                .iter()
                .fold(0u64, |acc, &d| (acc << 7) | encode_delta(d as i32)),
            DataFlow::OffsetXorDelta => self.offset ^ encode_delta(self.delta),
            DataFlow::None => 0,
        };
        // Concatenation ("+" in the paper): control in the high bits.
        (control << 28) ^ data
    }

    /// Evaluates a whole state vector.
    pub fn state(&self, features: &[Feature]) -> Vec<u64> {
        features.iter().map(|f| self.value(f)).collect()
    }

    /// Evaluates a whole state vector into `out` (cleared and refilled) so
    /// per-demand callers can reuse one buffer instead of allocating.
    pub fn state_into(&self, features: &[Feature], out: &mut Vec<u64>) {
        out.clear();
        out.extend(features.iter().map(|f| self.value(f)));
    }
}

impl Default for FeatureContext {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes a signed in-page delta into 7 bits (sign + magnitude).
#[inline]
fn encode_delta(delta: i32) -> u64 {
    let sign = if delta < 0 { 1u64 << 6 } else { 0 };
    sign | (delta.unsigned_abs() as u64 & 0x3f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::addr;

    fn access(pc: u64, addr: u64) -> DemandAccess {
        DemandAccess {
            pc,
            addr,
            line: addr::line_of(addr),
            is_write: false,
            cycle: 0,
            missed: true,
        }
    }

    #[test]
    fn feature_space_has_32_candidates() {
        let all = Feature::all();
        assert_eq!(all.len(), 32);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 32);
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Feature::PC_DELTA.label(), "PC+Delta");
        assert_eq!(Feature::LAST_4_DELTAS.label(), "Last4Deltas");
    }

    #[test]
    fn delta_tracks_within_page() {
        let mut ctx = FeatureContext::new();
        ctx.update(&access(0x400000, 0x10000)); // offset 0, new page
        assert_eq!(ctx.delta(), 0);
        ctx.update(&access(0x400000, 0x10000 + 23 * 64)); // offset 23
        assert_eq!(ctx.delta(), 23);
        ctx.update(&access(0x400000, 0x10000 + 10 * 64)); // offset 10
        assert_eq!(ctx.delta(), -13);
    }

    #[test]
    fn delta_resets_across_pages() {
        let mut ctx = FeatureContext::new();
        ctx.update(&access(0x400000, 0x10000 + 40 * 64));
        ctx.update(&access(0x400000, 0x20000)); // new page
        assert_eq!(ctx.delta(), 0);
        // Back to the first page: history was kept.
        ctx.update(&access(0x400000, 0x10000 + 45 * 64));
        assert_eq!(ctx.delta(), 5);
    }

    #[test]
    fn last_four_deltas_shift_in_order() {
        let mut ctx = FeatureContext::new();
        let base = 0x30000u64;
        for off in [0u64, 1, 4, 8, 20] {
            ctx.update(&access(0x400000, base + off * 64));
        }
        // Deltas observed: 1, 3, 4, 12 (most recent first: 12,4,3,1).
        assert_eq!(ctx.deltas, [12, 4, 3, 1]);
        let v = ctx.value(&Feature::LAST_4_DELTAS);
        let expected = (encode_delta(12) << 21)
            | (encode_delta(4) << 14)
            | (encode_delta(3) << 7)
            | encode_delta(1);
        assert_eq!(v, expected);
    }

    #[test]
    fn pc_delta_differs_by_pc_and_delta() {
        let mut ctx = FeatureContext::new();
        ctx.update(&access(0x400000, 0x10000));
        ctx.update(&access(0x400000, 0x10000 + 64));
        let v1 = ctx.value(&Feature::PC_DELTA);
        let mut ctx2 = FeatureContext::new();
        ctx2.update(&access(0x400004, 0x10000));
        ctx2.update(&access(0x400004, 0x10000 + 64));
        let v2 = ctx2.value(&Feature::PC_DELTA);
        assert_ne!(v1, v2, "different PCs must give different PC+Delta values");
        let mut ctx3 = FeatureContext::new();
        ctx3.update(&access(0x400000, 0x10000));
        ctx3.update(&access(0x400000, 0x10000 + 2 * 64));
        assert_ne!(v1, ctx3.value(&Feature::PC_DELTA));
    }

    #[test]
    fn none_none_feature_is_constant() {
        let f = Feature {
            control: ControlFlow::None,
            data: DataFlow::None,
        };
        let mut ctx = FeatureContext::new();
        ctx.update(&access(0x1, 0x10000));
        let v1 = ctx.value(&f);
        ctx.update(&access(0x2, 0x9_0000));
        assert_eq!(v1, ctx.value(&f));
        assert_eq!(f.label(), "Const");
    }

    #[test]
    fn encode_delta_is_injective_in_range() {
        let mut seen = std::collections::HashSet::new();
        for d in -63..=63i32 {
            assert!(seen.insert(encode_delta(d)), "collision at {d}");
        }
    }

    #[test]
    fn repeated_same_line_does_not_shift_history() {
        let mut ctx = FeatureContext::new();
        ctx.update(&access(0x400000, 0x10000));
        ctx.update(&access(0x400000, 0x10000 + 64));
        let before = ctx.deltas;
        ctx.update(&access(0x400000, 0x10000 + 64)); // same line, delta 0
        assert_eq!(ctx.deltas, before, "zero delta must not pollute history");
    }
}
