//! EQ: the evaluation queue (§4.2.3, Fig. 4).
//!
//! A FIFO of Pythia's recently taken actions. Rewards are assigned in three
//! ways:
//!
//! 1. **At insertion** — no-prefetch actions (R_NP^H/L) and out-of-page
//!    actions (R_CL) get their reward immediately.
//! 2. **During residency** — when a demand hits an entry's prefetch
//!    address, the entry earns R_AT (demand after fill) or R_AL (before
//!    fill). The "filled bit" of the paper is realized as the fill's ready
//!    timestamp, set by the prefetch-fill notification.
//! 3. **At eviction** — entries that never got a reward were inaccurate:
//!    R_IN^H/L depending on current bandwidth usage.
//!
//! The evicted entry, together with the (new) EQ head, feeds the SARSA
//! update (Algorithm 1, lines 23–29).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the cacheline-keyed index. The default
/// SipHash costs more than the whole indexed lookup it guards; line
/// numbers need no DoS resistance, and the map's iteration order is never
/// observed, so a fast mixer is deterministic-safe here.
#[derive(Debug, Default)]
pub struct LineHasher(u64);

impl Hasher for LineHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, i: u64) {
        let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = x ^ (x >> 32);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

/// One queued action awaiting its reward.
#[derive(Debug, Clone, PartialEq)]
pub struct EqEntry {
    /// State vector at the time the action was taken. The agent leaves
    /// this empty in its steady-state path: `bases` carry everything the
    /// SARSA update needs, so hauling the raw state through the queue
    /// would only add cache footprint. Producers that want the state for
    /// introspection may still populate it.
    pub state: Vec<u64>,
    /// Q-table plane bases of the state at selection time: bases depend
    /// only on the state and table geometry, so the eviction-time SARSA
    /// update can reuse them instead of re-hashing both states. Empty
    /// when the producer did not precompute them.
    pub bases: Vec<usize>,
    /// Index of the taken action in the action list.
    pub action: usize,
    /// Prefetched line for real prefetch actions; `None` for no-prefetch or
    /// suppressed (out-of-page) actions.
    pub prefetch_line: Option<u64>,
    /// Assigned reward, if any.
    pub reward: Option<i16>,
    /// Cycle at which the prefetch fill delivers data (the "filled bit"
    /// with its timestamp).
    pub fill_ready: Option<u64>,
    /// Cycle the action was taken.
    pub issued_at: u64,
}

impl EqEntry {
    /// Creates an entry with no reward assigned yet.
    pub fn new(state: Vec<u64>, action: usize, prefetch_line: Option<u64>, issued_at: u64) -> Self {
        Self {
            state,
            bases: Vec::new(),
            action,
            prefetch_line,
            reward: None,
            fill_ready: None,
            issued_at,
        }
    }

    /// Whether a reward has been assigned.
    pub fn has_reward(&self) -> bool {
        self.reward.is_some()
    }
}

/// Outcome of probing the EQ with a demand address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandMatch {
    /// The demand hit a prefetch issued earlier and the fill had completed:
    /// accurate and timely.
    AccurateTimely,
    /// The demand hit a prefetch whose fill had not completed: accurate but
    /// late.
    AccurateLate,
    /// No matching entry.
    Miss,
}

/// Sentinel for "no newer same-line entry" in the intrusive chain.
const NO_LINK: u64 = u64::MAX;

/// The evaluation queue.
///
/// Demand-hit and fill matching are O(per-line residency) instead of a
/// front-to-back scan of the whole queue: a side index maps each resident
/// prefetch line to an intrusive chain of its entries, in queue order.
/// Every match still verifies its predicate on the entry itself, so the
/// behaviour is identical to the linear scans the index replaced — just
/// without touching 256 entries per demand.
///
/// Storage is a power-of-two ring addressed by sequence number: the entry
/// with sequence `s` lives at slot `s & mask`, permanently, from insert to
/// eviction. Live sequences form one contiguous range of at most
/// `capacity ≤ slots.len()` values, so the masked mapping is collision
/// free — and unlike a deque, chain walks and evictions never pay a
/// wraparound branch or shift an index.
#[derive(Debug, Clone)]
pub struct EvaluationQueue {
    /// Ring of `capacity.next_power_of_two()` slots; non-live slots hold
    /// an inert placeholder entry (empty vectors, no allocation).
    slots: Vec<EqEntry>,
    /// `slots.len() - 1`, for sequence-to-slot masking.
    mask: u64,
    capacity: usize,
    /// Number of live entries, in sequences `head_seq..head_seq + len`.
    len: usize,
    /// Sequence number of the front (oldest) entry.
    head_seq: u64,
    /// Parallel to `slots`: sequence number of the next newer entry with
    /// the same prefetch line ([`NO_LINK`] at chain end) — an intrusive
    /// per-line list, so indexing allocates nothing per entry.
    links: Vec<u64>,
    /// Oldest and newest resident sequence number per prefetch line.
    by_line: LineMap<(u64, u64)>,
}

/// An inert placeholder for non-live ring slots: allocation-free and never
/// reachable through the line index.
fn placeholder() -> EqEntry {
    EqEntry::new(Vec::new(), 0, None, 0)
}

impl EvaluationQueue {
    /// Creates an EQ with the given capacity (256 in the basic config).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EQ capacity must be non-zero");
        let slots = capacity.next_power_of_two();
        Self {
            slots: (0..slots).map(|_| placeholder()).collect(),
            mask: (slots - 1) as u64,
            capacity,
            len: 0,
            head_seq: 0,
            links: vec![NO_LINK; slots],
            by_line: LineMap::default(),
        }
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring slot of a live sequence number.
    #[inline]
    fn slot(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// First resident entry for `line` (queue order) passing `pred`.
    #[inline]
    fn find_for_line(
        &mut self,
        line: u64,
        pred: impl Fn(&EqEntry) -> bool,
    ) -> Option<&mut EqEntry> {
        let (mut seq, _) = *self.by_line.get(&line)?;
        loop {
            let i = (seq & self.mask) as usize;
            if pred(&self.slots[i]) {
                return Some(&mut self.slots[i]);
            }
            seq = self.links[i];
            if seq == NO_LINK {
                return None;
            }
        }
    }

    /// Searches for an un-rewarded entry whose prefetch address matches the
    /// demanded `line` (Algorithm 1, lines 6–11). On a match, assigns
    /// R_AT/R_AL (passed in by the caller from its reward levels) and
    /// reports which was applied.
    pub fn reward_demand_hit(
        &mut self,
        line: u64,
        cycle: u64,
        r_at: i16,
        r_al: i16,
    ) -> DemandMatch {
        if let Some(e) = self.find_for_line(line, |e| e.reward.is_none()) {
            let filled = e.fill_ready.is_some_and(|t| t <= cycle);
            e.reward = Some(if filled { r_at } else { r_al });
            return if filled {
                DemandMatch::AccurateTimely
            } else {
                DemandMatch::AccurateLate
            };
        }
        DemandMatch::Miss
    }

    /// Like [`EvaluationQueue::reward_demand_hit`], but with the paper's
    /// footnote-3 extension: a late prefetch's reward is graded between
    /// `r_al` and `r_at` by how far through its flight the demand arrived
    /// (`t_demand` relative to `t_issue`..`t_fill`). A demand immediately
    /// after issue earns `r_al`; a demand just before the fill earns almost
    /// `r_at`.
    pub fn reward_demand_hit_graded(
        &mut self,
        line: u64,
        cycle: u64,
        r_at: i16,
        r_al: i16,
    ) -> DemandMatch {
        if let Some(e) = self.find_for_line(line, |e| e.reward.is_none()) {
            let (reward, timely) = match e.fill_ready {
                Some(fill) if fill <= cycle => (r_at, true),
                Some(fill) => {
                    let flight = fill.saturating_sub(e.issued_at).max(1);
                    let progressed = cycle.saturating_sub(e.issued_at).min(flight);
                    let frac = progressed as f64 / flight as f64;
                    let graded = r_al as f64 + (r_at - r_al) as f64 * frac;
                    (graded.round() as i16, false)
                }
                None => (r_al, false),
            };
            e.reward = Some(reward);
            return if timely {
                DemandMatch::AccurateTimely
            } else {
                DemandMatch::AccurateLate
            };
        }
        DemandMatch::Miss
    }

    /// Records a prefetch fill (Algorithm 1, line 32): sets the fill
    /// timestamp of the matching entry.
    pub fn mark_filled(&mut self, line: u64, ready_at: u64) {
        if let Some(e) = self.find_for_line(line, |e| e.fill_ready.is_none()) {
            e.fill_ready = Some(ready_at);
        }
    }

    /// Inserts an entry; if the queue is at capacity, evicts and returns the
    /// oldest entry (Algorithm 1, line 23).
    pub fn insert(&mut self, entry: EqEntry) -> Option<EqEntry> {
        let seq = self.head_seq + self.len as u64;
        if let Some(line) = entry.prefetch_line {
            match self.by_line.entry(line) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    // Chain behind the current newest same-line entry.
                    let (_, tail) = *o.get();
                    self.links[(tail & self.mask) as usize] = seq;
                    o.get_mut().1 = seq;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((seq, seq));
                }
            }
        }
        let evicted = if self.len >= self.capacity {
            let i = self.slot(self.head_seq);
            let evicted = std::mem::replace(&mut self.slots[i], placeholder());
            let link = self.links[i];
            self.head_seq += 1;
            self.len -= 1;
            if let Some(line) = evicted.prefetch_line {
                // The evicted entry is the oldest resident, so it heads its
                // line's chain.
                if link == NO_LINK {
                    self.by_line.remove(&line);
                } else {
                    self.by_line.get_mut(&line).expect("indexed entry").0 = link;
                }
            }
            Some(evicted)
        } else {
            None
        };
        let i = self.slot(seq);
        self.slots[i] = entry;
        self.links[i] = NO_LINK;
        self.len += 1;
        evicted
    }

    /// The current head (oldest entry) — the (S₂, A₂) of the SARSA update.
    pub fn head(&self) -> Option<&EqEntry> {
        (self.len > 0).then(|| &self.slots[self.slot(self.head_seq)])
    }

    /// Whether the next insert will evict.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// The two oldest entries: when the queue is full these are exactly
    /// the (S₁, A₁) and (S₂, A₂) operands of the *next* insert's SARSA
    /// update, so callers can warm their Q-cells a step ahead.
    pub fn front_two(&self) -> (Option<&EqEntry>, Option<&EqEntry>) {
        (
            (self.len > 0).then(|| &self.slots[self.slot(self.head_seq)]),
            (self.len > 1).then(|| &self.slots[self.slot(self.head_seq + 1)]),
        )
    }

    /// Clears the queue (Algorithm 1, line 3).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = placeholder();
        }
        self.links.fill(NO_LINK);
        self.by_line.clear();
        self.head_seq = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: Option<u64>, t: u64) -> EqEntry {
        EqEntry::new(vec![1, 2], 0, line, t)
    }

    #[test]
    fn fifo_eviction_order() {
        let mut eq = EvaluationQueue::new(2);
        assert!(eq.insert(entry(Some(10), 0)).is_none());
        assert!(eq.insert(entry(Some(11), 1)).is_none());
        let ev = eq.insert(entry(Some(12), 2)).expect("eviction at capacity");
        assert_eq!(ev.prefetch_line, Some(10));
        assert_eq!(eq.head().unwrap().prefetch_line, Some(11));
    }

    #[test]
    fn demand_after_fill_is_timely() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        eq.mark_filled(100, 50);
        assert_eq!(
            eq.reward_demand_hit(100, 80, 20, 12),
            DemandMatch::AccurateTimely
        );
        assert_eq!(eq.head().unwrap().reward, Some(20));
    }

    #[test]
    fn demand_before_fill_is_late() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        eq.mark_filled(100, 500);
        assert_eq!(
            eq.reward_demand_hit(100, 80, 20, 12),
            DemandMatch::AccurateLate
        );
        assert_eq!(eq.head().unwrap().reward, Some(12));
    }

    #[test]
    fn unfilled_entry_is_late() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        assert_eq!(
            eq.reward_demand_hit(100, 80, 20, 12),
            DemandMatch::AccurateLate
        );
    }

    #[test]
    fn rewarded_entry_not_rewarded_twice() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        eq.mark_filled(100, 10);
        assert_eq!(
            eq.reward_demand_hit(100, 20, 20, 12),
            DemandMatch::AccurateTimely
        );
        // Second demand to the same line: entry already rewarded.
        assert_eq!(eq.reward_demand_hit(100, 30, 20, 12), DemandMatch::Miss);
    }

    #[test]
    fn miss_on_unrelated_line() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        assert_eq!(eq.reward_demand_hit(999, 10, 20, 12), DemandMatch::Miss);
    }

    #[test]
    fn no_prefetch_entries_never_match_demands() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(None, 0));
        assert_eq!(eq.reward_demand_hit(0, 10, 20, 12), DemandMatch::Miss);
    }

    #[test]
    #[should_panic(expected = "EQ capacity")]
    fn zero_capacity_rejected() {
        let _ = EvaluationQueue::new(0);
    }

    #[test]
    fn graded_reward_interpolates_lateness() {
        // Prefetch issued at 0, fills at 100.
        let mk = || {
            let mut eq = EvaluationQueue::new(4);
            eq.insert(EqEntry::new(vec![1], 0, Some(7), 0));
            eq.mark_filled(7, 100);
            eq
        };
        // Demand right after issue: fully late -> R_AL.
        let mut eq = mk();
        assert_eq!(
            eq.reward_demand_hit_graded(7, 1, 20, 12),
            DemandMatch::AccurateLate
        );
        let early = eq.head().unwrap().reward.unwrap();
        assert!(
            early <= 13,
            "barely-started flight earns ~R_AL, got {early}"
        );
        // Demand just before the fill: almost timely -> near R_AT.
        let mut eq = mk();
        eq.reward_demand_hit_graded(7, 99, 20, 12);
        let near = eq.head().unwrap().reward.unwrap();
        assert!(near >= 19, "nearly-filled flight earns ~R_AT, got {near}");
        // Demand after fill: full R_AT and classified timely.
        let mut eq = mk();
        assert_eq!(
            eq.reward_demand_hit_graded(7, 150, 20, 12),
            DemandMatch::AccurateTimely
        );
        assert_eq!(eq.head().unwrap().reward, Some(20));
        // Unfilled entry: plain R_AL.
        let mut eq = EvaluationQueue::new(4);
        eq.insert(EqEntry::new(vec![1], 0, Some(9), 0));
        eq.reward_demand_hit_graded(9, 50, 20, 12);
        assert_eq!(eq.head().unwrap().reward, Some(12));
    }

    #[test]
    fn graded_reward_monotone_in_demand_time() {
        let mut last = i16::MIN;
        for demand in [5u64, 25, 50, 75, 95] {
            let mut eq = EvaluationQueue::new(4);
            eq.insert(EqEntry::new(vec![1], 0, Some(7), 0));
            eq.mark_filled(7, 100);
            eq.reward_demand_hit_graded(7, demand, 20, 12);
            let r = eq.head().unwrap().reward.unwrap();
            assert!(r >= last, "graded reward must be monotone: {r} < {last}");
            last = r;
        }
    }

    #[test]
    fn clear_empties_queue() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(1), 0));
        eq.clear();
        assert!(eq.is_empty());
        assert!(eq.head().is_none());
    }
}
