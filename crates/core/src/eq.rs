//! EQ: the evaluation queue (§4.2.3, Fig. 4).
//!
//! A FIFO of Pythia's recently taken actions. Rewards are assigned in three
//! ways:
//!
//! 1. **At insertion** — no-prefetch actions (R_NP^H/L) and out-of-page
//!    actions (R_CL) get their reward immediately.
//! 2. **During residency** — when a demand hits an entry's prefetch
//!    address, the entry earns R_AT (demand after fill) or R_AL (before
//!    fill). The "filled bit" of the paper is realized as the fill's ready
//!    timestamp, set by the prefetch-fill notification.
//! 3. **At eviction** — entries that never got a reward were inaccurate:
//!    R_IN^H/L depending on current bandwidth usage.
//!
//! The evicted entry, together with the (new) EQ head, feeds the SARSA
//! update (Algorithm 1, lines 23–29).

use std::collections::VecDeque;

/// One queued action awaiting its reward.
#[derive(Debug, Clone, PartialEq)]
pub struct EqEntry {
    /// State vector at the time the action was taken.
    pub state: Vec<u64>,
    /// Index of the taken action in the action list.
    pub action: usize,
    /// Prefetched line for real prefetch actions; `None` for no-prefetch or
    /// suppressed (out-of-page) actions.
    pub prefetch_line: Option<u64>,
    /// Assigned reward, if any.
    pub reward: Option<i16>,
    /// Cycle at which the prefetch fill delivers data (the "filled bit"
    /// with its timestamp).
    pub fill_ready: Option<u64>,
    /// Cycle the action was taken.
    pub issued_at: u64,
}

impl EqEntry {
    /// Creates an entry with no reward assigned yet.
    pub fn new(state: Vec<u64>, action: usize, prefetch_line: Option<u64>, issued_at: u64) -> Self {
        Self {
            state,
            action,
            prefetch_line,
            reward: None,
            fill_ready: None,
            issued_at,
        }
    }

    /// Whether a reward has been assigned.
    pub fn has_reward(&self) -> bool {
        self.reward.is_some()
    }
}

/// Outcome of probing the EQ with a demand address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandMatch {
    /// The demand hit a prefetch issued earlier and the fill had completed:
    /// accurate and timely.
    AccurateTimely,
    /// The demand hit a prefetch whose fill had not completed: accurate but
    /// late.
    AccurateLate,
    /// No matching entry.
    Miss,
}

/// The evaluation queue.
#[derive(Debug, Clone)]
pub struct EvaluationQueue {
    entries: VecDeque<EqEntry>,
    capacity: usize,
}

impl EvaluationQueue {
    /// Creates an EQ with the given capacity (256 in the basic config).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EQ capacity must be non-zero");
        Self {
            entries: VecDeque::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Searches for an un-rewarded entry whose prefetch address matches the
    /// demanded `line` (Algorithm 1, lines 6–11). On a match, assigns
    /// R_AT/R_AL (passed in by the caller from its reward levels) and
    /// reports which was applied.
    pub fn reward_demand_hit(
        &mut self,
        line: u64,
        cycle: u64,
        r_at: i16,
        r_al: i16,
    ) -> DemandMatch {
        for e in self.entries.iter_mut() {
            if e.reward.is_none() && e.prefetch_line == Some(line) {
                let filled = e.fill_ready.is_some_and(|t| t <= cycle);
                e.reward = Some(if filled { r_at } else { r_al });
                return if filled {
                    DemandMatch::AccurateTimely
                } else {
                    DemandMatch::AccurateLate
                };
            }
        }
        DemandMatch::Miss
    }

    /// Like [`EvaluationQueue::reward_demand_hit`], but with the paper's
    /// footnote-3 extension: a late prefetch's reward is graded between
    /// `r_al` and `r_at` by how far through its flight the demand arrived
    /// (`t_demand` relative to `t_issue`..`t_fill`). A demand immediately
    /// after issue earns `r_al`; a demand just before the fill earns almost
    /// `r_at`.
    pub fn reward_demand_hit_graded(
        &mut self,
        line: u64,
        cycle: u64,
        r_at: i16,
        r_al: i16,
    ) -> DemandMatch {
        for e in self.entries.iter_mut() {
            if e.reward.is_none() && e.prefetch_line == Some(line) {
                let (reward, timely) = match e.fill_ready {
                    Some(fill) if fill <= cycle => (r_at, true),
                    Some(fill) => {
                        let flight = fill.saturating_sub(e.issued_at).max(1);
                        let progressed = cycle.saturating_sub(e.issued_at).min(flight);
                        let frac = progressed as f64 / flight as f64;
                        let graded = r_al as f64 + (r_at - r_al) as f64 * frac;
                        (graded.round() as i16, false)
                    }
                    None => (r_al, false),
                };
                e.reward = Some(reward);
                return if timely {
                    DemandMatch::AccurateTimely
                } else {
                    DemandMatch::AccurateLate
                };
            }
        }
        DemandMatch::Miss
    }

    /// Records a prefetch fill (Algorithm 1, line 32): sets the fill
    /// timestamp of the matching entry.
    pub fn mark_filled(&mut self, line: u64, ready_at: u64) {
        for e in self.entries.iter_mut() {
            if e.prefetch_line == Some(line) && e.fill_ready.is_none() {
                e.fill_ready = Some(ready_at);
                return;
            }
        }
    }

    /// Inserts an entry; if the queue is at capacity, evicts and returns the
    /// oldest entry (Algorithm 1, line 23).
    pub fn insert(&mut self, entry: EqEntry) -> Option<EqEntry> {
        let evicted = if self.entries.len() >= self.capacity {
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(entry);
        evicted
    }

    /// The current head (oldest entry) — the (S₂, A₂) of the SARSA update.
    pub fn head(&self) -> Option<&EqEntry> {
        self.entries.front()
    }

    /// Clears the queue (Algorithm 1, line 3).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: Option<u64>, t: u64) -> EqEntry {
        EqEntry::new(vec![1, 2], 0, line, t)
    }

    #[test]
    fn fifo_eviction_order() {
        let mut eq = EvaluationQueue::new(2);
        assert!(eq.insert(entry(Some(10), 0)).is_none());
        assert!(eq.insert(entry(Some(11), 1)).is_none());
        let ev = eq.insert(entry(Some(12), 2)).expect("eviction at capacity");
        assert_eq!(ev.prefetch_line, Some(10));
        assert_eq!(eq.head().unwrap().prefetch_line, Some(11));
    }

    #[test]
    fn demand_after_fill_is_timely() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        eq.mark_filled(100, 50);
        assert_eq!(
            eq.reward_demand_hit(100, 80, 20, 12),
            DemandMatch::AccurateTimely
        );
        assert_eq!(eq.head().unwrap().reward, Some(20));
    }

    #[test]
    fn demand_before_fill_is_late() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        eq.mark_filled(100, 500);
        assert_eq!(
            eq.reward_demand_hit(100, 80, 20, 12),
            DemandMatch::AccurateLate
        );
        assert_eq!(eq.head().unwrap().reward, Some(12));
    }

    #[test]
    fn unfilled_entry_is_late() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        assert_eq!(
            eq.reward_demand_hit(100, 80, 20, 12),
            DemandMatch::AccurateLate
        );
    }

    #[test]
    fn rewarded_entry_not_rewarded_twice() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        eq.mark_filled(100, 10);
        assert_eq!(
            eq.reward_demand_hit(100, 20, 20, 12),
            DemandMatch::AccurateTimely
        );
        // Second demand to the same line: entry already rewarded.
        assert_eq!(eq.reward_demand_hit(100, 30, 20, 12), DemandMatch::Miss);
    }

    #[test]
    fn miss_on_unrelated_line() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(100), 0));
        assert_eq!(eq.reward_demand_hit(999, 10, 20, 12), DemandMatch::Miss);
    }

    #[test]
    fn no_prefetch_entries_never_match_demands() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(None, 0));
        assert_eq!(eq.reward_demand_hit(0, 10, 20, 12), DemandMatch::Miss);
    }

    #[test]
    #[should_panic(expected = "EQ capacity")]
    fn zero_capacity_rejected() {
        let _ = EvaluationQueue::new(0);
    }

    #[test]
    fn graded_reward_interpolates_lateness() {
        // Prefetch issued at 0, fills at 100.
        let mk = || {
            let mut eq = EvaluationQueue::new(4);
            eq.insert(EqEntry::new(vec![1], 0, Some(7), 0));
            eq.mark_filled(7, 100);
            eq
        };
        // Demand right after issue: fully late -> R_AL.
        let mut eq = mk();
        assert_eq!(
            eq.reward_demand_hit_graded(7, 1, 20, 12),
            DemandMatch::AccurateLate
        );
        let early = eq.head().unwrap().reward.unwrap();
        assert!(
            early <= 13,
            "barely-started flight earns ~R_AL, got {early}"
        );
        // Demand just before the fill: almost timely -> near R_AT.
        let mut eq = mk();
        eq.reward_demand_hit_graded(7, 99, 20, 12);
        let near = eq.head().unwrap().reward.unwrap();
        assert!(near >= 19, "nearly-filled flight earns ~R_AT, got {near}");
        // Demand after fill: full R_AT and classified timely.
        let mut eq = mk();
        assert_eq!(
            eq.reward_demand_hit_graded(7, 150, 20, 12),
            DemandMatch::AccurateTimely
        );
        assert_eq!(eq.head().unwrap().reward, Some(20));
        // Unfilled entry: plain R_AL.
        let mut eq = EvaluationQueue::new(4);
        eq.insert(EqEntry::new(vec![1], 0, Some(9), 0));
        eq.reward_demand_hit_graded(9, 50, 20, 12);
        assert_eq!(eq.head().unwrap().reward, Some(12));
    }

    #[test]
    fn graded_reward_monotone_in_demand_time() {
        let mut last = i16::MIN;
        for demand in [5u64, 25, 50, 75, 95] {
            let mut eq = EvaluationQueue::new(4);
            eq.insert(EqEntry::new(vec![1], 0, Some(7), 0));
            eq.mark_filled(7, 100);
            eq.reward_demand_hit_graded(7, demand, 20, 12);
            let r = eq.head().unwrap().reward.unwrap();
            assert!(r >= last, "graded reward must be monotone: {r} < {last}");
            last = r;
        }
    }

    #[test]
    fn clear_empties_queue() {
        let mut eq = EvaluationQueue::new(4);
        eq.insert(entry(Some(1), 0));
        eq.clear();
        assert!(eq.is_empty());
        assert!(eq.head().is_none());
    }
}
