//! Automated design-space exploration (§4.3): feature selection, action
//! pruning, and reward/hyperparameter grid search.
//!
//! The paper ran these searches over 150 traces on a ten-machine cluster
//! (44 hours); this module implements the same *procedures* generically
//! over an objective function `eval: candidate → performance score`, so the
//! experiment harness can plug in scaled-down simulations (Table 2 / Figs.
//! 19–20 regeneration) and tests can plug in synthetic objectives.

use crate::features::Feature;

/// Result of a search: the winning candidate and its score.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult<T> {
    /// The best candidate found.
    pub winner: T,
    /// Its objective score (higher is better).
    pub score: f64,
    /// Every evaluated `(candidate, score)` pair, in evaluation order —
    /// Fig. 19 plots exactly this.
    pub evaluated: Vec<(T, f64)>,
}

/// §4.3.1 feature selection: evaluates every one-feature and two-feature
/// combination from `candidates` and returns the winner.
///
/// (The paper also explores three-feature combinations via linear
/// regression pre-filtering; pass a pre-filtered candidate list to keep the
/// cubic term tractable, or use [`select_features_k`].)
pub fn select_features(
    candidates: &[Feature],
    mut eval: impl FnMut(&[Feature]) -> f64,
) -> SearchResult<Vec<Feature>> {
    let mut evaluated = Vec::new();
    for (i, &f) in candidates.iter().enumerate() {
        let cand = vec![f];
        let score = eval(&cand);
        evaluated.push((cand, score));
        for &g in candidates.iter().skip(i + 1) {
            let cand = vec![f, g];
            let score = eval(&cand);
            evaluated.push((cand, score));
        }
    }
    pick_best(evaluated)
}

/// Greedy forward selection up to `k` features (the scalable variant for
/// three-feature state vectors).
pub fn select_features_k(
    candidates: &[Feature],
    k: usize,
    mut eval: impl FnMut(&[Feature]) -> f64,
) -> SearchResult<Vec<Feature>> {
    let mut current: Vec<Feature> = Vec::new();
    let mut evaluated = Vec::new();
    let mut best_score = f64::NEG_INFINITY;
    for _ in 0..k {
        let mut round_best: Option<(Feature, f64)> = None;
        for &f in candidates {
            if current.contains(&f) {
                continue;
            }
            let mut cand = current.clone();
            cand.push(f);
            let score = eval(&cand);
            evaluated.push((cand, score));
            if round_best.is_none_or(|(_, s)| score > s) {
                round_best = Some((f, score));
            }
        }
        match round_best {
            Some((f, s)) if s > best_score => {
                current.push(f);
                best_score = s;
            }
            _ => break, // no improvement: stop growing the vector
        }
    }
    SearchResult {
        winner: current,
        score: best_score,
        evaluated,
    }
}

/// §4.3.2 action pruning: starting from `full`, repeatedly drops the action
/// whose removal costs the least performance, while the loss against the
/// full list stays within `tolerance` (relative). Returns the pruned list.
pub fn prune_actions(
    full: &[i32],
    tolerance: f64,
    mut eval: impl FnMut(&[i32]) -> f64,
) -> SearchResult<Vec<i32>> {
    let base = eval(full);
    let mut current: Vec<i32> = full.to_vec();
    let mut evaluated = vec![(current.clone(), base)];
    loop {
        if current.len() <= 1 {
            break;
        }
        let mut best_drop: Option<(usize, f64)> = None;
        for i in 0..current.len() {
            if current[i] == 0 {
                continue; // never prune the no-prefetch action
            }
            let mut cand = current.clone();
            cand.remove(i);
            let score = eval(&cand);
            if best_drop.is_none_or(|(_, s)| score > s) {
                best_drop = Some((i, score));
            }
        }
        match best_drop {
            Some((i, score)) if score >= base * (1.0 - tolerance) => {
                current.remove(i);
                evaluated.push((current.clone(), score));
            }
            _ => break,
        }
    }
    let score = evaluated.last().map(|(_, s)| *s).unwrap_or(base);
    SearchResult {
        winner: current,
        score,
        evaluated,
    }
}

/// One point of the §4.3.3 hyperparameter grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperPoint {
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration rate ε.
    pub epsilon: f32,
}

/// The exponential grid of §4.3.3: each hyperparameter takes values
/// `1e0, 1e-1, ..., 1e-(levels-1)`, yielding `levels³` points.
pub fn exponential_grid(levels: u32) -> Vec<HyperPoint> {
    let values: Vec<f32> = (0..levels).map(|i| 10f32.powi(-(i as i32))).collect();
    let mut out = Vec::with_capacity(values.len().pow(3));
    for &alpha in &values {
        for &gamma in &values {
            for &epsilon in &values {
                // γ must stay below 1 for Q-init; clamp the 1e0 level.
                out.push(HyperPoint {
                    alpha,
                    gamma: gamma.min(0.9),
                    epsilon,
                });
            }
        }
    }
    out
}

/// The learning rate the Q8.7 fixed-point SARSA update actually applies:
/// the store quantizes `α / planes` to 1/2¹⁶ steps, so the deep end of
/// [`exponential_grid`] (α ≤ ~1e-5 with 3 planes) rounds to an effective
/// rate of zero — the agent stops learning rather than learning slowly.
/// DSE reports use this to flag grid points that collapsed onto each
/// other.
pub fn effective_alpha(alpha: f32, planes: usize) -> f32 {
    let step = (1u64 << 16) as f64;
    let quantized = (alpha as f64 / planes as f64 * step).round() / step;
    (quantized * planes as f64) as f32
}

/// §4.3.3 two-phase tuning: evaluate every grid point with the (cheap)
/// `screen` objective, keep the `top_k`, then re-evaluate those with the
/// (expensive) `confirm` objective and return the winner.
pub fn grid_search(
    grid: &[HyperPoint],
    top_k: usize,
    mut screen: impl FnMut(&HyperPoint) -> f64,
    mut confirm: impl FnMut(&HyperPoint) -> f64,
) -> SearchResult<HyperPoint> {
    let mut screened: Vec<(HyperPoint, f64)> = grid.iter().map(|p| (*p, screen(p))).collect();
    screened.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    screened.truncate(top_k.max(1));
    let evaluated: Vec<(HyperPoint, f64)> =
        screened.iter().map(|(p, _)| (*p, confirm(p))).collect();
    pick_best(evaluated)
}

fn pick_best<T: Clone>(evaluated: Vec<(T, f64)>) -> SearchResult<T> {
    let (winner, score) = evaluated
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .cloned()
        .expect("at least one candidate evaluated");
    SearchResult {
        winner,
        score,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{ControlFlow, DataFlow};

    #[test]
    fn select_features_finds_known_best_pair() {
        let candidates = Feature::all();
        // Synthetic objective: the paper's winning pair scores highest.
        let result = select_features(&candidates[..8], |fs| {
            let mut s = fs.len() as f64 * 0.1;
            if fs.contains(&Feature {
                control: ControlFlow::Pc,
                data: DataFlow::Delta,
            }) {
                s += 1.0;
            }
            if fs.contains(&Feature {
                control: ControlFlow::Pc,
                data: DataFlow::PageNumber,
            }) {
                s += 0.5;
            }
            s
        });
        assert_eq!(result.winner.len(), 2);
        assert!(result.winner.contains(&Feature {
            control: ControlFlow::Pc,
            data: DataFlow::Delta
        }));
        // 8 singles + 28 pairs evaluated.
        assert_eq!(result.evaluated.len(), 8 + 28);
    }

    #[test]
    fn greedy_selection_stops_when_no_gain() {
        let candidates = &Feature::all()[..6];
        let result = select_features_k(candidates, 3, |fs| {
            // Only the first feature helps; extras hurt.
            if fs.contains(&candidates[2]) {
                2.0 - 0.5 * (fs.len() as f64 - 1.0)
            } else {
                0.0
            }
        });
        assert_eq!(result.winner, vec![candidates[2]]);
    }

    #[test]
    fn prune_actions_drops_useless_offsets() {
        let full: Vec<i32> = (-4..=4).collect();
        // Objective: only offsets {0, 1, 2} matter; others are free to drop.
        let result = prune_actions(&full, 0.01, |acts| {
            let mut s = 0.0;
            for &a in acts {
                if a == 1 || a == 2 {
                    s += 1.0;
                }
            }
            s
        });
        assert!(result.winner.contains(&1));
        assert!(result.winner.contains(&2));
        assert!(result.winner.contains(&0), "no-prefetch is never pruned");
        assert!(result.winner.len() < full.len());
    }

    #[test]
    fn prune_respects_tolerance() {
        let full = vec![0, 1, 2, 3];
        // Every action contributes equally; any drop loses 25%.
        let result = prune_actions(&full, 0.05, |acts| acts.len() as f64);
        assert_eq!(result.winner, full, "5% tolerance cannot absorb a 25% loss");
    }

    #[test]
    fn exponential_grid_has_levels_cubed_points() {
        let grid = exponential_grid(10);
        assert_eq!(grid.len(), 1000);
        assert!(grid.iter().all(|p| p.gamma < 1.0));
    }

    #[test]
    fn effective_alpha_mirrors_the_fixed_point_quantization() {
        // Table 2's α = 0.0065 survives quantization (within one step of
        // the 1/2¹⁶ grid, scaled back by the plane count)...
        let a = effective_alpha(0.0065, 3);
        assert!((a - 0.0065).abs() <= 3.0 / 65536.0, "a={a}");
        assert!(a > 0.0);
        // ...but the deep end of the exponential grid rounds to exactly
        // zero: those points no longer learn at all.
        assert_eq!(effective_alpha(1e-6, 3), 0.0);
        assert_eq!(effective_alpha(1e-9, 3), 0.0);
    }

    #[test]
    fn grid_search_two_phase() {
        let grid = exponential_grid(5);
        let target = HyperPoint {
            alpha: 1e-2,
            gamma: 1e-1,
            epsilon: 1e-3,
        };
        let dist = |p: &HyperPoint| {
            -(((p.alpha.log10() - target.alpha.log10()).powi(2)
                + (p.gamma.log10() - target.gamma.log10()).powi(2)
                + (p.epsilon.log10() - target.epsilon.log10()).powi(2)) as f64)
        };
        let result = grid_search(&grid, 25, dist, dist);
        assert!((result.winner.alpha - target.alpha).abs() < 1e-6);
        assert!((result.winner.epsilon - target.epsilon).abs() < 1e-6);
        assert_eq!(result.evaluated.len(), 25);
    }
}
