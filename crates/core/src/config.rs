//! Pythia's configuration registers (§3.1, §4.3, Table 2).
//!
//! Everything the paper describes as customizable-in-silicon is a plain
//! field here: the feature vector, the action (offset) list, the seven
//! reward level values, and the three hyperparameters. The presets
//! correspond to the paper's named configurations:
//!
//! * [`PythiaConfig::basic`] — Table 2, derived from the automated DSE.
//! * [`PythiaConfig::strict`] — the Ligra-tuned rewards of §6.6.1.
//! * [`PythiaConfig::bandwidth_oblivious`] — the ablation of §6.3.3/Fig. 11.

use serde::{Deserialize, Serialize};

use crate::features::Feature;

/// How the QVStore combines per-vault (per-feature) Q-values into the
/// state-action Q-value. The paper uses `Max` (Eqn. 3); `Mean` is the
/// ablation alternative evaluated in the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VaultCombine {
    /// `Q(S,A) = max_i Q(phi_i, A)` — the paper's design.
    Max,
    /// `Q(S,A) = (1/k) * sum_i Q(phi_i, A)` — averaging ablation.
    Mean,
}

/// The seven reward level values (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewardLevels {
    /// Accurate and timely: prefetch demanded after its fill.
    pub accurate_timely: i16,
    /// Accurate but late: prefetch demanded before its fill.
    pub accurate_late: i16,
    /// Loss of coverage: action pointed outside the triggering page.
    pub coverage_loss: i16,
    /// Inaccurate under high bandwidth usage.
    pub inaccurate_high_bw: i16,
    /// Inaccurate under low bandwidth usage.
    pub inaccurate_low_bw: i16,
    /// No-prefetch action under high bandwidth usage.
    pub no_prefetch_high_bw: i16,
    /// No-prefetch action under low bandwidth usage.
    pub no_prefetch_low_bw: i16,
}

impl RewardLevels {
    /// Table 2 values: R_AT=20, R_AL=12, R_CL=-12, R_IN^H=-14, R_IN^L=-8,
    /// R_NP^H=-2, R_NP^L=-4.
    pub fn basic() -> Self {
        Self {
            accurate_timely: 20,
            accurate_late: 12,
            coverage_loss: -12,
            inaccurate_high_bw: -14,
            inaccurate_low_bw: -8,
            no_prefetch_high_bw: -2,
            no_prefetch_low_bw: -4,
        }
    }

    /// §6.6.1 strict values for bandwidth-sensitive (Ligra-like) workloads:
    /// R_IN^H=-22, R_IN^L=-20, R_NP^H=R_NP^L=0.
    pub fn strict() -> Self {
        Self {
            inaccurate_high_bw: -22,
            inaccurate_low_bw: -20,
            no_prefetch_high_bw: 0,
            no_prefetch_low_bw: 0,
            ..Self::basic()
        }
    }

    /// §6.3.3 bandwidth-oblivious ablation: R_IN^H=R_IN^L=-8,
    /// R_NP^H=R_NP^L=-4 (the distinction removed).
    pub fn bandwidth_oblivious() -> Self {
        Self {
            inaccurate_high_bw: -8,
            inaccurate_low_bw: -8,
            no_prefetch_high_bw: -4,
            no_prefetch_low_bw: -4,
            ..Self::basic()
        }
    }
}

/// Full Pythia configuration (the paper's configuration registers plus the
/// structural parameters of Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PythiaConfig {
    /// The state vector: which program features Pythia observes.
    pub features: Vec<Feature>,
    /// Candidate prefetch offsets (the action list). Offset 0 = no prefetch.
    pub actions: Vec<i32>,
    /// Reward level values.
    pub rewards: RewardLevels,
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration rate ε.
    pub epsilon: f32,
    /// Evaluation-queue capacity.
    pub eq_size: usize,
    /// Tile-coding planes per vault.
    pub planes: usize,
    /// log2 of the per-plane feature-index range (128 entries → 7).
    pub plane_index_bits: u32,
    /// How vault Q-values combine into the state-action Q-value.
    pub vault_combine: VaultCombine,
    /// Optional explicit Q-value initialization, overriding the
    /// `R_max/(1-γ)` optimistic default (used by the init ablation).
    pub q_init_override: Option<f32>,
    /// Non-binary timeliness (the paper's footnote 3): grade the reward of
    /// accurate-but-late prefetches between R_AL and R_AT by how close the
    /// demand came to the fill, using the issue/fill/demand timestamps the
    /// EQ already tracks. Off by default (the paper's binary definition).
    pub graded_timeliness: bool,
    /// Seed for the ε-greedy exploration RNG.
    pub seed: u64,
}

impl PythiaConfig {
    /// The Table 2 pruned action list.
    pub fn basic_actions() -> Vec<i32> {
        vec![-6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32]
    }

    /// The full unpruned action list `[-63, 63]` (used by the action-pruning
    /// ablation).
    pub fn full_actions() -> Vec<i32> {
        (-63..=63).collect()
    }

    /// The basic configuration of Table 2.
    pub fn basic() -> Self {
        Self {
            features: vec![Feature::PC_DELTA, Feature::LAST_4_DELTAS],
            actions: Self::basic_actions(),
            rewards: RewardLevels::basic(),
            alpha: 0.0065,
            gamma: 0.556,
            epsilon: 0.002,
            eq_size: 256,
            planes: 3,
            plane_index_bits: 7,
            vault_combine: VaultCombine::Max,
            q_init_override: None,
            graded_timeliness: false,
            seed: 0x5079_7468,
        }
    }

    /// The configuration used by this reproduction's experiments: identical
    /// to [`PythiaConfig::basic`] except for the learning rate, which is
    /// re-derived (α = 0.05) with the paper's own grid-search procedure
    /// (§4.3.3) for the scaled-down training horizons of the synthetic
    /// environment. The paper's α = 0.0065 was tuned for 600 M-instruction
    /// runs; at our 1 M-instruction budgets it leaves the agent far from
    /// convergence (documented in DESIGN.md/EXPERIMENTS.md).
    pub fn tuned() -> Self {
        Self {
            alpha: 0.05,
            ..Self::basic()
        }
    }

    /// The strict configuration of §6.6.1 (reward customization for
    /// bandwidth-sensitive graph workloads).
    pub fn strict() -> Self {
        Self {
            rewards: RewardLevels::strict(),
            ..Self::tuned()
        }
    }

    /// The bandwidth-oblivious ablation of §6.3.3 (Fig. 11).
    pub fn bandwidth_oblivious() -> Self {
        Self {
            rewards: RewardLevels::bandwidth_oblivious(),
            ..Self::tuned()
        }
    }

    /// Replaces the feature vector (the §6.6.2 customization knob).
    pub fn with_features(mut self, features: Vec<Feature>) -> Self {
        self.features = features;
        self
    }

    /// Replaces the action list.
    pub fn with_actions(mut self, actions: Vec<i32>) -> Self {
        self.actions = actions;
        self
    }

    /// Replaces the exploration seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Optimistic Q-value initialization (Algorithm 1, line 2).
    ///
    /// The paper writes the init as `1/(1-γ)` — the highest possible
    /// cumulative reward for rewards normalized to 1. With the Table 2
    /// reward levels reaching R_AT = 20, the equivalent "highest possible
    /// Q-value" is `R_max/(1-γ)`; initializing below it would make
    /// under-explored actions look permanently unattractive next to any
    /// positive-reward action found early (greedy lock-in).
    pub fn q_init(&self) -> f32 {
        if let Some(q) = self.q_init_override {
            return q;
        }
        let r_max = self.rewards.accurate_timely.max(1) as f32;
        r_max / (1.0 - self.gamma)
    }

    /// [`q_init`](PythiaConfig::q_init) as the Q8.7 fixed-point store
    /// actually represents it: the per-plane share is quantized to the
    /// storage format, then summed back. This is the exact value a fresh
    /// [`QvStore`](crate::QvStore) reports for every state-action pair.
    pub fn q_init_quantized(&self) -> f32 {
        crate::qvstore::quantize(self.q_init() / self.planes as f32) * self.planes as f32
    }

    /// Index of the no-prefetch action in the action list, if present.
    pub fn no_prefetch_action(&self) -> Option<usize> {
        self.actions.iter().position(|&a| a == 0)
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: empty feature
    /// or action lists, out-of-range hyperparameters, or zero-sized
    /// structures.
    pub fn validate(&self) -> Result<(), String> {
        if self.features.is_empty() {
            return Err("state vector needs at least one feature".into());
        }
        if self.actions.is_empty() {
            return Err("action list must be non-empty".into());
        }
        if self.actions.iter().any(|a| a.abs() > 63) {
            return Err("offsets must lie in [-63, 63] for 4 KB pages".into());
        }
        if !(0.0..1.0).contains(&self.gamma) {
            return Err("gamma must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.alpha) || !(0.0..=1.0).contains(&self.epsilon) {
            return Err("alpha and epsilon must be in [0, 1]".into());
        }
        if self.eq_size == 0 || self.planes == 0 || self.plane_index_bits == 0 {
            return Err("EQ, planes and plane index bits must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for PythiaConfig {
    fn default() -> Self {
        Self::basic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_matches_table2() {
        let c = PythiaConfig::basic();
        assert_eq!(
            c.actions,
            vec![-6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32]
        );
        assert_eq!(c.rewards.accurate_timely, 20);
        assert_eq!(c.rewards.accurate_late, 12);
        assert_eq!(c.rewards.coverage_loss, -12);
        assert_eq!(c.rewards.inaccurate_high_bw, -14);
        assert_eq!(c.rewards.inaccurate_low_bw, -8);
        assert_eq!(c.rewards.no_prefetch_high_bw, -2);
        assert_eq!(c.rewards.no_prefetch_low_bw, -4);
        assert!((c.alpha - 0.0065).abs() < 1e-9);
        assert!((c.gamma - 0.556).abs() < 1e-9);
        assert!((c.epsilon - 0.002).abs() < 1e-9);
        assert_eq!(c.eq_size, 256);
        assert_eq!(c.planes, 3);
        assert_eq!(c.features.len(), 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn q_init_is_optimistic() {
        // Highest possible cumulative reward: R_AT / (1 - gamma).
        let c = PythiaConfig::basic();
        assert!((c.q_init() - 20.0 / (1.0 - 0.556)).abs() < 1e-4);
        // No reachable Q exceeds the init (optimism property).
        assert!(c.q_init() >= c.rewards.accurate_timely as f32 / (1.0 - c.gamma) - 1e-4);
        // The override knob wins when set.
        let mut c = PythiaConfig::basic();
        c.q_init_override = Some(2.25);
        assert!((c.q_init() - 2.25).abs() < 1e-6);
    }

    #[test]
    fn tuned_differs_from_basic_only_in_alpha() {
        let t = PythiaConfig::tuned();
        let b = PythiaConfig::basic();
        assert!((t.alpha - 0.05).abs() < 1e-6);
        assert_eq!(t.actions, b.actions);
        assert_eq!(t.rewards, b.rewards);
        assert_eq!(t.features, b.features);
        assert!((t.gamma - b.gamma).abs() < 1e-9);
    }

    #[test]
    fn strict_deters_inaccuracy_and_frees_no_prefetch() {
        let s = RewardLevels::strict();
        let b = RewardLevels::basic();
        assert!(s.inaccurate_high_bw < b.inaccurate_high_bw);
        assert!(s.inaccurate_low_bw < b.inaccurate_low_bw);
        assert!(s.no_prefetch_high_bw > b.no_prefetch_high_bw);
        assert_eq!(s.accurate_timely, b.accurate_timely);
    }

    #[test]
    fn bandwidth_oblivious_collapses_dual_levels() {
        let o = RewardLevels::bandwidth_oblivious();
        assert_eq!(o.inaccurate_high_bw, o.inaccurate_low_bw);
        assert_eq!(o.no_prefetch_high_bw, o.no_prefetch_low_bw);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(PythiaConfig::basic()
            .with_features(vec![])
            .validate()
            .is_err());
        assert!(PythiaConfig::basic()
            .with_actions(vec![])
            .validate()
            .is_err());
        assert!(PythiaConfig::basic()
            .with_actions(vec![99])
            .validate()
            .is_err());
        let mut c = PythiaConfig::basic();
        c.gamma = 1.0;
        assert!(c.validate().is_err());
        let mut c = PythiaConfig::basic();
        c.eq_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn full_action_list_has_127_entries() {
        assert_eq!(PythiaConfig::full_actions().len(), 127);
    }

    #[test]
    fn no_prefetch_action_found() {
        assert_eq!(PythiaConfig::basic().no_prefetch_action(), Some(3));
        let c = PythiaConfig::basic().with_actions(vec![1, 2, 3]);
        assert_eq!(c.no_prefetch_action(), None);
    }
}
