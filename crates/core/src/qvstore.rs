//! QVStore: the hierarchical, table-based Q-value store (§4.2.1, Fig. 5).
//!
//! One **vault** per program feature records Q-values for feature-action
//! pairs. Each vault is a set of tile-coded **planes**: a plane hashes the
//! (shifted) feature value into a small index and stores a *partial*
//! Q-value per (index, action). The feature-action Q-value is the **sum**
//! of its plane partials (Fig. 5(b)); the state-action Q-value is the
//! **max** over vaults (Eqn. 3):
//!
//! ```text
//! Q(S, A) = max_i  Σ_planes  q_plane(shift_p(φ_i), A)
//! ```
//!
//! Tile coding trades resolution for generalization: each plane shifts the
//! feature value by a different constant before hashing, so nearby feature
//! values share some (but not all) partial Q-values.
//!
//! The SARSA update distributes the TD error equally across the planes of
//! every vault (linear function approximation with constant feature
//! gradient), so each vault's Q-value moves by exactly `α·δ`.
//!
//! ```rust
//! use pythia_core::{PythiaConfig, QvStore};
//!
//! let cfg = PythiaConfig::basic();
//! let store = QvStore::new(&cfg);
//! let state = vec![0x99, 0x07]; // one feature value per vault
//! let best = store.argmax(&state);
//! assert!(best < cfg.actions.len());
//! // Fresh stores are optimistically initialized (Algorithm 1, line 2):
//! assert_eq!(store.q(&state, best), cfg.q_init());
//! ```

use crate::config::{PythiaConfig, VaultCombine};

/// Per-plane shift constants ("randomly selected at design time", §4.2.1).
/// Plane 0 keeps full resolution; higher planes quantize coarser.
const PLANE_SHIFTS: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

#[inline]
fn plane_hash(value: u64, plane: usize, index_bits: u32) -> usize {
    let shifted = value >> PLANE_SHIFTS[plane % PLANE_SHIFTS.len()];
    // Mix the plane id in so planes disagree on aliasing.
    let x = shifted ^ (plane as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> (64 - index_bits)) as usize
}

/// The Q-value store.
#[derive(Debug, Clone)]
pub struct QvStore {
    /// `tables[vault][plane]` is a flat `[index][action]` matrix.
    tables: Vec<Vec<Vec<f32>>>,
    vaults: usize,
    planes: usize,
    index_bits: u32,
    actions: usize,
    combine: VaultCombine,
    updates: u64,
}

impl QvStore {
    /// Creates a QVStore per the configuration, initializing every entry so
    /// the *summed* Q-value equals the optimistic `1/(1-γ)` (Algorithm 1,
    /// line 2).
    pub fn new(config: &PythiaConfig) -> Self {
        let vaults = config.features.len();
        let planes = config.planes;
        let entries = 1usize << config.plane_index_bits;
        let actions = config.actions.len();
        let init = config.q_init() / planes as f32;
        Self {
            tables: vec![vec![vec![init; entries * actions]; planes]; vaults],
            vaults,
            planes,
            index_bits: config.plane_index_bits,
            actions,
            combine: config.vault_combine,
            updates: 0,
        }
    }

    /// Number of vaults (= state-vector dimension).
    pub fn vaults(&self) -> usize {
        self.vaults
    }

    /// Number of Q-value (SARSA) updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    #[inline]
    fn cell(&self, vault: usize, plane: usize, value: u64, action: usize) -> f32 {
        let idx = plane_hash(value, plane, self.index_bits);
        self.tables[vault][plane][idx * self.actions + action]
    }

    #[inline]
    fn cell_mut(&mut self, vault: usize, plane: usize, value: u64, action: usize) -> &mut f32 {
        let idx = plane_hash(value, plane, self.index_bits);
        &mut self.tables[vault][plane][idx * self.actions + action]
    }

    /// Feature-action Q-value: the sum of plane partials (Fig. 5(b)).
    pub fn feature_q(&self, vault: usize, value: u64, action: usize) -> f32 {
        (0..self.planes)
            .map(|p| self.cell(vault, p, value, action))
            .sum()
    }

    /// State-action Q-value: max over vaults (Eqn. 3), or the mean when
    /// the configuration selects the averaging ablation.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of vaults.
    pub fn q(&self, state: &[u64], action: usize) -> f32 {
        assert_eq!(state.len(), self.vaults, "state dimension mismatch");
        let vals = state
            .iter()
            .enumerate()
            .map(|(v, &value)| self.feature_q(v, value, action));
        match self.combine {
            VaultCombine::Max => vals.fold(f32::NEG_INFINITY, f32::max),
            VaultCombine::Mean => {
                let mut sum = 0.0;
                let mut n = 0;
                for v in vals {
                    sum += v;
                    n += 1;
                }
                sum / n as f32
            }
        }
    }

    /// Q-values of every action for `state` (one pipelined search, Fig. 6),
    /// collected into a fresh `Vec`. On per-demand paths prefer
    /// [`q_row_into`](QvStore::q_row_into), which reuses a caller-owned
    /// buffer, or [`argmax`](QvStore::argmax), which allocates nothing.
    pub fn q_row(&self, state: &[u64]) -> Vec<f32> {
        let mut row = Vec::new();
        self.q_row_into(state, &mut row);
        row
    }

    /// Writes the Q-values of every action for `state` into `row`
    /// (cleared and refilled), so per-demand callers can reuse one buffer
    /// instead of allocating a fresh `Vec` per lookup.
    pub fn q_row_into(&self, state: &[u64], row: &mut Vec<f32>) {
        row.clear();
        row.reserve(self.actions);
        row.extend((0..self.actions).map(|a| self.q(state, a)));
    }

    /// The action with the maximum Q-value, with ties broken toward the
    /// lowest index (deterministic hardware behaviour). Allocation-free —
    /// this sits on the agent's per-demand path.
    pub fn argmax(&self, state: &[u64]) -> usize {
        let mut best = 0;
        let mut best_q = self.q(state, 0);
        for a in 1..self.actions {
            let q = self.q(state, a);
            if q > best_q {
                best_q = q;
                best = a;
            }
        }
        best
    }

    /// Applies the SARSA update (Algorithm 1, line 29):
    ///
    /// `Q(S1,A1) += α · (R + γ·Q(S2,A2) − Q(S1,A1))`
    ///
    /// The TD error is computed from the combined Q-values and distributed
    /// across all planes of all vaults, divided by the plane count, so each
    /// vault's feature-action Q-value moves by exactly `α·δ`.
    // The argument list mirrors Algorithm 1's (S1, A1, R, S2, A2, α, γ)
    // tuple; bundling them into a struct would obscure the paper mapping.
    #[allow(clippy::too_many_arguments)]
    pub fn sarsa_update(
        &mut self,
        s1: &[u64],
        a1: usize,
        reward: f32,
        s2: &[u64],
        a2: usize,
        alpha: f32,
        gamma: f32,
    ) {
        let q1 = self.q(s1, a1);
        let q2 = self.q(s2, a2);
        let delta = reward + gamma * q2 - q1;
        let per_plane = alpha * delta / self.planes as f32;
        for (v, &value) in s1.iter().enumerate() {
            for p in 0..self.planes {
                *self.cell_mut(v, p, value, a1) += per_plane;
            }
        }
        self.updates += 1;
    }

    /// Total Q-value storage in bits (16-bit entries per Table 4).
    pub fn storage_bits(&self) -> u64 {
        let entries = 1u64 << self.index_bits;
        self.vaults as u64 * self.planes as u64 * entries * self.actions as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PythiaConfig;

    fn store() -> QvStore {
        QvStore::new(&PythiaConfig::basic())
    }

    #[test]
    fn initialized_to_optimistic_q() {
        let s = store();
        let cfg = PythiaConfig::basic();
        let q = s.q(&[123, 456], 0);
        assert!(
            (q - cfg.q_init()).abs() < 1e-4,
            "q={q}, expect {}",
            cfg.q_init()
        );
    }

    #[test]
    fn table4_storage_is_24_kb() {
        let s = store();
        // 2 vaults x 3 planes x 128 entries x 16 actions x 16 bits = 24 KB.
        assert_eq!(s.storage_bits(), 2 * 3 * 128 * 16 * 16);
        assert_eq!(s.storage_bits() / 8 / 1024, 24);
    }

    #[test]
    fn sarsa_update_moves_toward_target() {
        let mut s = store();
        let s1 = vec![10u64, 20u64];
        let s2 = vec![11u64, 21u64];
        let cfg = PythiaConfig::basic();
        let q_before = s.q(&s1, 2);
        // Strong negative reward repeatedly applied must lower Q(S1, 2).
        for _ in 0..1000 {
            s.sarsa_update(&s1, 2, -14.0, &s2, 2, 0.1, cfg.gamma);
        }
        let q_after = s.q(&s1, 2);
        assert!(q_after < q_before, "{q_after} !< {q_before}");
        assert_eq!(s.updates(), 1000);
    }

    #[test]
    fn update_converges_to_fixed_point() {
        // With S2 = S1 and A2 = A1, the fixed point is R/(1-γ).
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![42u64, 77u64];
        for _ in 0..20_000 {
            s.sarsa_update(&st, 5, 10.0, &st, 5, 0.05, cfg.gamma);
        }
        let expect = 10.0 / (1.0 - cfg.gamma);
        let got = s.q(&st, 5);
        assert!((got - expect).abs() < 0.5, "got {got}, expect {expect}");
    }

    #[test]
    fn argmax_prefers_reinforced_over_punished() {
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![5u64, 6u64];
        // Punish every action except 7, which keeps earning the maximum
        // reward (so it stays at the optimistic init's fixpoint).
        for _ in 0..500 {
            for a in 0..cfg.actions.len() {
                let r = if a == 7 { 20.0 } else { -14.0 };
                s.sarsa_update(&st, a, r, &st, a, 0.05, cfg.gamma);
            }
        }
        assert_eq!(s.argmax(&st), 7);
        assert!(s.q(&st, 7) > s.q(&st, 3) + 10.0);
    }

    #[test]
    fn tile_coding_generalizes_nearby_values() {
        // Values 100 and 101 share higher-plane tiles (after shifting),
        // so training value 100 must move value 101's Q a little -- but less
        // than value 100's own Q.
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let v_trained = vec![100u64, 0];
        let v_near = [101u64, 0];
        let v_far = [9_999_999u64, 0];
        let q0_near = s.feature_q(0, v_near[0], 4);
        let q0_far = s.feature_q(0, v_far[0], 4);
        for _ in 0..2000 {
            s.sarsa_update(&v_trained, 4, -14.0, &v_trained, 4, 0.05, cfg.gamma);
        }
        let moved_near = (s.feature_q(0, v_near[0], 4) - q0_near).abs();
        let moved_far = (s.feature_q(0, v_far[0], 4) - q0_far).abs();
        assert!(
            moved_near > moved_far,
            "nearby values should share tiles: near {moved_near}, far {moved_far}"
        );
    }

    #[test]
    fn max_combination_over_vaults() {
        // Train only vault 0's feature value; vault 1 keeps the optimistic
        // init, so the max should remain at the optimistic value.
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![50u64, 60u64];
        // Apply updates that lower both vaults' values... q() uses max, so
        // verify q >= each individual vault's value.
        for _ in 0..100 {
            s.sarsa_update(&st, 1, -12.0, &st, 1, 0.05, cfg.gamma);
        }
        let q = s.q(&st, 1);
        let f0 = s.feature_q(0, st[0], 1);
        let f1 = s.feature_q(1, st[1], 1);
        assert!((q - f0.max(f1)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn dimension_mismatch_panics() {
        let s = store();
        let _ = s.q(&[1], 0);
    }

    #[test]
    fn q_row_length_matches_actions() {
        let s = store();
        assert_eq!(s.q_row(&[1, 2]).len(), PythiaConfig::basic().actions.len());
    }

    #[test]
    fn q_row_into_reuses_the_buffer_and_matches_q_row() {
        let mut s = store();
        let cfg = PythiaConfig::basic();
        for a in 0..cfg.actions.len() {
            let r = if a == 3 { 12.0 } else { -3.0 };
            s.sarsa_update(&[9, 9], a, r, &[9, 9], a, 0.05, cfg.gamma);
        }
        let mut buf = vec![0.0f32; 99]; // stale content must be cleared
        s.q_row_into(&[9, 9], &mut buf);
        assert_eq!(buf, s.q_row(&[9, 9]));
        assert_eq!(buf.len(), cfg.actions.len());
        // argmax agrees with the row without allocating.
        let best = s.argmax(&[9, 9]);
        let row = s.q_row(&[9, 9]);
        assert!(row.iter().all(|&q| q <= row[best]));
    }
}
