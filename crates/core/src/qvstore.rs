//! QVStore: the hierarchical, table-based Q-value store (§4.2.1, Fig. 5).
//!
//! One **vault** per program feature records Q-values for feature-action
//! pairs. Each vault is a set of tile-coded **planes**: a plane hashes the
//! (shifted) feature value into a small index and stores a *partial*
//! Q-value per (index, action). The feature-action Q-value is the **sum**
//! of its plane partials (Fig. 5(b)); the state-action Q-value is the
//! **max** over vaults (Eqn. 3):
//!
//! ```text
//! Q(S, A) = max_i  Σ_planes  q_plane(shift_p(φ_i), A)
//! ```
//!
//! Tile coding trades resolution for generalization: each plane shifts the
//! feature value by a different constant before hashing, so nearby feature
//! values share some (but not all) partial Q-values.
//!
//! The SARSA update distributes the TD error equally across the planes of
//! every vault (linear function approximation with constant feature
//! gradient), so each vault's Q-value moves by exactly `α·δ`.
//!
//! ```rust
//! use pythia_core::{PythiaConfig, QvStore};
//!
//! let cfg = PythiaConfig::basic();
//! let store = QvStore::new(&cfg);
//! let state = vec![0x99, 0x07]; // one feature value per vault
//! let best = store.argmax(&state);
//! assert!(best < cfg.actions.len());
//! // Fresh stores are optimistically initialized (Algorithm 1, line 2):
//! assert_eq!(store.q(&state, best), cfg.q_init());
//! ```

use crate::config::{PythiaConfig, VaultCombine};

/// Per-plane shift constants ("randomly selected at design time", §4.2.1).
/// Plane 0 keeps full resolution; higher planes quantize coarser.
const PLANE_SHIFTS: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

#[inline]
fn plane_hash(value: u64, plane: usize, index_bits: u32) -> usize {
    let shifted = value >> PLANE_SHIFTS[plane % PLANE_SHIFTS.len()];
    // Mix the plane id in so planes disagree on aliasing.
    let x = shifted ^ (plane as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> (64 - index_bits)) as usize
}

/// Plane-base scratch is kept on the stack for state vectors with up to
/// this many (vault, plane) cells — large enough for every configuration
/// the DSE explores; bigger stores fall back to one heap allocation per
/// lookup.
const INLINE_BASES: usize = 64;

/// Runs `f` over an `n`-element zeroed scratch slice, stack-allocated up
/// to `N` elements and heap-allocated beyond — the one shared
/// inline-or-heap policy behind every per-lookup scratch buffer here
/// (plane bases, SARSA write-back bases, the argmax Q-row).
#[inline]
fn with_scratch<T: Copy + Default, const N: usize, R>(
    n: usize,
    f: impl FnOnce(&mut [T]) -> R,
) -> R {
    if n <= N {
        let mut buf = [T::default(); N];
        f(&mut buf[..n])
    } else {
        let mut buf = vec![T::default(); n];
        f(&mut buf)
    }
}

/// The Q-value store.
///
/// Storage is a single flat `[vault][plane][index][action]` array (SoA):
/// one allocation, one cache-friendly stride walk per lookup, instead of
/// the pointer-chasing `Vec<Vec<Vec<f32>>>` layout this replaced. Per-state
/// plane hashes are computed once per lookup and shared by every action
/// probed against that state, which turns the per-demand argmax from
/// `actions × vaults × planes` hash computations into `vaults × planes`.
#[derive(Debug, Clone)]
pub struct QvStore {
    /// Flat partial-Q storage, indexed by
    /// `vault * vault_stride + plane * plane_stride + index * actions + action`.
    table: Vec<f32>,
    vaults: usize,
    planes: usize,
    index_bits: u32,
    actions: usize,
    /// Elements per plane: `entries * actions`.
    plane_stride: usize,
    /// Elements per vault: `planes * plane_stride`.
    vault_stride: usize,
    combine: VaultCombine,
    updates: u64,
}

impl QvStore {
    /// Creates a QVStore per the configuration, initializing every entry so
    /// the *summed* Q-value equals the optimistic `1/(1-γ)` (Algorithm 1,
    /// line 2).
    pub fn new(config: &PythiaConfig) -> Self {
        let vaults = config.features.len();
        let planes = config.planes;
        let entries = 1usize << config.plane_index_bits;
        let actions = config.actions.len();
        let init = config.q_init() / planes as f32;
        let plane_stride = entries * actions;
        let vault_stride = planes * plane_stride;
        Self {
            table: vec![init; vaults * vault_stride],
            vaults,
            planes,
            index_bits: config.plane_index_bits,
            actions,
            plane_stride,
            vault_stride,
            combine: config.vault_combine,
            updates: 0,
        }
    }

    /// Number of vaults (= state-vector dimension).
    pub fn vaults(&self) -> usize {
        self.vaults
    }

    /// Number of Q-value (SARSA) updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Flat-array offset of the `(vault, plane, value)` cell row (the
    /// element holding action 0).
    #[inline]
    fn base(&self, vault: usize, plane: usize, value: u64) -> usize {
        let idx = plane_hash(value, plane, self.index_bits);
        vault * self.vault_stride + plane * self.plane_stride + idx * self.actions
    }

    #[inline]
    fn cell(&self, vault: usize, plane: usize, value: u64, action: usize) -> f32 {
        self.table[self.base(vault, plane, value) + action]
    }

    /// Computes every `(vault, plane)` cell base for `state` once, then
    /// hands the slice to `f`: lookups probing several actions against one
    /// state (argmax, `q_row_into`, the SARSA update) hash each plane a
    /// single time instead of once per action.
    #[inline]
    fn with_bases<R>(&self, state: &[u64], f: impl FnOnce(&[usize]) -> R) -> R {
        assert_eq!(state.len(), self.vaults, "state dimension mismatch");
        with_scratch::<usize, INLINE_BASES, R>(self.vaults * self.planes, |bases| {
            self.fill_bases(state, bases);
            f(bases)
        })
    }

    #[inline]
    fn fill_bases(&self, state: &[u64], bases: &mut [usize]) {
        let mut i = 0;
        for (v, &value) in state.iter().enumerate() {
            for p in 0..self.planes {
                bases[i] = self.base(v, p, value);
                i += 1;
            }
        }
    }

    /// State-action Q-value from precomputed plane bases, combining vaults
    /// in exactly the order [`QvStore::q`] documents (plane-order partial
    /// sums, then max/mean across vaults) so the two paths are
    /// bit-identical.
    #[inline]
    fn q_from_bases(&self, bases: &[usize], action: usize) -> f32 {
        let vaults = bases.chunks_exact(self.planes).map(|planes| {
            planes
                .iter()
                .map(|&base| self.table[base + action])
                .sum::<f32>()
        });
        match self.combine {
            VaultCombine::Max => vaults.fold(f32::NEG_INFINITY, f32::max),
            VaultCombine::Mean => {
                let mut sum = 0.0;
                let mut n = 0;
                for v in vaults {
                    sum += v;
                    n += 1;
                }
                sum / n as f32
            }
        }
    }

    /// Q-values of every action at once, transposed so each `(vault,
    /// plane)` cell row is walked contiguously (`actions` consecutive
    /// floats) — the vectorizable layout of the per-demand argmax. The
    /// float combination order per action is exactly
    /// [`q_from_bases`](QvStore::q_from_bases)'s (planes in order within a
    /// vault, then max/mean across vaults in order), so results are
    /// bit-identical to probing each action individually.
    #[inline]
    fn q_all_from_bases(&self, bases: &[usize], row: &mut [f32]) {
        debug_assert_eq!(row.len(), self.actions);
        let n = self.actions;
        let init = match self.combine {
            VaultCombine::Max => f32::NEG_INFINITY,
            VaultCombine::Mean => 0.0,
        };
        row.fill(init);
        let mut vaults = 0u32;
        // Scratch for the rare plane counts without a fused loop below.
        let mut acc_heap: Vec<f32> = Vec::new();
        for planes in bases.chunks_exact(self.planes) {
            // Fused per-action vault sums for the common plane counts
            // (Table 2 uses 3). The explicit leading `0.0 +` keeps the
            // addition chain identical to the iterator sum in
            // [`q_from_bases`](QvStore::q_from_bases), which starts from
            // zero.
            macro_rules! combine {
                ($vault_q:expr) => {
                    match self.combine {
                        VaultCombine::Max => {
                            for (a, r) in row.iter_mut().enumerate() {
                                *r = r.max($vault_q(a));
                            }
                        }
                        VaultCombine::Mean => {
                            for (a, r) in row.iter_mut().enumerate() {
                                *r += $vault_q(a);
                            }
                        }
                    }
                };
            }
            match *planes {
                [b0] => {
                    let t0 = &self.table[b0..b0 + n];
                    combine!(|a: usize| 0.0 + t0[a]);
                }
                [b0, b1] => {
                    let t0 = &self.table[b0..b0 + n];
                    let t1 = &self.table[b1..b1 + n];
                    combine!(|a: usize| (0.0 + t0[a]) + t1[a]);
                }
                [b0, b1, b2] => {
                    let t0 = &self.table[b0..b0 + n];
                    let t1 = &self.table[b1..b1 + n];
                    let t2 = &self.table[b2..b2 + n];
                    combine!(|a: usize| ((0.0 + t0[a]) + t1[a]) + t2[a]);
                }
                _ => {
                    acc_heap.clear();
                    acc_heap.resize(n, 0.0);
                    for &base in planes {
                        let cells = &self.table[base..base + n];
                        for (acc, &c) in acc_heap.iter_mut().zip(cells) {
                            *acc += c;
                        }
                    }
                    combine!(|a: usize| acc_heap[a]);
                }
            }
            vaults += 1;
        }
        if self.combine == VaultCombine::Mean {
            for r in row.iter_mut() {
                *r /= vaults as f32;
            }
        }
    }

    /// Feature-action Q-value: the sum of plane partials (Fig. 5(b)).
    pub fn feature_q(&self, vault: usize, value: u64, action: usize) -> f32 {
        (0..self.planes)
            .map(|p| self.cell(vault, p, value, action))
            .sum()
    }

    /// State-action Q-value: max over vaults (Eqn. 3), or the mean when
    /// the configuration selects the averaging ablation.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of vaults.
    pub fn q(&self, state: &[u64], action: usize) -> f32 {
        self.with_bases(state, |bases| self.q_from_bases(bases, action))
    }

    /// Q-values of every action for `state` (one pipelined search, Fig. 6),
    /// collected into a fresh `Vec`. On per-demand paths prefer
    /// [`q_row_into`](QvStore::q_row_into), which reuses a caller-owned
    /// buffer, or [`argmax`](QvStore::argmax), which allocates nothing.
    pub fn q_row(&self, state: &[u64]) -> Vec<f32> {
        let mut row = Vec::new();
        self.q_row_into(state, &mut row);
        row
    }

    /// Writes the Q-values of every action for `state` into `row`
    /// (cleared and refilled), so per-demand callers can reuse one buffer
    /// instead of allocating a fresh `Vec` per lookup.
    pub fn q_row_into(&self, state: &[u64], row: &mut Vec<f32>) {
        row.clear();
        row.resize(self.actions, 0.0);
        self.with_bases(state, |bases| self.q_all_from_bases(bases, row));
    }

    /// First index of the row maximum — [`QvStore::argmax`]'s tie-break
    /// (strictly-greater scan from index 0).
    #[inline]
    fn first_max(row: &[f32]) -> usize {
        let mut best = 0;
        let mut best_q = row[0];
        for (a, &q) in row.iter().enumerate().skip(1) {
            if q > best_q {
                best_q = q;
                best = a;
            }
        }
        best
    }

    /// The action with the maximum Q-value, with ties broken toward the
    /// lowest index (deterministic hardware behaviour). Allocation-free
    /// for action lists up to 32 entries — this sits on the agent's
    /// per-demand path; callers that probe repeatedly (or run the 127-way
    /// unpruned list) can reuse a buffer through
    /// [`argmax_with_row`](QvStore::argmax_with_row) instead.
    pub fn argmax(&self, state: &[u64]) -> usize {
        const INLINE_ROW: usize = 32;
        self.with_bases(state, |bases| {
            with_scratch::<f32, INLINE_ROW, usize>(self.actions, |row| {
                self.q_all_from_bases(bases, row);
                Self::first_max(row)
            })
        })
    }

    /// [`QvStore::argmax`] through a caller-owned row buffer (resized and
    /// overwritten), leaving the buffer holding every action's Q-value.
    /// The agent threads one buffer through every demand, so steady-state
    /// action selection allocates nothing regardless of action-list size.
    pub fn argmax_with_row(&self, state: &[u64], row: &mut Vec<f32>) -> usize {
        self.q_row_into(state, row);
        Self::first_max(row)
    }

    /// Applies the SARSA update (Algorithm 1, line 29):
    ///
    /// `Q(S1,A1) += α · (R + γ·Q(S2,A2) − Q(S1,A1))`
    ///
    /// The TD error is computed from the combined Q-values and distributed
    /// across all planes of all vaults, divided by the plane count, so each
    /// vault's feature-action Q-value moves by exactly `α·δ`.
    // The argument list mirrors Algorithm 1's (S1, A1, R, S2, A2, α, γ)
    // tuple; bundling them into a struct would obscure the paper mapping.
    #[allow(clippy::too_many_arguments)]
    pub fn sarsa_update(
        &mut self,
        s1: &[u64],
        a1: usize,
        reward: f32,
        s2: &[u64],
        a2: usize,
        alpha: f32,
        gamma: f32,
    ) {
        // S1's plane bases serve both the Q(S1,A1) read and the update
        // write-back, so each plane is hashed once.
        assert_eq!(s1.len(), self.vaults, "state dimension mismatch");
        with_scratch::<usize, INLINE_BASES, ()>(self.vaults * self.planes, |bases| {
            self.fill_bases(s1, bases);
            let q1 = self.q_from_bases(bases, a1);
            let q2 = self.q(s2, a2);
            let delta = reward + gamma * q2 - q1;
            let per_plane = alpha * delta / self.planes as f32;
            for &base in bases.iter() {
                self.table[base + a1] += per_plane;
            }
        });
        self.updates += 1;
    }

    /// Total Q-value storage in bits (16-bit entries per Table 4).
    pub fn storage_bits(&self) -> u64 {
        let entries = 1u64 << self.index_bits;
        self.vaults as u64 * self.planes as u64 * entries * self.actions as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PythiaConfig;

    fn store() -> QvStore {
        QvStore::new(&PythiaConfig::basic())
    }

    #[test]
    fn initialized_to_optimistic_q() {
        let s = store();
        let cfg = PythiaConfig::basic();
        let q = s.q(&[123, 456], 0);
        assert!(
            (q - cfg.q_init()).abs() < 1e-4,
            "q={q}, expect {}",
            cfg.q_init()
        );
    }

    #[test]
    fn table4_storage_is_24_kb() {
        let s = store();
        // 2 vaults x 3 planes x 128 entries x 16 actions x 16 bits = 24 KB.
        assert_eq!(s.storage_bits(), 2 * 3 * 128 * 16 * 16);
        assert_eq!(s.storage_bits() / 8 / 1024, 24);
    }

    #[test]
    fn sarsa_update_moves_toward_target() {
        let mut s = store();
        let s1 = vec![10u64, 20u64];
        let s2 = vec![11u64, 21u64];
        let cfg = PythiaConfig::basic();
        let q_before = s.q(&s1, 2);
        // Strong negative reward repeatedly applied must lower Q(S1, 2).
        for _ in 0..1000 {
            s.sarsa_update(&s1, 2, -14.0, &s2, 2, 0.1, cfg.gamma);
        }
        let q_after = s.q(&s1, 2);
        assert!(q_after < q_before, "{q_after} !< {q_before}");
        assert_eq!(s.updates(), 1000);
    }

    #[test]
    fn update_converges_to_fixed_point() {
        // With S2 = S1 and A2 = A1, the fixed point is R/(1-γ).
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![42u64, 77u64];
        for _ in 0..20_000 {
            s.sarsa_update(&st, 5, 10.0, &st, 5, 0.05, cfg.gamma);
        }
        let expect = 10.0 / (1.0 - cfg.gamma);
        let got = s.q(&st, 5);
        assert!((got - expect).abs() < 0.5, "got {got}, expect {expect}");
    }

    #[test]
    fn argmax_prefers_reinforced_over_punished() {
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![5u64, 6u64];
        // Punish every action except 7, which keeps earning the maximum
        // reward (so it stays at the optimistic init's fixpoint).
        for _ in 0..500 {
            for a in 0..cfg.actions.len() {
                let r = if a == 7 { 20.0 } else { -14.0 };
                s.sarsa_update(&st, a, r, &st, a, 0.05, cfg.gamma);
            }
        }
        assert_eq!(s.argmax(&st), 7);
        assert!(s.q(&st, 7) > s.q(&st, 3) + 10.0);
    }

    #[test]
    fn tile_coding_generalizes_nearby_values() {
        // Values 100 and 101 share higher-plane tiles (after shifting),
        // so training value 100 must move value 101's Q a little -- but less
        // than value 100's own Q.
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let v_trained = vec![100u64, 0];
        let v_near = [101u64, 0];
        let v_far = [9_999_999u64, 0];
        let q0_near = s.feature_q(0, v_near[0], 4);
        let q0_far = s.feature_q(0, v_far[0], 4);
        for _ in 0..2000 {
            s.sarsa_update(&v_trained, 4, -14.0, &v_trained, 4, 0.05, cfg.gamma);
        }
        let moved_near = (s.feature_q(0, v_near[0], 4) - q0_near).abs();
        let moved_far = (s.feature_q(0, v_far[0], 4) - q0_far).abs();
        assert!(
            moved_near > moved_far,
            "nearby values should share tiles: near {moved_near}, far {moved_far}"
        );
    }

    #[test]
    fn max_combination_over_vaults() {
        // Train only vault 0's feature value; vault 1 keeps the optimistic
        // init, so the max should remain at the optimistic value.
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![50u64, 60u64];
        // Apply updates that lower both vaults' values... q() uses max, so
        // verify q >= each individual vault's value.
        for _ in 0..100 {
            s.sarsa_update(&st, 1, -12.0, &st, 1, 0.05, cfg.gamma);
        }
        let q = s.q(&st, 1);
        let f0 = s.feature_q(0, st[0], 1);
        let f1 = s.feature_q(1, st[1], 1);
        assert!((q - f0.max(f1)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn dimension_mismatch_panics() {
        let s = store();
        let _ = s.q(&[1], 0);
    }

    #[test]
    fn q_row_length_matches_actions() {
        let s = store();
        assert_eq!(s.q_row(&[1, 2]).len(), PythiaConfig::basic().actions.len());
    }

    #[test]
    fn q_row_into_reuses_the_buffer_and_matches_q_row() {
        let mut s = store();
        let cfg = PythiaConfig::basic();
        for a in 0..cfg.actions.len() {
            let r = if a == 3 { 12.0 } else { -3.0 };
            s.sarsa_update(&[9, 9], a, r, &[9, 9], a, 0.05, cfg.gamma);
        }
        let mut buf = vec![0.0f32; 99]; // stale content must be cleared
        s.q_row_into(&[9, 9], &mut buf);
        assert_eq!(buf, s.q_row(&[9, 9]));
        assert_eq!(buf.len(), cfg.actions.len());
        // argmax agrees with the row without allocating.
        let best = s.argmax(&[9, 9]);
        let row = s.q_row(&[9, 9]);
        assert!(row.iter().all(|&q| q <= row[best]));
    }
}
