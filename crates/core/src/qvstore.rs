//! QVStore: the hierarchical, table-based Q-value store (§4.2.1, Fig. 5).
//!
//! One **vault** per program feature records Q-values for feature-action
//! pairs. Each vault is a set of tile-coded **planes**: a plane hashes the
//! (shifted) feature value into a small index and stores a *partial*
//! Q-value per (index, action). The feature-action Q-value is the **sum**
//! of its plane partials (Fig. 5(b)); the state-action Q-value is the
//! **max** over vaults (Eqn. 3):
//!
//! ```text
//! Q(S, A) = max_i  Σ_planes  q_plane(shift_p(φ_i), A)
//! ```
//!
//! Tile coding trades resolution for generalization: each plane shifts the
//! feature value by a different constant before hashing, so nearby feature
//! values share some (but not all) partial Q-values.
//!
//! The SARSA update distributes the TD error equally across the planes of
//! every vault (linear function approximation with constant feature
//! gradient), so each vault's Q-value moves by exactly `α·δ`.
//!
//! # Fixed-point storage (Q8.7)
//!
//! The hardware Pythia stores Q-values in narrow fixed-point, not floating
//! point — Table 4 budgets 16 bits per entry. Each plane partial is an
//! `i16` in **Q8.7**: 1 sign bit, 8 integer bits, 7 fraction bits
//! ([`Q_ONE`] = 128, so one LSB is 1/128 ≈ 0.0078). That range (±256)
//! comfortably covers the optimistic init `R_max/(1-γ)` divided across
//! planes, and the per-vault sum of up to 8 plane partials still fits an
//! `i32` exactly. The float API ([`QvStore::q`], [`QvStore::q_row`],
//! [`QvStore::feature_q`]) converts on read — every stored value and every
//! plane sum is exactly representable in `f32`, so the float view is a
//! lossless window onto the integer state.
//!
//! Rounding and saturation semantics:
//! - f32 → fixed conversions round to nearest, half away from zero, then
//!   saturate to the `i16` range ([`quantize`]).
//! - The SARSA update computes the TD error in 64-bit fixed-point with 16
//!   extra fraction bits (α, γ and α·δ products use round-to-nearest
//!   shifts), then **saturates** the per-plane write-back: an update can
//!   pin a partial at ±`i16::MAX`, but it can never wrap.
//! - The argmax never materializes floats at all: plane rows are walked as
//!   packed `u64` words of four sign-biased `u16` lanes, vault sums
//!   accumulate in paired 32-bit SWAR lanes, and vaults combine with a
//!   branchless lane max — bit-identical in ordering to the float view,
//!   ties broken toward the lowest action index.
//!
//! ```rust
//! use pythia_core::{PythiaConfig, QvStore};
//!
//! let cfg = PythiaConfig::basic();
//! let store = QvStore::new(&cfg);
//! let state = vec![0x99, 0x07]; // one feature value per vault
//! let best = store.argmax(&state);
//! assert!(best < cfg.actions.len());
//! // Fresh stores are optimistically initialized (Algorithm 1, line 2),
//! // to the Q8.7-quantized optimistic value:
//! assert_eq!(store.q(&state, best), cfg.q_init_quantized());
//! ```

use crate::config::{PythiaConfig, VaultCombine};

/// Per-plane shift constants ("randomly selected at design time", §4.2.1).
/// Plane 0 keeps full resolution; higher planes quantize coarser.
const PLANE_SHIFTS: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// Bits per stored Q entry: `i16` in Q8.7 (Table 4's 16-bit weights).
pub const QV_ENTRY_BITS: u64 = 16;

/// Fraction bits of the Q8.7 format.
pub const Q_FRAC_BITS: u32 = 7;

/// Fixed-point representation of 1.0 (`1 << Q_FRAC_BITS`).
pub const Q_ONE: i32 = 1 << Q_FRAC_BITS;

/// Rounds `x` to the nearest representable Q8.7 value (half away from
/// zero), saturating at the `i16` range — the conversion every write path
/// into the store goes through.
#[inline]
pub fn quantize(x: f32) -> f32 {
    fp_from_f32(x) as f32 / Q_ONE as f32
}

/// f32 → Q8.7 raw value: round to nearest (half away from zero), saturate.
#[inline]
fn fp_from_f32(x: f32) -> i16 {
    (x * Q_ONE as f32)
        .round()
        .clamp(i16::MIN as f32, i16::MAX as f32) as i16
}

/// The hash from a (shifted) feature value to a plane slot. Public so
/// reference models (the property tests' slow f64 oracle) can address the
/// same cells the store does.
#[inline]
pub fn plane_slot(value: u64, plane: usize, index_bits: u32) -> usize {
    let shifted = value >> PLANE_SHIFTS[plane % PLANE_SHIFTS.len()];
    // Mix the plane id in so planes disagree on aliasing.
    let x = shifted ^ (plane as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> (64 - index_bits)) as usize
}

/// Plane-base scratch is kept on the stack for state vectors with up to
/// this many (vault, plane) cells — large enough for every configuration
/// the DSE explores; bigger stores fall back to one heap allocation per
/// lookup.
const INLINE_BASES: usize = 64;

/// Stack budget for the argmax's per-block SWAR accumulators: four `u64`
/// words per 4-action block (combined + per-vault lane sums) covers
/// action lists up to 128 entries (the 127-way full list included)
/// without touching the heap.
const INLINE_BLOCK_WORDS: usize = 128;

/// Runs `f` over an `n`-element zeroed scratch slice, stack-allocated up
/// to `N` elements and heap-allocated beyond — the one shared
/// inline-or-heap policy behind every per-lookup scratch buffer here
/// (plane bases and SARSA write-back bases).
#[inline]
fn with_scratch<T: Copy + Default, const N: usize, R>(
    n: usize,
    f: impl FnOnce(&mut [T]) -> R,
) -> R {
    if n <= N {
        let mut buf = [T::default(); N];
        f(&mut buf[..n])
    } else {
        let mut buf = vec![T::default(); n];
        f(&mut buf)
    }
}

/// XOR mask flipping each packed `i16` lane's sign bit: biased-unsigned
/// lanes compare in the same order as the signed originals.
const LANE_BIAS: u64 = 0x8000_8000_8000_8000;

/// Mask selecting the even 16-bit lanes as two 32-bit accumulator lanes.
const EVEN_LANES: u64 = 0x0000_FFFF_0000_FFFF;

/// Four consecutive `i16` cells as one little-endian `u64` word. LLVM
/// folds this into a single 8-byte load.
#[inline]
fn pack4(c: &[i16]) -> u64 {
    (c[0] as u16 as u64)
        | ((c[1] as u16 as u64) << 16)
        | ((c[2] as u16 as u64) << 32)
        | ((c[3] as u16 as u64) << 48)
}

/// Branchless per-lane max of two packed unsigned 32-bit lane pairs.
#[inline]
fn max_u32x2(a: u64, b: u64) -> u64 {
    let lo = (a as u32).max(b as u32) as u64;
    let hi = ((a >> 32) as u32).max((b >> 32) as u32) as u64;
    lo | (hi << 32)
}

/// `n / d` with round-to-nearest, half away from zero (`d > 0`).
#[inline]
fn div_round(n: i64, d: i64) -> i64 {
    if n >= 0 {
        (n + d / 2) / d
    } else {
        (n - d / 2) / d
    }
}

/// `x >> s` with round-to-nearest (ties toward +∞) — the fixed-point
/// product normalization step.
#[inline]
fn round_shift(x: i64, s: u32) -> i64 {
    (x + (1i64 << (s - 1))) >> s
}

/// The Q-value store.
///
/// Storage is a single flat `[vault][plane][index][action]` array (SoA) of
/// Q8.7 `i16` entries: one allocation, one cache-friendly stride walk per
/// lookup, and half the footprint of the f32 layout it replaced. Per-state
/// plane hashes are computed once per lookup and shared by every action
/// probed against that state, which turns the per-demand argmax from
/// `actions × vaults × planes` hash computations into `vaults × planes`.
#[derive(Debug, Clone)]
pub struct QvStore {
    /// Flat partial-Q storage (Q8.7), indexed by
    /// `vault * vault_stride + plane * plane_stride + index * actions + action`.
    table: Vec<i16>,
    vaults: usize,
    planes: usize,
    index_bits: u32,
    actions: usize,
    /// Elements per plane: `entries * actions`.
    plane_stride: usize,
    /// Elements per vault: `planes * plane_stride`.
    vault_stride: usize,
    combine: VaultCombine,
    updates: u64,
    /// Whether the CPU supports the AVX2 argmax kernel — detected once at
    /// construction so the per-demand path branches on a plain bool.
    use_avx2: bool,
}

/// One-time runtime check for the vectorized argmax path. Off x86-64 the
/// portable SWAR walk is the only path.
fn detect_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl QvStore {
    /// Creates a QVStore per the configuration, initializing every entry so
    /// the *summed* Q-value equals the optimistic `1/(1-γ)` (Algorithm 1,
    /// line 2), quantized to Q8.7 per plane.
    pub fn new(config: &PythiaConfig) -> Self {
        let vaults = config.features.len();
        let planes = config.planes;
        let entries = 1usize << config.plane_index_bits;
        let actions = config.actions.len();
        let init = fp_from_f32(config.q_init() / planes as f32);
        let plane_stride = entries * actions;
        let vault_stride = planes * plane_stride;
        // SWAR vault sums accumulate `planes` biased u16 lanes per 32-bit
        // accumulator lane; Mean-combine further sums across vaults.
        debug_assert!(vaults * planes < (1 << 15), "SWAR lane sum would overflow");
        Self {
            table: vec![init; vaults * vault_stride],
            vaults,
            planes,
            index_bits: config.plane_index_bits,
            actions,
            plane_stride,
            vault_stride,
            combine: config.vault_combine,
            updates: 0,
            use_avx2: detect_avx2(),
        }
    }

    /// Number of vaults (= state-vector dimension).
    pub fn vaults(&self) -> usize {
        self.vaults
    }

    /// Number of Q-value (SARSA) updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Flat-array offset of the `(vault, plane, value)` cell row (the
    /// element holding action 0).
    #[inline]
    fn base(&self, vault: usize, plane: usize, value: u64) -> usize {
        let idx = plane_slot(value, plane, self.index_bits);
        vault * self.vault_stride + plane * self.plane_stride + idx * self.actions
    }

    #[inline]
    fn cell(&self, vault: usize, plane: usize, value: u64, action: usize) -> i16 {
        self.table[self.base(vault, plane, value) + action]
    }

    /// Computes every `(vault, plane)` cell base for `state` into a
    /// caller-owned buffer (cleared and refilled). The bases are the
    /// store's entire per-state hashing work: callers that keep them — the
    /// agent caches each EQ entry's bases from selection to SARSA — can
    /// run [`argmax_prehashed`](QvStore::argmax_prehashed) and
    /// [`sarsa_update_prehashed`](QvStore::sarsa_update_prehashed) without
    /// rehashing anything.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of vaults.
    pub fn state_bases(&self, state: &[u64], out: &mut Vec<usize>) {
        assert_eq!(state.len(), self.vaults, "state dimension mismatch");
        out.clear();
        out.resize(self.vaults * self.planes, 0);
        self.fill_bases(state, out);
    }

    /// [`QvStore::argmax`] over plane bases already computed by
    /// [`state_bases`](QvStore::state_bases) — skips the per-state hashing
    /// and scratch fill entirely.
    ///
    /// # Panics
    ///
    /// Panics if `bases` was not produced for this store's geometry
    /// (`vaults * planes` entries).
    pub fn argmax_prehashed(&self, bases: &[usize]) -> usize {
        assert_eq!(
            bases.len(),
            self.vaults * self.planes,
            "bases geometry mismatch"
        );
        self.argmax_from_bases(bases)
    }

    /// Issues a software prefetch for every plane row named by
    /// precomputed bases, so the agent can overlap the table loads of the
    /// upcoming argmax with independent work (EQ probing). A handful of
    /// prefetch instructions, cheap enough to issue unconditionally —
    /// even the paper's 24 KiB table spills to L2 under a working set,
    /// and hiding that latency is worth more than the hint costs. No
    /// architectural effect; no-op off x86_64.
    #[inline]
    pub fn prefetch_rows(&self, bases: &[usize]) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            for &base in bases {
                debug_assert!(base < self.table.len());
                // Safety: prefetch has no architectural effect regardless
                // of the address.
                unsafe { _mm_prefetch(self.table.as_ptr().add(base) as *const i8, _MM_HINT_T0) }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = bases;
    }

    /// Prefetches the single Q-cell `base + action` of every plane row —
    /// the exact cells a SARSA update on these bases will read or write.
    /// The agent issues this one demand ahead of the eviction that
    /// consumes them, hiding the update's cache misses behind a full step
    /// of independent work.
    #[inline]
    pub fn prefetch_cells(&self, bases: &[usize], action: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            for &base in bases {
                debug_assert!(base + action < self.table.len());
                // Safety: prefetch has no architectural effect regardless
                // of the address.
                unsafe {
                    _mm_prefetch(
                        self.table.as_ptr().add(base + action) as *const i8,
                        _MM_HINT_T0,
                    )
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (bases, action);
    }

    /// Computes every `(vault, plane)` cell base for `state` once, then
    /// hands the slice to `f`: lookups probing several actions against one
    /// state (argmax, `q_row_into`, the SARSA update) hash each plane a
    /// single time instead of once per action.
    #[inline]
    fn with_bases<R>(&self, state: &[u64], f: impl FnOnce(&[usize]) -> R) -> R {
        assert_eq!(state.len(), self.vaults, "state dimension mismatch");
        with_scratch::<usize, INLINE_BASES, R>(self.vaults * self.planes, |bases| {
            self.fill_bases(state, bases);
            f(bases)
        })
    }

    #[inline]
    fn fill_bases(&self, state: &[u64], bases: &mut [usize]) {
        let mut i = 0;
        for (v, &value) in state.iter().enumerate() {
            for p in 0..self.planes {
                bases[i] = self.base(v, p, value);
                i += 1;
            }
        }
    }

    /// Combined state-action Q-value from precomputed plane bases, in
    /// 64-bit fixed-point with [`Q_FRAC_BITS`]` + extra_frac` fraction
    /// bits. Integer plane sums are exact; only the Mean combine rounds
    /// (to nearest, in the widened precision). The single source of truth
    /// behind [`q`](QvStore::q) and the SARSA TD error.
    #[inline]
    fn q_fp_from_bases(&self, bases: &[usize], action: usize, extra_frac: u32) -> i64 {
        let vaults = bases.chunks_exact(self.planes).map(|planes| {
            planes
                .iter()
                .map(|&base| self.table[base + action] as i64)
                .sum::<i64>()
        });
        match self.combine {
            VaultCombine::Max => vaults.max().expect("at least one vault") << extra_frac,
            VaultCombine::Mean => {
                let mut sum = 0i64;
                let mut n = 0i64;
                for v in vaults {
                    sum += v;
                    n += 1;
                }
                div_round(sum << extra_frac, n)
            }
        }
    }

    /// Feature-action Q-value: the sum of plane partials (Fig. 5(b)).
    /// Exact: every Q8.7 plane sum is representable in `f32`.
    pub fn feature_q(&self, vault: usize, value: u64, action: usize) -> f32 {
        let sum: i32 = (0..self.planes)
            .map(|p| self.cell(vault, p, value, action) as i32)
            .sum();
        sum as f32 / Q_ONE as f32
    }

    /// State-action Q-value: max over vaults (Eqn. 3), or the mean when
    /// the configuration selects the averaging ablation. A float window
    /// onto the fixed-point state (exact for Max; Mean rounds once).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of vaults.
    pub fn q(&self, state: &[u64], action: usize) -> f32 {
        self.with_bases(state, |bases| {
            self.q_fp_from_bases(bases, action, 0) as f32 / Q_ONE as f32
        })
    }

    /// Q-values of every action for `state` (one pipelined search, Fig. 6),
    /// collected into a fresh `Vec`. On per-demand paths prefer
    /// [`argmax`](QvStore::argmax), which stays in integer arithmetic and
    /// allocates nothing.
    pub fn q_row(&self, state: &[u64]) -> Vec<f32> {
        let mut row = Vec::new();
        self.q_row_into(state, &mut row);
        row
    }

    /// Writes the Q-values of every action for `state` into `row`
    /// (cleared and refilled), so repeated introspection can reuse one
    /// buffer instead of allocating a fresh `Vec` per lookup.
    pub fn q_row_into(&self, state: &[u64], row: &mut Vec<f32>) {
        row.clear();
        self.with_bases(state, |bases| {
            row.extend(
                (0..self.actions).map(|a| self.q_fp_from_bases(bases, a, 0) as f32 / Q_ONE as f32),
            );
        });
    }

    /// Combined biased-unsigned Q-value of one action: the scalar
    /// reference for [`argmax_from_bases`](QvStore::argmax_from_bases)'s
    /// SWAR lanes and its tail path. Biasing each plane partial by
    /// `+0x8000` adds the same `planes * 0x8000` constant to every
    /// action's vault sum, so biased values order exactly like signed
    /// ones.
    #[inline]
    fn combined_biased(&self, bases: &[usize], action: usize) -> u64 {
        let mut comb = 0u64;
        for vault in bases.chunks_exact(self.planes) {
            let mut sum = 0u64;
            for &base in vault {
                sum += (self.table[base + action] as u16 ^ 0x8000) as u64;
            }
            comb = match self.combine {
                VaultCombine::Max => comb.max(sum),
                VaultCombine::Mean => comb + sum,
            };
        }
        comb
    }

    /// Integer argmax over precomputed bases — no float is ever
    /// materialized. On x86-64 with AVX2 (checked once at construction)
    /// each 16-action group is scored with vector loads, widening adds
    /// and a per-lane vault max; everywhere else a portable SWAR walk
    /// packs four `i16` cells per `u64` word and compares biased-unsigned
    /// lanes. For Mean combine the (unnormalized) vault-sum total is
    /// compared instead of the mean; both order identically. Ties break
    /// toward the lowest action index on every path.
    fn argmax_from_bases(&self, bases: &[usize]) -> usize {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2 && self.actions >= 16 {
            let groups = self.actions / 16;
            // Safety: AVX2 support was verified when the store was built.
            let (mut best_a, mut best_v) = unsafe { self.argmax_avx2(bases, groups) };
            // Scalar tail for action counts not divisible by 16 (the
            // 127-way unpruned list), unbiased into the signed domain the
            // vector path compares in.
            let bias = match self.combine {
                VaultCombine::Max => self.planes as i64,
                VaultCombine::Mean => (self.vaults * self.planes) as i64,
            } * 0x8000;
            for a in groups * 16..self.actions {
                let v = self.combined_biased(bases, a) as i64 - bias;
                if v > best_v {
                    best_v = v;
                    best_a = a;
                }
            }
            return best_a;
        }
        // Two scratch tiers keep the accumulator memset proportionate: the
        // paper's 16-action list needs 16 words, the 127-way full list 124.
        let blocks = self.actions / 4;
        let (mut best_a, mut best_v) = if 4 * blocks <= 32 {
            self.argmax_blocks::<32>(bases, blocks)
        } else {
            self.argmax_blocks::<INLINE_BLOCK_WORDS>(bases, blocks)
        };
        // Scalar tail for action counts not divisible by four, in the same
        // biased domain.
        for a in blocks * 4..self.actions {
            let v = self.combined_biased(bases, a);
            if v > best_v {
                best_v = v;
                best_a = a;
            }
        }
        best_a
    }

    /// AVX2 argmax kernel: actions are walked 16 at a time; each
    /// `(vault, plane)` row contributes one 256-bit load whose `i16`
    /// lanes are sign-extended and accumulated into two 8×`i32` vault
    /// sums, vaults combine with `vpmaxsd` (or add, for Mean), and the
    /// group winner falls out of a branch-free horizontal max and
    /// sign-mask index pick. Exact same ordering semantics as the SWAR
    /// path: `i32` sums
    /// cannot overflow (`vaults * planes < 2^15` is asserted at
    /// construction) and strict `>` keeps the lowest-index tie-break.
    /// Covers actions `0..16 * groups`; the caller handles the tail.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn argmax_avx2(&self, bases: &[usize], groups: usize) -> (usize, i64) {
        use std::arch::x86_64::*;
        let mean = matches!(self.combine, VaultCombine::Mean);
        let table = self.table.as_ptr();
        let mut best_a = 0usize;
        let mut best_v = i64::MIN;
        for g in 0..groups {
            let off = g * 16;
            let mut comb_lo = _mm256_setzero_si256();
            let mut comb_hi = _mm256_setzero_si256();
            for (vi, vault) in bases.chunks_exact(self.planes).enumerate() {
                let mut lo = _mm256_setzero_si256();
                let mut hi = _mm256_setzero_si256();
                for &base in vault {
                    // Safety: every base row holds `actions >= off + 16`
                    // cells, so the 32-byte load stays inside `table`.
                    debug_assert!(base + off + 16 <= self.table.len());
                    let w = _mm256_loadu_si256(table.add(base + off) as *const __m256i);
                    lo = _mm256_add_epi32(lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(w)));
                    hi = _mm256_add_epi32(
                        hi,
                        _mm256_cvtepi16_epi32(_mm256_extracti128_si256::<1>(w)),
                    );
                }
                if vi == 0 {
                    comb_lo = lo;
                    comb_hi = hi;
                } else if mean {
                    comb_lo = _mm256_add_epi32(comb_lo, lo);
                    comb_hi = _mm256_add_epi32(comb_hi, hi);
                } else {
                    comb_lo = _mm256_max_epi32(comb_lo, lo);
                    comb_hi = _mm256_max_epi32(comb_hi, hi);
                }
            }
            // Horizontal winner of the group, branch-free: reduce the 16
            // lanes to a broadcast max, then pick the lowest lane equal to
            // it via a sign-bit mask (lane order == action order, so
            // `trailing_zeros` is the lowest-action tie-break).
            let mut m = _mm256_max_epi32(comb_lo, comb_hi);
            m = _mm256_max_epi32(m, _mm256_permute2x128_si256::<0x01>(m, m));
            m = _mm256_max_epi32(m, _mm256_shuffle_epi32::<0b0100_1110>(m));
            m = _mm256_max_epi32(m, _mm256_shuffle_epi32::<0b1011_0001>(m));
            let mask = (_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(comb_lo, m)))
                as u32)
                | ((_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(comb_hi, m)))
                    as u32)
                    << 8);
            let gmax = i64::from(_mm256_extract_epi32::<0>(m));
            if gmax > best_v {
                best_v = gmax;
                best_a = off + mask.trailing_zeros() as usize;
            }
        }
        (best_a, best_v)
    }

    /// The portable SWAR block walk of [`argmax_from_bases`]: each
    /// `(vault, plane)` row is one contiguous slice consumed with
    /// `chunks_exact(4)` — a bounds-check-free streaming pass the
    /// compiler can vectorize — accumulating into per-vault lane sums
    /// that then fold into the combined accumulators. Scratch is laid
    /// out as all even-lane words then all odd-lane words (sequential
    /// streams). Returns the best `(action, biased value)` among actions
    /// `0..4 * blocks`.
    fn argmax_blocks<const W: usize>(&self, bases: &[usize], blocks: usize) -> (usize, u64) {
        with_scratch::<u64, W, _>(4 * blocks, |acc| {
            let (comb, vacc) = acc.split_at_mut(2 * blocks);
            for (vi, vault) in bases.chunks_exact(self.planes).enumerate() {
                let (v02, v13) = vacc.split_at_mut(blocks);
                // First plane initializes the vault sums, later planes
                // add — one streaming pass per row.
                for (pi, &base) in vault.iter().enumerate() {
                    let row = &self.table[base..base + blocks * 4];
                    let lanes = row.chunks_exact(4).map(|c| {
                        let w = pack4(c) ^ LANE_BIAS;
                        (w & EVEN_LANES, (w >> 16) & EVEN_LANES)
                    });
                    if pi == 0 {
                        for ((w02, w13), (s02, s13)) in
                            lanes.zip(v02.iter_mut().zip(v13.iter_mut()))
                        {
                            *s02 = w02;
                            *s13 = w13;
                        }
                    } else {
                        for ((w02, w13), (s02, s13)) in
                            lanes.zip(v02.iter_mut().zip(v13.iter_mut()))
                        {
                            *s02 += w02;
                            *s13 += w13;
                        }
                    }
                }
                // Fold this vault into the combined accumulators with a
                // branchless lane max (or add, for Mean).
                let (c02, c13) = comb.split_at_mut(blocks);
                if vi == 0 {
                    c02.copy_from_slice(v02);
                    c13.copy_from_slice(v13);
                } else {
                    match self.combine {
                        VaultCombine::Max => {
                            for (c, &s) in c02.iter_mut().zip(v02.iter()) {
                                *c = max_u32x2(*c, s);
                            }
                            for (c, &s) in c13.iter_mut().zip(v13.iter()) {
                                *c = max_u32x2(*c, s);
                            }
                        }
                        VaultCombine::Mean => {
                            for (c, &s) in c02.iter_mut().zip(v02.iter()) {
                                *c += s;
                            }
                            for (c, &s) in c13.iter_mut().zip(v13.iter()) {
                                *c += s;
                            }
                        }
                    }
                }
            }
            // Unpack lanes in action order; strict `>` keeps the
            // lowest-index tie-break of the sequential scan. Starting the
            // running best at 0 is exact: biased sums are non-negative,
            // and 0 is only reachable when every partial is `i16::MIN`,
            // in which case action 0 ties and wins.
            let (c02s, c13s) = comb.split_at(blocks);
            let mut best_a = 0usize;
            let mut best_v = 0u64;
            for (k, (&c02, &c13)) in c02s.iter().zip(c13s.iter()).enumerate() {
                let lanes = [c02 as u32 as u64, c13 as u32 as u64, c02 >> 32, c13 >> 32];
                for (i, &v) in lanes.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best_a = 4 * k + i;
                    }
                }
            }
            (best_a, best_v)
        })
    }

    /// The action with the maximum Q-value, with ties broken toward the
    /// lowest index (deterministic hardware behaviour). Pure integer and
    /// allocation-free for every configuration the DSE explores — this is
    /// the agent's per-demand fast path.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of vaults.
    pub fn argmax(&self, state: &[u64]) -> usize {
        self.with_bases(state, |bases| self.argmax_from_bases(bases))
    }

    /// [`QvStore::argmax`] that additionally leaves every action's Q-value
    /// in a caller-owned row buffer (resized and overwritten) — the
    /// introspection variant for harnesses that want the whole row; the
    /// selection itself still runs the integer fast path.
    pub fn argmax_with_row(&self, state: &[u64], row: &mut Vec<f32>) -> usize {
        row.clear();
        self.with_bases(state, |bases| {
            row.extend(
                (0..self.actions).map(|a| self.q_fp_from_bases(bases, a, 0) as f32 / Q_ONE as f32),
            );
            self.argmax_from_bases(bases)
        })
    }

    /// Applies the SARSA update (Algorithm 1, line 29):
    ///
    /// `Q(S1,A1) += α · (R + γ·Q(S2,A2) − Q(S1,A1))`
    ///
    /// The TD error is computed from the combined Q-values and distributed
    /// across all planes of all vaults, divided by the plane count, so each
    /// vault's feature-action Q-value moves by exactly `α·δ`.
    ///
    /// All arithmetic is 64-bit fixed-point with 16 extra fraction bits: α
    /// and γ are quantized to 1/2⁶⁵⁵³⁶ steps, products normalize with
    /// round-to-nearest shifts, and the final per-plane increment
    /// **saturates** at the `i16` range instead of wrapping. An `α/planes`
    /// below the quantization step (< 2⁻¹⁶) rounds to zero and learns
    /// nothing — see `tuning::effective_alpha`.
    // The argument list mirrors Algorithm 1's (S1, A1, R, S2, A2, α, γ)
    // tuple; bundling them into a struct would obscure the paper mapping.
    #[allow(clippy::too_many_arguments)]
    pub fn sarsa_update(
        &mut self,
        s1: &[u64],
        a1: usize,
        reward: f32,
        s2: &[u64],
        a2: usize,
        alpha: f32,
        gamma: f32,
    ) {
        // S1's plane bases serve both the Q(S1,A1) read and the update
        // write-back, so each plane is hashed once.
        assert_eq!(s1.len(), self.vaults, "state dimension mismatch");
        assert_eq!(s2.len(), self.vaults, "state dimension mismatch");
        let cells = self.vaults * self.planes;
        with_scratch::<usize, INLINE_BASES, ()>(2 * cells, |bases| {
            let (b1, b2) = bases.split_at_mut(cells);
            self.fill_bases(s1, b1);
            self.fill_bases(s2, b2);
            self.sarsa_update_prehashed(b1, a1, reward, b2, a2, alpha, gamma);
        });
    }

    /// [`QvStore::sarsa_update`] with both states' plane bases already
    /// computed (e.g. cached from the argmax that selected the action, as
    /// the agent's EQ does) — the zero-hashing fast path of the per-demand
    /// update.
    ///
    /// # Panics
    ///
    /// Panics if either bases slice was not produced for this store's
    /// geometry (`vaults * planes` entries).
    // Same (S1, A1, R, S2, A2, α, γ) tuple as `sarsa_update`, with the
    // states pre-resolved to row bases.
    #[allow(clippy::too_many_arguments)]
    pub fn sarsa_update_prehashed(
        &mut self,
        b1: &[usize],
        a1: usize,
        reward: f32,
        b2: &[usize],
        a2: usize,
        alpha: f32,
        gamma: f32,
    ) {
        const EXTRA: u32 = 16;
        assert_eq!(
            b1.len(),
            self.vaults * self.planes,
            "bases geometry mismatch"
        );
        assert_eq!(
            b2.len(),
            self.vaults * self.planes,
            "bases geometry mismatch"
        );
        let gamma_q = (gamma as f64 * (1u64 << EXTRA) as f64).round() as i64;
        let alpha_q = (alpha as f64 / self.planes as f64 * (1u64 << EXTRA) as f64).round() as i64;
        let reward_x = ((reward as f64 * Q_ONE as f64).round() as i64) << EXTRA;
        let q2_x = self.q_fp_from_bases(b2, a2, EXTRA);
        let q1_x = self.q_fp_from_bases(b1, a1, EXTRA);
        let delta_x = reward_x + round_shift(q2_x * gamma_q, EXTRA) - q1_x;
        let per_plane = round_shift(round_shift(delta_x * alpha_q, EXTRA), EXTRA);
        for &base in b1.iter() {
            let cell = &mut self.table[base + a1];
            *cell = (*cell as i64 + per_plane).clamp(i16::MIN as i64, i16::MAX as i64) as i16;
        }
        self.updates += 1;
    }

    /// Min/mean/max over every stored plane-partial Q entry, in Q-value
    /// units (raw Q8.7 entries scaled by `1/Q_ONE`).
    ///
    /// These are *per-plane partials* — a full state Q-value sums one
    /// partial per plane — but their drift over a run is exactly the
    /// learning signal the telemetry layer wants to plot, and a flat
    /// read of the table is cheap and observation-only.
    pub fn table_stats(&self) -> (f32, f32, f32) {
        let mut min = i16::MAX;
        let mut max = i16::MIN;
        let mut sum: i64 = 0;
        for &cell in &self.table {
            min = min.min(cell);
            max = max.max(cell);
            sum += cell as i64;
        }
        if self.table.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let scale = 1.0 / Q_ONE as f32;
        let mean = sum as f64 / self.table.len() as f64;
        (
            min as f32 * scale,
            (mean / Q_ONE as f64) as f32,
            max as f32 * scale,
        )
    }

    /// Total Q-value storage in bits ([`QV_ENTRY_BITS`]-bit fixed-point
    /// entries per Table 4).
    pub fn storage_bits(&self) -> u64 {
        let entries = 1u64 << self.index_bits;
        self.vaults as u64 * self.planes as u64 * entries * self.actions as u64 * QV_ENTRY_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PythiaConfig;

    fn store() -> QvStore {
        QvStore::new(&PythiaConfig::basic())
    }

    #[test]
    fn initialized_to_optimistic_q() {
        let s = store();
        let cfg = PythiaConfig::basic();
        let q = s.q(&[123, 456], 0);
        // Exactly the quantized init, within one plane-LSB-sum of the ideal.
        assert_eq!(q, cfg.q_init_quantized());
        assert!(
            (q - cfg.q_init()).abs() < cfg.planes as f32 / Q_ONE as f32,
            "q={q}, expect ~{}",
            cfg.q_init()
        );
    }

    #[test]
    fn table4_storage_is_24_kb() {
        let s = store();
        // 2 vaults x 3 planes x 128 entries x 16 actions x 16 bits = 24 KB.
        assert_eq!(s.storage_bits(), 2 * 3 * 128 * 16 * QV_ENTRY_BITS);
        assert_eq!(s.storage_bits() / 8 / 1024, 24);
    }

    #[test]
    fn sarsa_update_moves_toward_target() {
        let mut s = store();
        let s1 = vec![10u64, 20u64];
        let s2 = vec![11u64, 21u64];
        let cfg = PythiaConfig::basic();
        let q_before = s.q(&s1, 2);
        // Strong negative reward repeatedly applied must lower Q(S1, 2).
        for _ in 0..1000 {
            s.sarsa_update(&s1, 2, -14.0, &s2, 2, 0.1, cfg.gamma);
        }
        let q_after = s.q(&s1, 2);
        assert!(q_after < q_before, "{q_after} !< {q_before}");
        assert_eq!(s.updates(), 1000);
    }

    #[test]
    fn update_converges_to_fixed_point() {
        // With S2 = S1 and A2 = A1, the fixed point is R/(1-γ).
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![42u64, 77u64];
        for _ in 0..20_000 {
            s.sarsa_update(&st, 5, 10.0, &st, 5, 0.05, cfg.gamma);
        }
        let expect = 10.0 / (1.0 - cfg.gamma);
        let got = s.q(&st, 5);
        // Fixed-point updates dead-zone once the per-plane increment
        // α·δ/planes rounds below half an LSB, which bounds the resting
        // point: |Q - R/(1-γ)| ≤ (LSB/2) / (α/planes) / (1-γ).
        let dead_zone = (0.5 / Q_ONE as f32) / (0.05 / 3.0) / (1.0 - cfg.gamma);
        assert!(
            (got - expect).abs() <= dead_zone + 0.01,
            "got {got}, expect {expect} ± {dead_zone}"
        );
    }

    #[test]
    fn argmax_prefers_reinforced_over_punished() {
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![5u64, 6u64];
        // Punish every action except 7, which keeps earning the maximum
        // reward (so it stays at the optimistic init's fixpoint).
        for _ in 0..500 {
            for a in 0..cfg.actions.len() {
                let r = if a == 7 { 20.0 } else { -14.0 };
                s.sarsa_update(&st, a, r, &st, a, 0.05, cfg.gamma);
            }
        }
        assert_eq!(s.argmax(&st), 7);
        assert!(s.q(&st, 7) > s.q(&st, 3) + 10.0);
    }

    #[test]
    fn tile_coding_generalizes_nearby_values() {
        // Values 100 and 101 share higher-plane tiles (after shifting),
        // so training value 100 must move value 101's Q a little -- but less
        // than value 100's own Q.
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let v_trained = vec![100u64, 0];
        let v_near = [101u64, 0];
        let v_far = [9_999_999u64, 0];
        let q0_near = s.feature_q(0, v_near[0], 4);
        let q0_far = s.feature_q(0, v_far[0], 4);
        for _ in 0..2000 {
            s.sarsa_update(&v_trained, 4, -14.0, &v_trained, 4, 0.05, cfg.gamma);
        }
        let moved_near = (s.feature_q(0, v_near[0], 4) - q0_near).abs();
        let moved_far = (s.feature_q(0, v_far[0], 4) - q0_far).abs();
        assert!(
            moved_near > moved_far,
            "nearby values should share tiles: near {moved_near}, far {moved_far}"
        );
    }

    #[test]
    fn max_combination_over_vaults() {
        // Train only vault 0's feature value; vault 1 keeps the optimistic
        // init, so the max should remain at the optimistic value.
        let mut s = store();
        let cfg = PythiaConfig::basic();
        let st = vec![50u64, 60u64];
        // Apply updates that lower both vaults' values... q() uses max, so
        // verify q >= each individual vault's value.
        for _ in 0..100 {
            s.sarsa_update(&st, 1, -12.0, &st, 1, 0.05, cfg.gamma);
        }
        let q = s.q(&st, 1);
        let f0 = s.feature_q(0, st[0], 1);
        let f1 = s.feature_q(1, st[1], 1);
        assert_eq!(q, f0.max(f1));
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn dimension_mismatch_panics() {
        let s = store();
        let _ = s.q(&[1], 0);
    }

    #[test]
    fn q_row_length_matches_actions() {
        let s = store();
        assert_eq!(s.q_row(&[1, 2]).len(), PythiaConfig::basic().actions.len());
    }

    #[test]
    fn q_row_into_reuses_the_buffer_and_matches_q_row() {
        let mut s = store();
        let cfg = PythiaConfig::basic();
        for a in 0..cfg.actions.len() {
            let r = if a == 3 { 12.0 } else { -3.0 };
            s.sarsa_update(&[9, 9], a, r, &[9, 9], a, 0.05, cfg.gamma);
        }
        let mut buf = vec![0.0f32; 99]; // stale content must be cleared
        s.q_row_into(&[9, 9], &mut buf);
        assert_eq!(buf, s.q_row(&[9, 9]));
        assert_eq!(buf.len(), cfg.actions.len());
        // argmax agrees with the row without allocating.
        let best = s.argmax(&[9, 9]);
        let row = s.q_row(&[9, 9]);
        assert!(row.iter().all(|&q| q <= row[best]));
    }

    #[test]
    fn argmax_with_row_matches_plain_argmax() {
        let mut s = store();
        let cfg = PythiaConfig::basic();
        for i in 0..500u64 {
            let a = (i % 16) as usize;
            let r = ((i % 29) as f32) - 14.0;
            s.sarsa_update(
                &[i, i ^ 3],
                a,
                r,
                &[i + 1, i ^ 5],
                (a + 1) % 16,
                0.1,
                cfg.gamma,
            );
        }
        let mut row = Vec::new();
        for probe in 0..200u64 {
            let st = [probe, probe ^ 9];
            let via_row = s.argmax_with_row(&st, &mut row);
            assert_eq!(via_row, s.argmax(&st));
            assert_eq!(row.len(), cfg.actions.len());
            assert_eq!(row[via_row], s.q(&st, via_row));
        }
    }

    #[test]
    fn argmax_matches_float_row_scan_on_odd_action_counts() {
        // 7 actions exercises both the SWAR block and the scalar tail.
        let mut cfg = PythiaConfig::basic();
        cfg.actions = vec![0, 1, 2, 3, -1, -2, -3];
        let mut s = QvStore::new(&cfg);
        for i in 0..2000u64 {
            let a = (i % 7) as usize;
            let r = ((i * 13 % 31) as f32) - 15.0;
            s.sarsa_update(
                &[i % 50, i % 31],
                a,
                r,
                &[i % 50 + 1, i % 31],
                a,
                0.2,
                cfg.gamma,
            );
        }
        for probe in 0..100u64 {
            let st = [probe % 50, probe % 31];
            let row = s.q_row(&st);
            let mut best = 0;
            for (a, &q) in row.iter().enumerate().skip(1) {
                if q > row[best] {
                    best = a;
                }
            }
            assert_eq!(s.argmax(&st), best, "row={row:?}");
        }
    }

    #[test]
    fn saturation_clamps_instead_of_wrapping() {
        let mut s = store();
        let st = vec![1u64, 2u64];
        // Hammer one action with an enormous α·δ: partials must pin at the
        // i16 ceiling, and the combined Q must stay at the clamped maximum
        // (wrapping would send it hugely negative).
        let cap = PythiaConfig::basic().planes as f32 * i16::MAX as f32 / Q_ONE as f32;
        for _ in 0..10_000 {
            s.sarsa_update(&st, 0, 1.0e6, &st, 0, 1.0, 0.0);
            let q = s.q(&st, 0);
            assert!(q > 0.0 && q <= cap, "q={q} escaped [0, {cap}]");
        }
        assert_eq!(s.q(&st, 0), cap);
        // And the mirror image for the floor.
        for _ in 0..10_000 {
            s.sarsa_update(&st, 0, -1.0e6, &st, 0, 1.0, 0.0);
        }
        let floor = PythiaConfig::basic().planes as f32 * i16::MIN as f32 / Q_ONE as f32;
        assert_eq!(s.q(&st, 0), floor);
    }

    #[test]
    fn quantize_rounds_to_nearest_and_saturates() {
        assert_eq!(quantize(0.0), 0.0);
        assert_eq!(quantize(1.0), 1.0);
        assert_eq!(quantize(0.004), 0.0078125); // rounds up to one LSB
        assert_eq!(quantize(0.003), 0.0); // rounds down to zero
        assert_eq!(quantize(-0.004), -0.0078125);
        assert_eq!(quantize(1.0e9), i16::MAX as f32 / Q_ONE as f32);
        assert_eq!(quantize(-1.0e9), i16::MIN as f32 / Q_ONE as f32);
    }
}
