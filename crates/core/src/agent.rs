//! The Pythia RL agent: ε-greedy action selection over the QVStore, reward
//! assignment through the EQ, and the SARSA update on EQ eviction —
//! Algorithm 1 of the paper, implemented behind the simulator's
//! [`Prefetcher`] trait.
//!
//! # Lifecycle of one demand access
//!
//! 1. [`Pythia::on_demand`] extracts the state vector from the access
//!    stream ([`FeatureContext`]), asks the [`QvStore`] for the
//!    argmax action (or explores with probability ε), and — unless the
//!    chosen action is the no-prefetch offset 0 — emits one
//!    [`PrefetchRequest`] inside the triggering page.
//! 2. The (state, action) pair enters the [`EvaluationQueue`]. Actions that
//!    generated no prefetch are rewarded immediately (R_NP / R_CL, graded
//!    by the bandwidth usage in [`SystemFeedback`]); prefetching actions
//!    wait for their outcome.
//! 3. [`Pythia::on_fill`] / later demand hits decide accurate-timely vs.
//!    accurate-late; EQ eviction assigns the final reward and performs the
//!    SARSA update against the current EQ head (Algorithm 1, lines 23–29).
//!
//! Introspection hooks used by the case-study harnesses:
//! [`Pythia::qvstore`], [`Pythia::probe_feature_q`],
//! [`Pythia::action_histogram`] and [`Pythia::rewards_seen`].
//!
//! ```rust
//! use pythia_core::{Pythia, PythiaConfig};
//! use pythia_sim::prefetch::{DemandAccess, Prefetcher, SystemFeedback};
//!
//! let mut agent = Pythia::new(PythiaConfig::tuned().with_seed(7));
//! let mut issued = 0;
//! for i in 0..1_000u64 {
//!     let addr = 0x4000_0000 + i * 64;
//!     let access = DemandAccess {
//!         pc: 0x400b00,
//!         addr,
//!         line: addr >> 6,
//!         is_write: false,
//!         cycle: i * 40,
//!         missed: true,
//!     };
//!     issued += agent.on_demand(&access, &SystemFeedback::idle()).len();
//! }
//! assert!(issued > 0, "a streaming PC earns prefetches");
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pythia_obs::spans::{NoopSectioner, Sectioner};
use pythia_sim::addr;
use pythia_sim::prefetch::{
    AgentProbe, DemandAccess, FillEvent, PrefetchRequest, Prefetcher, SystemFeedback,
};
use pythia_sim::stats::PrefetcherStats;

use crate::config::PythiaConfig;
use crate::eq::{EqEntry, EvaluationQueue};
use crate::features::FeatureContext;
use crate::hw_model;
use crate::qvstore::QvStore;

/// Per-reward-level counters, useful for understanding what the agent is
/// being taught (and for the case-study experiments).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RewardCounters {
    /// R_AT assignments.
    pub accurate_timely: u64,
    /// R_AL assignments.
    pub accurate_late: u64,
    /// R_CL assignments.
    pub coverage_loss: u64,
    /// R_IN^H/L assignments.
    pub inaccurate: u64,
    /// R_NP^H/L assignments.
    pub no_prefetch: u64,
}

/// The Pythia prefetcher.
#[derive(Debug)]
pub struct Pythia {
    config: PythiaConfig,
    qv: QvStore,
    eq: EvaluationQueue,
    ctx: FeatureContext,
    rng: StdRng,
    stats: PrefetcherStats,
    rewards_seen: RewardCounters,
    action_histogram: Vec<u64>,
    /// The current demand's state vector, reused every step: once its
    /// plane bases are hashed the state itself is dead, so it never
    /// travels through the EQ.
    state_scratch: Vec<u64>,
    /// Recycled plane-bases buffers: each state is hashed exactly once
    /// per demand, and the bases ride in the EQ entry until the SARSA
    /// update consumes them, whereupon the allocation returns here.
    bases_pool: Vec<Vec<usize>>,
}

impl Pythia {
    /// Creates a Pythia agent from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PythiaConfig::validate`].
    pub fn new(config: PythiaConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid Pythia configuration: {e}");
        }
        let qv = QvStore::new(&config);
        let eq = EvaluationQueue::new(config.eq_size);
        let rng = StdRng::seed_from_u64(config.seed);
        let n_actions = config.actions.len();
        Self {
            config,
            qv,
            eq,
            ctx: FeatureContext::new(),
            rng,
            stats: PrefetcherStats::default(),
            rewards_seen: RewardCounters::default(),
            action_histogram: vec![0; n_actions],
            state_scratch: Vec::new(),
            bases_pool: Vec::new(),
        }
    }

    /// A Pythia with the Table 2 basic configuration.
    pub fn basic() -> Self {
        Self::new(PythiaConfig::basic())
    }

    /// The active configuration (read-only; build a new agent to change it,
    /// as reconfiguring the silicon would reset learned state too).
    pub fn config(&self) -> &PythiaConfig {
        &self.config
    }

    /// Read access to the QVStore, for introspection experiments (Fig. 13).
    pub fn qvstore(&self) -> &QvStore {
        &self.qv
    }

    /// Counters of how often each reward level was assigned.
    pub fn rewards_seen(&self) -> RewardCounters {
        self.rewards_seen
    }

    /// Histogram of selected actions (offset selections, §6.5).
    pub fn action_histogram(&self) -> &[u64] {
        &self.action_histogram
    }

    /// Q-values of every action for the feature value `value` in vault
    /// `vault` — the per-feature Q curve of the Fig. 13 case study.
    pub fn probe_feature_q(&self, vault: usize, value: u64) -> Vec<f32> {
        (0..self.config.actions.len())
            .map(|a| self.qv.feature_q(vault, value, a))
            .collect()
    }

    fn assign_insertion_reward(
        &mut self,
        entry: &mut EqEntry,
        offset: i32,
        feedback: &SystemFeedback,
    ) {
        let r = &self.config.rewards;
        if offset == 0 {
            entry.reward = Some(if feedback.bandwidth_high {
                r.no_prefetch_high_bw
            } else {
                r.no_prefetch_low_bw
            });
            self.rewards_seen.no_prefetch += 1;
        } else {
            // Out-of-page action: loss of coverage.
            entry.reward = Some(r.coverage_loss);
            self.rewards_seen.coverage_loss += 1;
        }
    }

    /// One demand step with per-phase span sectioning — the hot path of
    /// [`Prefetcher::on_demand_into`], generic over a
    /// [`Sectioner`] so the uninstrumented call (via
    /// [`NoopSectioner`]) monomorphizes to the exact bare code while
    /// `pythia-cli bench --sections` can thread a
    /// [`pythia_obs::spans::SpanTimer`] through the same body.
    ///
    /// Section names: `feature_extract`, `eq_probe`, `argmax`,
    /// `eq_insert`, `sarsa`.
    pub fn on_demand_sectioned<S: Sectioner>(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
        sections: &mut S,
    ) {
        let r = self.config.rewards;

        // (1) Extract the state vector (into a recycled buffer), hash its
        // Q-table plane bases exactly once, and kick off software
        // prefetches of those rows: the EQ probe below is independent work
        // that overlaps the table loads of the upcoming argmax. The bases
        // ride in the EQ entry so the eviction-time SARSA update never
        // re-hashes a state.
        sections.enter("feature_extract");
        self.ctx.update(access);
        let mut state = std::mem::take(&mut self.state_scratch);
        self.ctx.state_into(&self.config.features, &mut state);
        let mut bases = self.bases_pool.pop().unwrap_or_default();
        self.qv.state_bases(&state, &mut bases);
        self.state_scratch = state;
        self.qv.prefetch_rows(&bases);
        sections.exit("feature_extract");

        // (2) Reward any earlier action whose prefetch this demand confirms.
        sections.enter("eq_probe");
        let hit = if self.config.graded_timeliness {
            self.eq.reward_demand_hit_graded(
                access.line,
                access.cycle,
                r.accurate_timely,
                r.accurate_late,
            )
        } else {
            self.eq.reward_demand_hit(
                access.line,
                access.cycle,
                r.accurate_timely,
                r.accurate_late,
            )
        };
        match hit {
            crate::eq::DemandMatch::AccurateTimely => self.rewards_seen.accurate_timely += 1,
            crate::eq::DemandMatch::AccurateLate => self.rewards_seen.accurate_late += 1,
            crate::eq::DemandMatch::Miss => {}
        }
        sections.exit("eq_probe");

        // (3) ε-greedy action selection (the integer-only argmax path).
        sections.enter("argmax");
        let n = self.config.actions.len();
        let action = if self.rng.gen::<f32>() <= self.config.epsilon {
            self.rng.gen_range(0..n)
        } else {
            self.qv.argmax_prehashed(&bases)
        };
        self.action_histogram[action] += 1;
        let offset = self.config.actions[action];
        sections.exit("argmax");

        // (4) Generate the prefetch and the EQ entry. The entry carries
        // the plane bases, not the state: that is all the eviction-time
        // SARSA update reads.
        sections.enter("eq_insert");
        let mut entry = EqEntry::new(Vec::new(), action, None, access.cycle);
        entry.bases = bases;
        if offset == 0 {
            self.assign_insertion_reward(&mut entry, 0, feedback);
        } else if addr::offset_stays_in_page(access.line, offset) {
            let target = addr::apply_offset(access.line, offset);
            entry.prefetch_line = Some(target);
            out.push(PrefetchRequest::to_l2(target));
            self.stats.issued += 1;
        } else {
            self.assign_insertion_reward(&mut entry, offset, feedback);
        }

        // (5) Insert into EQ; on eviction, finalize the reward and apply the
        // SARSA update against the new EQ head.
        let evicted = self.eq.insert(entry);
        sections.exit("eq_insert");
        if let Some(mut evicted) = evicted {
            if evicted.reward.is_none() {
                evicted.reward = Some(if feedback.bandwidth_high {
                    r.inaccurate_high_bw
                } else {
                    r.inaccurate_low_bw
                });
                self.rewards_seen.inaccurate += 1;
            }
            sections.enter("sarsa");
            let head = self.eq.head().expect("EQ non-empty after insert");
            self.qv.sarsa_update_prehashed(
                &evicted.bases,
                evicted.action,
                evicted.reward.expect("assigned above") as f32,
                &head.bases,
                head.action,
                self.config.alpha,
                self.config.gamma,
            );
            sections.exit("sarsa");
            // Recycle the evicted entry's bases allocation.
            let mut bbuf = evicted.bases;
            bbuf.clear();
            self.bases_pool.push(bbuf);
        }

        // (6) Warm the next eviction's SARSA operands: the two oldest
        // entries' Q-cells are known a full step ahead, so their loads can
        // overlap everything the next demand does before its own update.
        if self.eq.is_full() {
            if let (Some(e1), Some(e2)) = self.eq.front_two() {
                self.qv.prefetch_cells(&e1.bases, e1.action);
                self.qv.prefetch_cells(&e2.bases, e2.action);
            }
        }
    }
}

impl Prefetcher for Pythia {
    fn name(&self) -> &str {
        "pythia"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        // The no-op sectioner monomorphizes this call to the exact
        // pre-sectioning hot path.
        self.on_demand_sectioned(access, feedback, out, &mut NoopSectioner);
    }

    fn on_fill(&mut self, event: &FillEvent) {
        if event.prefetched {
            self.eq.mark_filled(event.line, event.ready_at);
        }
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        hw_model::storage(&self.config).total_bits()
    }

    fn telemetry_probe(&self) -> Option<AgentProbe> {
        let (q_min, q_mean, q_max) = self.qv.table_stats();
        Some(AgentProbe {
            q_min,
            q_mean,
            q_max,
            eq_len: self.eq.len(),
            eq_capacity: self.config.eq_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pc: u64, addr: u64, cycle: u64) -> DemandAccess {
        DemandAccess {
            pc,
            addr,
            line: addr::line_of(addr),
            is_write: false,
            cycle,
            missed: true,
        }
    }

    fn low_bw() -> SystemFeedback {
        SystemFeedback {
            bandwidth_high: false,
            bandwidth_utilization_pct: 5,
        }
    }

    #[test]
    fn takes_at_most_one_action_per_demand() {
        let mut p = Pythia::basic();
        for i in 0..1000u64 {
            let out = p.on_demand(&access(0x400000, i * 64, i), &low_bw());
            assert!(out.len() <= 1);
        }
    }

    #[test]
    fn learns_simple_stream_toward_useful_offsets() {
        let mut p = Pythia::new(PythiaConfig::tuned());
        // Long +1 stream with instant fills: every positive in-page offset
        // is accurate and timely, while negative offsets and no-prefetch
        // earn punishments. After training, positive offsets must dominate
        // selections and accurate rewards must dominate the counters.
        for i in 0..200_000u64 {
            let a = access(0x400000, (i % 60) * 64 + (i / 60) * 4096, i * 10);
            let out = p.on_demand(&a, &low_bw());
            for req in out {
                p.on_fill(&FillEvent {
                    line: req.line,
                    ready_at: i * 10 + 1,
                    prefetched: true,
                });
            }
        }
        let hist = p.action_histogram();
        let total: u64 = hist.iter().sum();
        let positive: u64 = p
            .config()
            .actions
            .iter()
            .zip(hist)
            .filter(|(&a, _)| a > 0)
            .map(|(_, &h)| h)
            .sum();
        assert!(
            positive * 10 > total * 8,
            "positive offsets should dominate on a stream: {positive}/{total} hist={hist:?}"
        );
        let r = p.rewards_seen();
        assert!(
            r.accurate_timely > r.inaccurate && r.accurate_timely > r.no_prefetch,
            "accurate-timely should dominate: {r:?}"
        );
    }

    #[test]
    fn no_prefetch_reward_assigned_immediately() {
        let mut cfg = PythiaConfig::basic();
        cfg.actions = vec![0]; // only no-prefetch available
        let mut p = Pythia::new(cfg);
        for i in 0..10u64 {
            let out = p.on_demand(&access(0x400000, i * 64, i), &low_bw());
            assert!(out.is_empty());
        }
        assert_eq!(p.rewards_seen().no_prefetch, 10);
    }

    #[test]
    fn out_of_page_actions_suppressed_and_penalized() {
        let mut cfg = PythiaConfig::basic();
        cfg.actions = vec![32];
        cfg.epsilon = 0.0;
        let mut p = Pythia::new(cfg);
        // Demand at offset 40: +32 crosses the page -> no request, R_CL.
        let out = p.on_demand(&access(0x400000, 40 * 64, 0), &low_bw());
        assert!(out.is_empty());
        assert_eq!(p.rewards_seen().coverage_loss, 1);
        // Demand at offset 0: +32 stays in page -> request issued.
        let out = p.on_demand(&access(0x400000, 4096, 1), &low_bw());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sarsa_updates_start_after_eq_fills() {
        let mut cfg = PythiaConfig::basic();
        cfg.eq_size = 8;
        let mut p = Pythia::new(cfg);
        for i in 0..8u64 {
            p.on_demand(&access(0x400000, i * 64, i), &low_bw());
        }
        assert_eq!(p.qvstore().updates(), 0, "no eviction yet");
        p.on_demand(&access(0x400000, 9 * 64, 9), &low_bw());
        assert_eq!(p.qvstore().updates(), 1, "first eviction triggers SARSA");
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let run = || {
            let mut p = Pythia::basic();
            let mut issued = Vec::new();
            for i in 0..5_000u64 {
                for r in p.on_demand(&access(0x400000, (i % 64) * 64, i), &low_bw()) {
                    issued.push(r.line);
                }
            }
            issued
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bandwidth_high_switches_reward_variant() {
        // With only the no-prefetch action, rewards differ by bandwidth
        // state; verify via reward counters and Q movement direction.
        let mut cfg = PythiaConfig::basic();
        cfg.actions = vec![0];
        cfg.eq_size = 1;
        cfg.alpha = 0.5;
        let mut p_low = Pythia::new(cfg.clone());
        let mut p_high = Pythia::new(cfg);
        let high = SystemFeedback {
            bandwidth_high: true,
            bandwidth_utilization_pct: 90,
        };
        for i in 0..2_000u64 {
            p_low.on_demand(&access(0x400000, (i % 8) * 64, i), &low_bw());
            p_high.on_demand(&access(0x400000, (i % 8) * 64, i), &high);
        }
        // Basic rewards: R_NP^H (-2) > R_NP^L (-4), so the high-bandwidth
        // agent's Q for action 0 should settle higher.
        let s_low = p_low.probe_feature_q(0, 0)[0];
        let _ = s_low; // probing a raw value; compare via rewards_seen instead
        assert_eq!(p_low.rewards_seen().no_prefetch, 2_000);
        assert_eq!(p_high.rewards_seen().no_prefetch, 2_000);
    }

    #[test]
    #[should_panic(expected = "invalid Pythia configuration")]
    fn invalid_config_rejected() {
        let mut cfg = PythiaConfig::basic();
        cfg.actions.clear();
        let _ = Pythia::new(cfg);
    }

    #[test]
    fn storage_matches_table4() {
        let p = Pythia::basic();
        let kb = p.storage_bits() as f64 / 8192.0;
        assert!((kb - 25.5).abs() < 0.75, "Table 4 says 25.5 KB, got {kb}");
    }
}
