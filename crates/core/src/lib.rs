//! # pythia-core
//!
//! Rust implementation of **Pythia**, the reinforcement-learning hardware
//! prefetcher of Bera et al., *"Pythia: A Customizable Hardware Prefetching
//! Framework Using Online Reinforcement Learning"*, MICRO 2021.
//!
//! Pythia formulates prefetching as an RL problem (§3 of the paper):
//!
//! * **State** — a k-dimensional vector of program features, each composed
//!   of a control-flow and a data-flow component ([`features`], Table 3).
//! * **Action** — a prefetch offset from a pruned candidate list
//!   ([`config::PythiaConfig::actions`], Table 2); offset 0 means "do not
//!   prefetch".
//! * **Reward** — discrete levels evaluating accuracy, timeliness and
//!   *memory bandwidth usage* ([`config::RewardLevels`]):
//!   R_AT, R_AL, R_CL, R_IN^H/L, R_NP^H/L.
//!
//! Q-values live in the hierarchical, table-based [`qvstore::QvStore`]
//! (one *vault* per feature, each vault a set of tile-coded *planes*,
//! Fig. 5), and recent actions wait for their rewards in the FIFO
//! [`eq::EvaluationQueue`] (Fig. 4). On every EQ eviction the evicted
//! state-action pair receives a SARSA update against the current EQ head
//! (Algorithm 1, lines 23–29).
//!
//! The whole design is runtime-customizable through [`config::PythiaConfig`]
//! — the paper's "configuration registers": feature selection, action list,
//! reward values and hyperparameters can all be changed without touching the
//! code, which is what §6.6 exploits ([`config::PythiaConfig::strict`]).
//!
//! Supporting modules: [`tuning`] implements the §4.3 automated
//! design-space exploration procedures, [`hw_model`] the Table 4/7/8
//! storage/area/power estimates, and [`pipeline`] the §4.2.2 pipelined
//! QVStore search latency model. The repository-level `ARCHITECTURE.md`
//! maps every paper section and figure to the crate/module implementing it.
//!
//! # Example
//!
//! ```rust
//! use pythia_core::{Pythia, PythiaConfig};
//! use pythia_sim::prefetch::{DemandAccess, Prefetcher, SystemFeedback};
//!
//! let mut pythia = Pythia::new(PythiaConfig::basic());
//! let access = DemandAccess {
//!     pc: 0x400000,
//!     addr: 0xdead_0000,
//!     line: 0xdead_0000u64 >> 6,
//!     is_write: false,
//!     cycle: 0,
//!     missed: true,
//! };
//! let requests = pythia.on_demand(&access, &SystemFeedback::idle());
//! assert!(requests.len() <= 1); // Pythia takes one action per demand
//! ```

pub mod agent;
pub mod config;
pub mod eq;
pub mod features;
pub mod hw_model;
pub mod pipeline;
pub mod qvstore;
pub mod tuning;

pub use agent::Pythia;
pub use config::{PythiaConfig, RewardLevels, VaultCombine};
pub use features::{ControlFlow, DataFlow, Feature, FeatureContext};
pub use qvstore::QvStore;
