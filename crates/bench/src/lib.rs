//! # pythia-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), plus Criterion microbenchmarks (`benches/`). Each binary
//! prints the same rows/series the paper reports, computed on the synthetic
//! workload suites.
//!
//! Instruction budgets are scaled-down from the paper's 100 M + 500 M
//! (synthetic patterns reach steady state much sooner); set
//! `PYTHIA_BENCH_SCALE` (a float, default 1.0) to scale every budget, e.g.
//! `PYTHIA_BENCH_SCALE=0.2` for a quick pass or `4` for a long one.

use pythia::runner::{run_mix, run_workload, RunSpec};
use pythia_sim::stats::SimReport;
use pythia_stats::metrics::{self, Metrics};
use pythia_stats::report::Table;
use pythia_workloads::{suite, Suite, Workload};

/// Budget classes used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Headline single-core figures (7, 9, 17): longer training.
    Headline,
    /// Parameter sweeps (8, 11, 14–16, 20–23).
    Sweep,
    /// Multi-core runs (per-core budget).
    MultiCore,
}

/// Returns `(warmup, measure)` instructions for a budget class, scaled by
/// the `PYTHIA_BENCH_SCALE` environment variable.
pub fn budget(kind: Budget) -> (u64, u64) {
    let scale: f64 = std::env::var("PYTHIA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let (w, m) = match kind {
        Budget::Headline => (200_000u64, 800_000u64),
        // The RL agent needs ~200 K instructions of burn-in before its
        // policy settles (Fig. 23); sweeps warm up at least that long.
        Budget::Sweep => (200_000, 600_000),
        // Per-core budget. The warmup must cover the RL agent's burn-in
        // (~200 K instructions, Fig. 23): multi-core mixes run closer to
        // bus saturation, where leftover exploration traffic is punishing.
        Budget::MultiCore => (200_000, 400_000),
    };
    (
        ((w as f64 * scale) as u64).max(1_000),
        ((m as f64 * scale) as u64).max(4_000),
    )
}

/// A single-core [`RunSpec`] with the given budget class.
pub fn spec(kind: Budget) -> RunSpec {
    let (w, m) = budget(kind);
    RunSpec::single_core().with_budget(w, m)
}

/// Per-suite geomean speedups: the shape of Figs. 9(a)/10(a).
pub struct SuiteSpeedups {
    /// Row labels (suite names + `GEOMEAN`).
    pub labels: Vec<String>,
    /// `speedups[prefetcher][row]`.
    pub speedups: Vec<Vec<f64>>,
    /// Prefetcher names, matching `speedups` rows.
    pub prefetchers: Vec<String>,
}

impl SuiteSpeedups {
    /// Renders as a markdown table.
    pub fn table(&self) -> Table {
        let mut headers = vec!["suite"];
        let names: Vec<&str> = self.prefetchers.iter().map(String::as_str).collect();
        headers.extend(names);
        let mut t = Table::new(&headers);
        for (i, label) in self.labels.iter().enumerate() {
            let mut row = vec![label.clone()];
            for s in &self.speedups {
                row.push(format!("{:.3}", s[i]));
            }
            t.row(&row);
        }
        t
    }
}

/// Runs every workload of the given suites single-core with each prefetcher
/// and aggregates per-suite geomean speedups (Fig. 9(a) shape).
pub fn single_core_suite_speedups(
    suites: &[Suite],
    prefetchers: &[&str],
    run: &RunSpec,
) -> SuiteSpeedups {
    let mut labels: Vec<String> = suites.iter().map(|s| s.label().to_string()).collect();
    labels.push("GEOMEAN".into());
    let mut speedups = vec![vec![0.0; labels.len()]; prefetchers.len()];
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); prefetchers.len()];
    for (si, s) in suites.iter().enumerate() {
        let mut per_suite: Vec<Vec<f64>> = vec![Vec::new(); prefetchers.len()];
        for w in suite(*s) {
            let baseline = run_workload(&w, "none", run);
            for (pi, p) in prefetchers.iter().enumerate() {
                let report = run_workload(&w, p, run);
                let sp = metrics::speedup(&baseline, &report);
                per_suite[pi].push(sp);
                all[pi].push(sp);
            }
        }
        for pi in 0..prefetchers.len() {
            speedups[pi][si] = metrics::geomean(&per_suite[pi]);
        }
    }
    let last = labels.len() - 1;
    for pi in 0..prefetchers.len() {
        speedups[pi][last] = metrics::geomean(&all[pi]);
    }
    SuiteSpeedups {
        labels,
        speedups,
        prefetchers: prefetchers.iter().map(|s| s.to_string()).collect(),
    }
}

/// Per-workload evaluation across one or more suites, returning
/// `(workload, prefetcher, metrics)` triples (Figs. 1, 7, 17 shape).
pub fn evaluate(
    suites: &[Suite],
    prefetchers: &[&str],
    run: &RunSpec,
) -> Vec<(Workload, String, Metrics)> {
    let mut out = Vec::new();
    for s in suites {
        for w in suite(*s) {
            let baseline = run_workload(&w, "none", run);
            for &p in prefetchers {
                let report = run_workload(&w, p, run);
                out.push((
                    w.clone(),
                    p.to_string(),
                    metrics::compare(&baseline, &report),
                ));
            }
        }
    }
    out
}

/// Runs a set of `n`-core mixes and returns the geomean speedup per
/// prefetcher (Figs. 8(a), 10 shape).
pub fn multi_core_speedups(
    mixes: &[(String, Vec<Workload>)],
    prefetchers: &[&str],
    run: &RunSpec,
) -> Vec<(String, f64)> {
    let mut per_pf: Vec<Vec<f64>> = vec![Vec::new(); prefetchers.len()];
    for (_, ws) in mixes {
        let baseline = run_mix(ws, "none", run);
        for (pi, p) in prefetchers.iter().enumerate() {
            let report = run_mix(ws, p, run);
            per_pf[pi].push(metrics::speedup(&baseline, &report));
        }
    }
    prefetchers
        .iter()
        .zip(per_pf)
        .map(|(p, v)| (p.to_string(), metrics::geomean(&v)))
        .collect()
}

/// Aggregate coverage/overprediction across workloads, weighted by baseline
/// LLC misses (the Fig. 7 aggregation).
pub fn weighted_coverage(results: &[(Workload, String, Metrics)], prefetcher: &str) -> (f64, f64) {
    let mut cov_num = 0.0;
    let mut over_num = 0.0;
    let mut denom = 0.0;
    for (_, p, m) in results {
        if p == prefetcher {
            // Weight by baseline MPKI as a proxy for baseline misses.
            let w = m.baseline_mpki;
            cov_num += m.coverage * w;
            over_num += m.overprediction * w;
            denom += w;
        }
    }
    if denom == 0.0 {
        (0.0, 0.0)
    } else {
        (cov_num / denom, over_num / denom)
    }
}

/// Convenience re-export for harness binaries.
pub fn speedup_of(baseline: &SimReport, report: &SimReport) -> f64 {
    metrics::speedup(baseline, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_with_env() {
        // Serial test: set, read, unset.
        std::env::set_var("PYTHIA_BENCH_SCALE", "0.5");
        let (w, m) = budget(Budget::Sweep);
        std::env::remove_var("PYTHIA_BENCH_SCALE");
        assert_eq!(w, 100_000);
        assert_eq!(m, 300_000);
        let (w2, m2) = budget(Budget::Sweep);
        assert_eq!((w2, m2), (200_000, 600_000));
    }

    #[test]
    fn headline_budget_largest() {
        let (_, mh) = budget(Budget::Headline);
        let (_, ms) = budget(Budget::Sweep);
        let (_, mc) = budget(Budget::MultiCore);
        assert!(mh > ms && ms >= mc);
    }
}
