//! # pythia-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), plus Criterion microbenchmarks (`benches/`). Each binary
//! declares its grid as a [`pythia_sweep::SweepSpec`] (via [`figures`]),
//! runs it across the shared worker pool, and prints the same rows/series
//! the paper reports, computed on the synthetic workload suites.
//!
//! Instruction budgets are scaled-down from the paper's 100 M + 500 M
//! (synthetic patterns reach steady state much sooner); set
//! `PYTHIA_BENCH_SCALE` (a positive float, default 1.0) to scale every
//! budget, e.g. `PYTHIA_BENCH_SCALE=0.2` for a quick pass or `4` for a
//! long one. Invalid values are reported on stderr and ignored.
//!
//! Harness binaries fan out over `PYTHIA_BENCH_THREADS` worker threads
//! (default: all available cores); machine-readable output comes from
//! `pythia-cli sweep <figure> --format {md,json,csv}`.

use pythia::runner::RunSpec;

pub mod figures;

/// Budget classes used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Headline single-core figures (7, 9, 17): longer training.
    Headline,
    /// Parameter sweeps (8, 11, 14–16, 20–23).
    Sweep,
    /// Multi-core runs (per-core budget).
    MultiCore,
}

/// Parses `PYTHIA_BENCH_SCALE` (a positive float scaling every
/// instruction budget and benchmark fixture, default 1.0), warning (once)
/// on garbage instead of silently falling back. Shared by the figure
/// harnesses and the `pythia-perf` microbenchmark fixtures so one knob
/// scales both.
pub fn scale() -> f64 {
    static WARNED: std::sync::Once = std::sync::Once::new();
    match std::env::var("PYTHIA_BENCH_SCALE") {
        Err(_) => 1.0,
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => v,
            _ => {
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: PYTHIA_BENCH_SCALE={raw:?} is not a positive number; \
                         using the default scale 1.0"
                    );
                });
                1.0
            }
        },
    }
}

/// Returns `(warmup, measure)` instructions for a budget class, scaled by
/// the `PYTHIA_BENCH_SCALE` environment variable.
pub fn budget(kind: Budget) -> (u64, u64) {
    let scale = scale();
    let (w, m) = match kind {
        Budget::Headline => (200_000u64, 800_000u64),
        // The RL agent needs ~200 K instructions of burn-in before its
        // policy settles (Fig. 23); sweeps warm up at least that long.
        Budget::Sweep => (200_000, 600_000),
        // Per-core budget. The warmup must cover the RL agent's burn-in
        // (~200 K instructions, Fig. 23): multi-core mixes run closer to
        // bus saturation, where leftover exploration traffic is punishing.
        Budget::MultiCore => (200_000, 400_000),
    };
    (
        ((w as f64 * scale) as u64).max(1_000),
        ((m as f64 * scale) as u64).max(4_000),
    )
}

/// A single-core [`RunSpec`] with the given budget class.
pub fn spec(kind: Budget) -> RunSpec {
    let (w, m) = budget(kind);
    RunSpec::single_core().with_budget(w, m)
}

/// Worker thread count for harness fan-out: `PYTHIA_BENCH_THREADS` if set
/// (`0` is clamped to 1 with a warning, garbage warns and falls back),
/// otherwise every available core.
pub fn threads() -> usize {
    static WARNED: std::sync::Once = std::sync::Once::new();
    match std::env::var("PYTHIA_BENCH_THREADS") {
        Err(_) => default_threads(),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => {
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: PYTHIA_BENCH_THREADS=0 would run no workers; clamping to 1"
                    );
                });
                1
            }
            Ok(n) => n,
            Err(_) => {
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: PYTHIA_BENCH_THREADS={raw:?} is not a positive integer; \
                         using all {} cores",
                        default_threads()
                    );
                });
                default_threads()
            }
        },
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests touching `PYTHIA_BENCH_SCALE` serialize on this lock; the
    /// variable is process-global and tests run concurrently.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn budgets_scale_with_env() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("PYTHIA_BENCH_SCALE", "0.5");
        let (w, m) = budget(Budget::Sweep);
        assert_eq!(w, 100_000);
        assert_eq!(m, 300_000);

        // Garbage values warn (once) and fall back to 1.0 — not silently
        // to a half-applied scale.
        std::env::set_var("PYTHIA_BENCH_SCALE", "fast-please");
        let (w, m) = budget(Budget::Sweep);
        assert_eq!((w, m), (200_000, 600_000));
        std::env::set_var("PYTHIA_BENCH_SCALE", "-2");
        let (w, m) = budget(Budget::Sweep);
        assert_eq!((w, m), (200_000, 600_000));

        std::env::remove_var("PYTHIA_BENCH_SCALE");
        let (w2, m2) = budget(Budget::Sweep);
        assert_eq!((w2, m2), (200_000, 600_000));
    }

    #[test]
    fn headline_budget_largest() {
        let _guard = ENV_LOCK.lock().unwrap();
        let (_, mh) = budget(Budget::Headline);
        let (_, ms) = budget(Budget::Sweep);
        let (_, mc) = budget(Budget::MultiCore);
        assert!(mh > ms && ms >= mc);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("PYTHIA_BENCH_THREADS", "0");
        assert_eq!(threads(), 1, "0 must clamp to one worker, not fan out");
        std::env::set_var("PYTHIA_BENCH_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::remove_var("PYTHIA_BENCH_THREADS");
    }
}
