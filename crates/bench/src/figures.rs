//! The figure registry: every paper figure/table grid as a declarative
//! [`SweepSpec`] campaign.
//!
//! Both the harness binaries (`src/bin/`) and the `pythia-cli sweep`
//! subcommand resolve grids from here, so the definition of "what Fig. 9
//! runs" exists exactly once. A figure maps to one or more specs (panels);
//! [`specs`] returns them and callers run them with
//! [`pythia_sweep::run`] / [`pythia_sweep::engine::run_all`].

use pythia_core::tuning::{exponential_grid, HyperPoint};
use pythia_core::{ControlFlow, DataFlow, Feature, PythiaConfig};
use pythia_sim::config::SystemConfig;
use pythia_sweep::{ConfigPoint, SweepSpec, WorkUnit};
use pythia_workloads::profiles::{derive_seed, Profile, CAMPAIGN_SEED};
use pythia_workloads::suites::cvp_unseen;
use pythia_workloads::{all_suites, mixes, suite, PatternKind, Suite, TraceSpec, Workload};

use crate::{budget, Budget};

/// The five tuning suites of Table 6 (excludes the unseen CVP set).
pub const FIVE_SUITES: [Suite; 5] = [
    Suite::Spec06,
    Suite::Spec17,
    Suite::Parsec,
    Suite::Ligra,
    Suite::Cloudsuite,
];

/// The headline prefetcher comparison set (Figs. 1/7/9/10/12/17).
pub const HEADLINE_PREFETCHERS: [&str; 4] = ["spp", "bingo", "mlop", "pythia"];

/// The prefetcher-combination ladder of Figs. 9(b)/10(b).
pub const LADDER: [&str; 6] = ["st", "st+s", "st+s+b", "st+s+b+d", "st+s+b+d+m", "pythia"];

/// Looks up named workloads in the Table 6 pool.
///
/// # Panics
///
/// Panics on an unknown name — figure definitions are static, so this is a
/// programming error.
pub fn named_units(names: &[&str]) -> Vec<WorkUnit> {
    let pool = all_suites();
    names
        .iter()
        .map(|n| {
            let w = pool
                .iter()
                .find(|w| w.name == *n)
                .unwrap_or_else(|| panic!("unknown workload {n:?}"));
            WorkUnit::single(w.clone())
        })
        .collect()
}

/// A single-core config point with the given budget class.
fn point(label: &str, kind: Budget) -> ConfigPoint {
    let (w, m) = budget(kind);
    ConfigPoint::single_core(label, w, m)
}

/// A single-core config point at a DRAM bandwidth level (Fig. 8(b)/(d)/11).
fn mtps_point(mtps: u64, kind: Budget) -> ConfigPoint {
    let (w, m) = budget(kind);
    ConfigPoint::new(
        &mtps.to_string(),
        SystemConfig::single_core_with_mtps(mtps),
        w,
        m,
    )
}

/// The display label of a hyperparameter grid point (shared between the
/// `tab02` registry entry and the `tab02_dse` binary so screening scores
/// can be joined back to grid points).
pub fn hyper_label(p: &HyperPoint) -> String {
    format!("a={:e} g={:e} e={:e}", p.alpha, p.gamma, p.epsilon)
}

/// The Fig. 16 / §6.6.2 candidate feature vectors (a shortlist from the
/// Table 3 space; the full exploration lives in `tab02_dse`).
pub fn feature_candidates() -> Vec<Vec<Feature>> {
    vec![
        vec![Feature::PC_DELTA, Feature::LAST_4_DELTAS],
        vec![Feature::PC_DELTA],
        vec![Feature::LAST_4_DELTAS],
        vec![
            Feature {
                control: ControlFlow::Pc,
                data: DataFlow::PageOffset,
            },
            Feature::LAST_4_DELTAS,
        ],
        vec![
            Feature::PC_DELTA,
            Feature {
                control: ControlFlow::None,
                data: DataFlow::LastFourOffsets,
            },
        ],
    ]
}

/// Joins a feature vector into a display label.
pub fn feature_label(features: &[Feature]) -> String {
    let parts: Vec<String> = features.iter().map(|f| f.label()).collect();
    parts.join(";")
}

fn fig01() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig01")
        .with_units(named_units(&[
            "482.sphinx3-417B",
            "PARSEC-Canneal",
            "PARSEC-Facesim",
            "459.GemsFDTD-765B",
            "Ligra-CC",
            "Ligra-PageRankDelta",
        ]))
        .with_prefetchers(&["spp", "bingo", "pythia"])
        .with_config(point("base", Budget::Headline))]
}

fn fig07() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig07")
        .with_suites(&FIVE_SUITES)
        .with_prefetchers(&HEADLINE_PREFETCHERS)
        .with_config(point("base", Budget::Headline))]
}

fn fig08a() -> Vec<SweepSpec> {
    let (w, m) = budget(Budget::MultiCore);
    [1usize, 2, 4, 8, 12]
        .iter()
        .map(|&cores| {
            SweepSpec::new(&format!("fig08a-{cores}c"))
                .with_units(
                    mixes(cores, 4, 42)
                        .into_iter()
                        .map(|(label, ws)| WorkUnit::mix(&label, "mix", ws)),
                )
                .with_prefetchers(&["spp", "bingo", "mlop", "spp+ppf", "pythia"])
                .with_config(ConfigPoint::new(
                    &cores.to_string(),
                    SystemConfig::with_cores(cores),
                    w,
                    m,
                ))
        })
        .collect()
}

fn fig08b() -> Vec<SweepSpec> {
    // A representative cross-section (full suites at every MTPS would be
    // slow; the shape comes from the mix of streaming/spatial/irregular).
    vec![SweepSpec::new("fig08b")
        .with_units(named_units(&[
            "462.libquantum-714B",
            "459.GemsFDTD-765B",
            "482.sphinx3-417B",
            "PARSEC-Facesim",
            "429.mcf-184B",
            "Ligra-CC",
            "Ligra-PageRank",
            "436.cactusADM-97B",
            "cassandra",
            "470.lbm-164B",
        ]))
        .with_prefetchers(&["spp", "bingo", "mlop", "spp+ppf", "pythia"])
        .with_configs(
            [150u64, 300, 600, 1200, 2400, 4800, 9600]
                .iter()
                .map(|&mtps| mtps_point(mtps, Budget::Sweep)),
        )]
}

fn fig08c() -> Vec<SweepSpec> {
    let (w, m) = budget(Budget::Sweep);
    vec![SweepSpec::new("fig08c")
        .with_units(named_units(&[
            "462.libquantum-714B",
            "459.GemsFDTD-765B",
            "482.sphinx3-417B",
            "PARSEC-Facesim",
            "429.mcf-184B",
            "Ligra-CC",
            "483.xalancbmk-736B",
            "cassandra",
        ]))
        .with_prefetchers(&["spp", "bingo", "mlop", "spp+ppf", "pythia"])
        .with_configs([256u64, 512, 1024, 2048, 4096].iter().map(|&kb| {
            ConfigPoint::new(
                &format!("{kb}KB"),
                SystemConfig::single_core_with_llc_bytes(kb * 1024),
                w,
                m,
            )
        }))]
}

fn fig08d() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig08d")
        .with_units(named_units(&[
            "462.libquantum-714B",
            "459.GemsFDTD-765B",
            "482.sphinx3-417B",
            "PARSEC-Facesim",
            "Ligra-CC",
            "429.mcf-184B",
            "436.cactusADM-97B",
            "cassandra",
        ]))
        .with_prefetchers(&["stride+streamer", "ipcp", "stride+pythia"])
        .with_configs(
            [150u64, 600, 2400, 9600]
                .iter()
                .map(|&mtps| mtps_point(mtps, Budget::Sweep)),
        )]
}

fn fig09() -> Vec<SweepSpec> {
    vec![
        SweepSpec::new("fig09a")
            .with_suites(&FIVE_SUITES)
            .with_prefetchers(&HEADLINE_PREFETCHERS)
            .with_config(point("base", Budget::Headline)),
        SweepSpec::new("fig09b")
            .with_workloads(all_suites())
            .with_prefetchers(&LADDER)
            .with_config(point("base", Budget::Headline)),
    ]
}

fn fig10() -> Vec<SweepSpec> {
    let (w, m) = budget(Budget::MultiCore);
    let four_core = ConfigPoint::new("4", SystemConfig::with_cores(4), w, m);
    // Homogeneous 4-copy mixes of a subset of each suite (cost control).
    let homo_units = FIVE_SUITES.iter().flat_map(|&s| {
        suite(s)
            .into_iter()
            .step_by(3)
            .map(|w| WorkUnit::homogeneous(&w, 4, 7919))
            .collect::<Vec<_>>()
    });
    vec![
        SweepSpec::new("fig10a")
            .with_units(homo_units)
            .with_prefetchers(&HEADLINE_PREFETCHERS)
            .with_config(four_core.clone()),
        SweepSpec::new("fig10b")
            .with_units(
                mixes(4, 5, 77)
                    .into_iter()
                    .map(|(label, ws)| WorkUnit::mix(&label, "mix", ws)),
            )
            .with_prefetchers(&LADDER)
            .with_config(four_core),
    ]
}

fn fig11() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig11")
        .with_units(named_units(&[
            "Ligra-CC",
            "Ligra-PageRank",
            "429.mcf-184B",
            "482.sphinx3-417B",
            "PARSEC-Canneal",
            "cassandra",
            "462.libquantum-714B",
            "459.GemsFDTD-765B",
        ]))
        .with_baseline("pythia")
        .with_prefetchers(&["pythia_bw_oblivious"])
        .with_configs(
            [150u64, 300, 600, 1200, 2400, 4800, 9600]
                .iter()
                .map(|&mtps| mtps_point(mtps, Budget::Sweep)),
        )]
}

/// Category of an unseen CVP-2-like trace (`"crypto-1"` → `"crypto"`).
fn category(name: &str) -> String {
    name.split('-').next().unwrap_or(name).to_string()
}

fn fig12() -> Vec<SweepSpec> {
    let unseen = cvp_unseen();
    let single_units = unseen.iter().map(|w| {
        let mut u = WorkUnit::single(w.clone());
        u.group = category(&w.name);
        u
    });
    // One homogeneous 4-copy mix per category.
    let mut seen = std::collections::BTreeSet::new();
    let mix_units: Vec<WorkUnit> = unseen
        .iter()
        .filter(|w| seen.insert(category(&w.name)))
        .map(|w| {
            let mut u = WorkUnit::homogeneous(w, 4, 131);
            u.group = category(&w.name);
            u
        })
        .collect();
    let (w4, m4) = budget(Budget::MultiCore);
    vec![
        SweepSpec::new("fig12a")
            .with_units(single_units)
            .with_prefetchers(&HEADLINE_PREFETCHERS)
            .with_config(point("base", Budget::Sweep)),
        SweepSpec::new("fig12b")
            .with_units(mix_units)
            .with_prefetchers(&HEADLINE_PREFETCHERS)
            .with_config(ConfigPoint::new("4", SystemConfig::with_cores(4), w4, m4)),
    ]
}

fn fig14() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig14")
        .with_units(named_units(&["Ligra-CC"]))
        .with_prefetchers(&["spp", "bingo", "mlop", "pythia", "pythia_strict"])
        .with_config(point("base", Budget::Sweep))]
}

fn fig15() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig15")
        .with_workloads(suite(Suite::Ligra))
        .with_prefetchers(&["pythia", "pythia_strict"])
        .with_config(point("base", Budget::Sweep))]
}

fn fig16() -> Vec<SweepSpec> {
    let mut spec = SweepSpec::new("fig16")
        .with_workloads(suite(Suite::Spec06))
        .with_prefetchers(&["pythia"])
        .with_config(point("base", Budget::Sweep));
    for features in feature_candidates() {
        let label = format!("feat:{}", feature_label(&features));
        spec = spec.with_pythia_variant(&label, PythiaConfig::tuned().with_features(features));
    }
    vec![spec]
}

fn fig17() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig17")
        .with_workloads(all_suites())
        .with_prefetchers(&HEADLINE_PREFETCHERS)
        .with_config(point("base", Budget::Sweep))]
}

/// The five-workload cross-section used by the sensitivity studies
/// (Figs. 20/23).
fn sensitivity_units() -> Vec<WorkUnit> {
    named_units(&[
        "459.GemsFDTD-765B",
        "462.libquantum-714B",
        "482.sphinx3-417B",
        "Ligra-CC",
        "429.mcf-184B",
    ])
}

fn fig20() -> Vec<SweepSpec> {
    let mut a = SweepSpec::new("fig20a")
        .with_units(sensitivity_units())
        .with_config(point("base", Budget::Sweep));
    for eps in [1e-5f32, 1e-4, 1e-3, 2e-3, 1e-2, 1e-1, 0.5, 1.0] {
        let mut cfg = PythiaConfig::basic();
        cfg.epsilon = eps;
        a = a.with_pythia_variant(&format!("{eps:e}"), cfg);
    }
    let mut b = SweepSpec::new("fig20b")
        .with_units(sensitivity_units())
        .with_config(point("base", Budget::Sweep));
    for alpha in [1e-5f32, 1e-4, 1e-3, 0.0065, 1e-2, 1e-1, 1.0] {
        let mut cfg = PythiaConfig::basic();
        cfg.alpha = alpha;
        b = b.with_pythia_variant(&format!("{alpha:e}"), cfg);
    }
    vec![a, b]
}

fn fig21() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig21")
        .with_suites(&FIVE_SUITES)
        .with_prefetchers(&["cp_hw", "pythia"])
        .with_config(point("base", Budget::Sweep))]
}

fn fig22() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig22")
        .with_suites(&FIVE_SUITES)
        .with_prefetchers(&["power7", "pythia"])
        .with_config(point("base", Budget::Sweep))]
}

fn fig23() -> Vec<SweepSpec> {
    vec![SweepSpec::new("fig23")
        .with_units(sensitivity_units())
        .with_prefetchers(&HEADLINE_PREFETCHERS)
        .with_configs(
            [0u64, 25_000, 50_000, 100_000, 200_000]
                .iter()
                .map(|&warmup| ConfigPoint::single_core(&warmup.to_string(), warmup, 400_000)),
        )]
}

/// The four-workload cross-section the §4.3 DSE screens against.
pub fn dse_units() -> Vec<WorkUnit> {
    named_units(&[
        "459.GemsFDTD-765B",
        "462.libquantum-714B",
        "482.sphinx3-417B",
        "429.mcf-184B",
    ])
}

fn tab02() -> Vec<SweepSpec> {
    // The §4.3.3 screening grid as one declarative campaign: every
    // hyperparameter point becomes an inline Pythia variant.
    let mut spec = SweepSpec::new("tab02")
        .with_units(dse_units())
        .with_config(point("base", Budget::MultiCore));
    for p in exponential_grid(4) {
        let mut cfg = PythiaConfig::tuned();
        cfg.alpha = p.alpha;
        cfg.gamma = p.gamma;
        cfg.epsilon = p.epsilon;
        spec = spec.with_pythia_variant(&hyper_label(&p), cfg);
    }
    vec![spec]
}

fn ablation() -> Vec<SweepSpec> {
    let mut spec = SweepSpec::new("ablation")
        .with_units(named_units(&[
            "459.GemsFDTD-765B",
            "462.libquantum-714B",
            "482.sphinx3-417B",
            "436.cactusADM-97B",
            "429.mcf-184B",
            "Ligra-CC",
        ]))
        .with_config(point("base", Budget::Sweep));

    spec = spec.with_pythia_variant(
        "tuned (max, 3 planes, 16 actions, EQ 256)",
        PythiaConfig::tuned(),
    );
    spec = spec.with_pythia_variant("paper-literal alpha = 0.0065", PythiaConfig::basic());

    let mut c = PythiaConfig::tuned();
    c.q_init_override = Some(1.0 / (1.0 - c.gamma));
    spec = spec.with_pythia_variant("paper-literal Q-init 1/(1-gamma)", c);

    let mut c = PythiaConfig::tuned();
    c.graded_timeliness = true;
    spec = spec.with_pythia_variant("graded timeliness (footnote 3)", c);

    let mut c = PythiaConfig::tuned();
    c.vault_combine = pythia_core::VaultCombine::Mean;
    spec = spec.with_pythia_variant("mean vault combination", c);

    let mut c = PythiaConfig::tuned();
    c.planes = 1;
    spec = spec.with_pythia_variant("1 plane per vault", c);

    spec = spec.with_pythia_variant(
        "full [-63,63] action list",
        PythiaConfig::tuned().with_actions(PythiaConfig::full_actions()),
    );

    let mut c = PythiaConfig::tuned();
    c.eq_size = 64;
    spec = spec.with_pythia_variant("EQ of 64 entries", c);

    let mut c = PythiaConfig::tuned();
    c.eq_size = 1024;
    spec = spec.with_pythia_variant("EQ of 1024 entries", c);

    vec![spec]
}

/// One [`WorkUnit`] per workload of a robustness profile, grouped under
/// the profile's label so [`pythia_sweep::SweepResult::robustness`] can
/// score hostile groups against the `expected` reference.
fn profile_units(p: Profile) -> Vec<WorkUnit> {
    p.workloads(CAMPAIGN_SEED)
        .into_iter()
        .map(|w| {
            let mut u = WorkUnit::single(w);
            u.group = p.label().to_string();
            u
        })
        .collect()
}

/// `robust01`: every registry prefetcher (plus Pythia) over the three
/// robustness profiles. Scored as speedup/coverage/overprediction deltas
/// against the `expected` group.
fn robust01() -> Vec<SweepSpec> {
    let mut prefetchers: Vec<&str> = pythia::prefetchers::registry::available()
        .iter()
        .filter(|&&p| p != "none")
        .copied()
        .collect();
    prefetchers.push("pythia");
    let units = Profile::all().into_iter().flat_map(profile_units);
    vec![SweepSpec::new("robust01")
        .with_units(units)
        .with_prefetchers(&prefetchers)
        .with_config(point("base", Budget::Sweep))]
}

/// `robust02`: phase agility. A three-pattern mix is served steady (each
/// constituent its own workload, the `steady` reference group) and phased
/// at increasingly rapid switch periods; fragile prefetchers decay as the
/// period shrinks.
fn robust02() -> Vec<SweepSpec> {
    use PatternKind::*;
    let constituents: [(&str, PatternKind); 3] = [
        ("stream", Stream { store_every: 0 }),
        (
            "delta",
            DeltaChain {
                deltas: vec![1, 1, 3],
            },
        ),
        ("cloud", CloudMix { hot_pct: 10 }),
    ];
    let unit = |name: String, kind: PatternKind, group: &str| -> WorkUnit {
        let spec = TraceSpec::new(name.clone(), kind).with_seed(derive_seed(CAMPAIGN_SEED, &name));
        let mut u = WorkUnit::single(Workload {
            name,
            suite: Suite::CvpUnseen,
            spec,
        });
        u.group = group.to_string();
        u
    };
    let mut units: Vec<WorkUnit> = constituents
        .iter()
        .map(|(n, k)| unit(format!("steady-{n}"), k.clone(), "steady"))
        .collect();
    for plen in [8_000u32, 2_000, 500, 64] {
        let group = format!("plen-{plen}");
        units.push(unit(
            group.clone(),
            Phased {
                phases: constituents.iter().map(|(_, k)| k.clone()).collect(),
                phase_len: plen,
            },
            &group,
        ));
    }
    vec![SweepSpec::new("robust02")
        .with_units(units)
        .with_prefetchers(&HEADLINE_PREFETCHERS)
        .with_config(point("base", Budget::Sweep))]
}

/// `robust03`: adversarial robustness under bandwidth pressure — the
/// expected and adversarial profiles swept across DRAM MTPS levels.
fn robust03() -> Vec<SweepSpec> {
    let units = [Profile::Expected, Profile::Adversarial]
        .into_iter()
        .flat_map(profile_units);
    vec![SweepSpec::new("robust03")
        .with_units(units)
        .with_prefetchers(&HEADLINE_PREFETCHERS)
        .with_configs(
            [150u64, 600, 2400, 9600]
                .iter()
                .map(|&mtps| mtps_point(mtps, Budget::MultiCore)),
        )]
}

/// A registered figure: an id, a title, and the campaign(s) behind it.
pub struct FigureDef {
    /// Registry id (`"fig09"`, `"tab02"`, ...).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Builds the figure's sweep specs (panels).
    pub build: fn() -> Vec<SweepSpec>,
}

/// Every registered figure/table campaign.
pub fn registry() -> Vec<FigureDef> {
    vec![
        FigureDef {
            id: "fig01",
            title: "Motivational coverage/overprediction/performance",
            build: fig01,
        },
        FigureDef {
            id: "fig07",
            title: "Coverage and overprediction per suite (single-core)",
            build: fig07,
        },
        FigureDef {
            id: "fig08a",
            title: "Speedup vs core count",
            build: fig08a,
        },
        FigureDef {
            id: "fig08b",
            title: "Speedup vs DRAM MTPS (single core)",
            build: fig08b,
        },
        FigureDef {
            id: "fig08c",
            title: "Speedup vs LLC size (single core)",
            build: fig08c,
        },
        FigureDef {
            id: "fig08d",
            title: "Multi-level prefetching vs DRAM MTPS",
            build: fig08d,
        },
        FigureDef {
            id: "fig09",
            title: "Single-core performance (per-suite + combination ladder)",
            build: fig09,
        },
        FigureDef {
            id: "fig10",
            title: "Four-core performance (per-suite + combination ladder)",
            build: fig10,
        },
        FigureDef {
            id: "fig11",
            title: "Bandwidth-oblivious Pythia vs basic Pythia",
            build: fig11,
        },
        FigureDef {
            id: "fig12",
            title: "Performance on unseen traces (single- and four-core)",
            build: fig12,
        },
        FigureDef {
            id: "fig14",
            title: "Ligra-CC bandwidth-bucket residency and performance",
            build: fig14,
        },
        FigureDef {
            id: "fig15",
            title: "Basic vs strict Pythia on the Ligra suite",
            build: fig15,
        },
        FigureDef {
            id: "fig16",
            title: "Basic vs feature-optimized Pythia on SPEC06",
            build: fig16,
        },
        FigureDef {
            id: "fig17",
            title: "Single-core s-curves",
            build: fig17,
        },
        FigureDef {
            id: "fig20",
            title: "Sensitivity to exploration and learning rates",
            build: fig20,
        },
        FigureDef {
            id: "fig21",
            title: "Pythia vs CP-HW (single-core)",
            build: fig21,
        },
        FigureDef {
            id: "fig22",
            title: "Pythia vs POWER7-adaptive (single-core)",
            build: fig22,
        },
        FigureDef {
            id: "fig23",
            title: "Sensitivity to warmup instructions",
            build: fig23,
        },
        FigureDef {
            id: "tab02",
            title: "Hyperparameter screening grid (§4.3.3)",
            build: tab02,
        },
        FigureDef {
            id: "ablation",
            title: "Ablations of Pythia design choices",
            build: ablation,
        },
        FigureDef {
            id: "robust01",
            title: "Robustness of every registry prefetcher across trace profiles",
            build: robust01,
        },
        FigureDef {
            id: "robust02",
            title: "Phase agility: steady vs phased pattern mixes",
            build: robust02,
        },
        FigureDef {
            id: "robust03",
            title: "Adversarial robustness under bandwidth pressure",
            build: robust03,
        },
    ]
}

/// Builds the sweep specs of one registered figure.
pub fn specs(id: &str) -> Option<Vec<SweepSpec>> {
    registry()
        .into_iter()
        .find(|f| f.id == id)
        .map(|f| (f.build)())
}

/// Builds one registered figure as a content-addressable
/// [`pythia_sweep::Campaign`] — the submission unit of `pythia-serve` and
/// the cache key of `pythia-cli sweep --cache-dir`. The digest covers the
/// fully expanded grid (budgets included), so the same figure id at a
/// different `PYTHIA_BENCH_SCALE` addresses a different artifact.
pub fn campaign(id: &str) -> Option<pythia_sweep::Campaign> {
    specs(id).map(|panels| pythia_sweep::Campaign::new(id, panels))
}

/// A quick-eval campaign: one inline Pythia config over the DSE workload
/// cross-section (the objective function the §4.3 search procedures call).
pub fn dse_eval_spec(label: &str, cfg: PythiaConfig, units: &[WorkUnit]) -> SweepSpec {
    SweepSpec::new("dse-eval")
        .with_units(units.to_vec())
        .with_pythia_variant(label, cfg)
        .with_config(point("base", Budget::MultiCore))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_figure_validates() {
        for def in registry() {
            for spec in (def.build)() {
                spec.validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", def.id));
                assert!(spec.cell_count() > 0, "{}: empty grid", def.id);
            }
        }
    }

    #[test]
    fn ids_are_unique_and_resolvable() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len(), "duplicate figure id");
        assert!(specs("fig09").is_some());
        assert!(specs("no-such-figure").is_none());
    }

    #[test]
    fn fig09_panels_cover_suites_and_ladder() {
        let panels = specs("fig09").unwrap();
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0].units.len(), 50, "five suites");
        assert_eq!(panels[1].prefetchers.len(), LADDER.len());
    }

    #[test]
    fn fig11_baseline_is_basic_pythia() {
        let panels = specs("fig11").unwrap();
        assert_eq!(panels[0].baseline.label, "pythia");
        assert_eq!(panels[0].configs.len(), 7);
    }

    #[test]
    fn tab02_grid_has_one_variant_per_hyper_point() {
        let panels = specs("tab02").unwrap();
        assert_eq!(panels[0].prefetchers.len(), exponential_grid(4).len());
    }

    #[test]
    fn robust_campaigns_cover_profiles() {
        let panels = specs("robust01").unwrap();
        assert_eq!(panels.len(), 1);
        let groups: std::collections::BTreeSet<&str> =
            panels[0].units.iter().map(|u| u.group.as_str()).collect();
        for g in ["expected", "stress", "adversarial"] {
            assert!(groups.contains(g), "missing group {g}");
        }
        assert!(
            panels[0].prefetchers.iter().any(|p| p.label == "pythia"),
            "registry sweep must include pythia"
        );
        // The reference group leads in spec order so the robustness table
        // scores against it.
        assert_eq!(panels[0].units[0].group, "expected");
        assert_eq!(specs("robust02").unwrap()[0].units[0].group, "steady");
        assert_eq!(specs("robust03").unwrap()[0].configs.len(), 4);
    }

    #[test]
    fn fig12_groups_by_category() {
        let panels = specs("fig12").unwrap();
        assert!(panels[0].units.iter().any(|u| u.group == "crypto"));
        assert_eq!(panels[1].units.len(), 4, "one mix per category");
        assert!(panels[1].units.iter().all(|u| u.cores() == 4));
    }
}
