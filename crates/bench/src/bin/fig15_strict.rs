//! Fig. 15 — basic vs. strict Pythia across the Ligra suite: reward-level
//! customization via configuration registers (§6.6.1).

use pythia::runner::{run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::suites::ligra;

fn main() {
    let (wu, me) = budget(Budget::Sweep);
    let run = RunSpec::single_core().with_budget(wu, me);
    let mut t = Table::new(&[
        "workload",
        "basic pythia",
        "strict pythia",
        "strict vs basic",
    ]);
    let mut basics = Vec::new();
    let mut stricts = Vec::new();
    for w in ligra() {
        let baseline = run_workload(&w, "none", &run);
        let basic = compare(&baseline, &run_workload(&w, "pythia", &run)).speedup;
        let strict = compare(&baseline, &run_workload(&w, "pythia_strict", &run)).speedup;
        basics.push(basic);
        stricts.push(strict);
        t.row(&[
            w.name.clone(),
            format!("{basic:.3}"),
            format!("{strict:.3}"),
            format!("{:+.1}%", (strict / basic - 1.0) * 100.0),
        ]);
    }
    t.row(&[
        "GEOMEAN".into(),
        format!("{:.3}", geomean(&basics)),
        format!("{:.3}", geomean(&stricts)),
        format!(
            "{:+.1}%",
            (geomean(&stricts) / geomean(&basics) - 1.0) * 100.0
        ),
    ]);
    println!("# Fig. 15 — basic vs strict Pythia on the Ligra suite\n");
    println!("{}", t.to_markdown());
}
