//! Fig. 15 — basic vs. strict Pythia across the Ligra suite: reward-level
//! customization via configuration registers (§6.6.1).

use pythia_bench::{figures, threads};
use pythia_stats::report::Table;
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig15")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");

    let mut t = Table::new(&[
        "workload",
        "basic pythia",
        "strict pythia",
        "strict vs basic",
    ]);
    let units: Vec<String> = r.baselines.iter().map(|b| b.unit.clone()).collect();
    for unit in &units {
        let basic = r
            .cell(unit, "pythia", "base")
            .expect("cell")
            .metrics
            .speedup;
        let strict = r
            .cell(unit, "pythia_strict", "base")
            .expect("cell")
            .metrics
            .speedup;
        t.row(&[
            unit.clone(),
            format!("{basic:.3}"),
            format!("{strict:.3}"),
            format!("{:+.1}%", (strict / basic - 1.0) * 100.0),
        ]);
    }
    let geo = r.aggregate(Key::Prefetcher, Value::Speedup);
    let (basic, strict) = (geo[0].1, geo[1].1);
    t.row(&[
        "GEOMEAN".into(),
        format!("{basic:.3}"),
        format!("{strict:.3}"),
        format!("{:+.1}%", (strict / basic - 1.0) * 100.0),
    ]);
    println!("# Fig. 15 — basic vs strict Pythia on the Ligra suite\n");
    println!("{}", t.to_markdown());
}
