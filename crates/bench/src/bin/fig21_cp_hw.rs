//! Fig. 21 (App. B.4) — Pythia vs. the contextual-bandit context prefetcher
//! (CP-HW) per suite, single-core.

use pythia_bench::{single_core_suite_speedups, spec, Budget};
use pythia_workloads::Suite;

fn main() {
    let run = spec(Budget::Sweep);
    let suites = [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::Cloudsuite,
    ];
    let s = single_core_suite_speedups(&suites, &["cp_hw", "pythia"], &run);
    println!("# Fig. 21 — Pythia vs CP-HW (single-core)\n");
    println!("{}", s.table().to_markdown());
}
