//! Fig. 21 (App. B.4) — Pythia vs. the contextual-bandit context prefetcher
//! (CP-HW) per suite, single-core.

use pythia_bench::{figures, threads};
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig21")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    println!("# Fig. 21 — Pythia vs CP-HW (single-core)\n");
    println!(
        "{}",
        r.pivot_with_total(Key::Group, Key::Prefetcher, Value::Speedup, Some("GEOMEAN"))
            .to_markdown()
    );
}
