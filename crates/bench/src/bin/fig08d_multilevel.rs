//! Fig. 8(d) — multi-level prefetching: Stride(L1)+Pythia(L2) vs.
//! Stride+Streamer vs. IPCP, across DRAM bandwidth.

use pythia::runner::{run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_sim::config::SystemConfig;
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let prefetchers = ["stride+streamer", "ipcp", "stride+pythia"];
    let names = [
        "462.libquantum-714B",
        "459.GemsFDTD-765B",
        "482.sphinx3-417B",
        "PARSEC-Facesim",
        "Ligra-CC",
        "429.mcf-184B",
        "436.cactusADM-97B",
        "cassandra",
    ];
    let pool = all_suites();
    let (wu, me) = budget(Budget::Sweep);
    let mut t = Table::new(&["MTPS", "stride+streamer", "ipcp", "stride+pythia"]);
    for mtps in [150u64, 600, 2400, 9600] {
        let run = RunSpec::single_core()
            .with_system(SystemConfig::single_core_with_mtps(mtps))
            .with_budget(wu, me);
        let mut per_pf = vec![Vec::new(); prefetchers.len()];
        for name in names {
            let w = pool.iter().find(|w| w.name == name).expect("workload");
            let baseline = run_workload(w, "none", &run);
            for (pi, p) in prefetchers.iter().enumerate() {
                per_pf[pi].push(compare(&baseline, &run_workload(w, p, &run)).speedup);
            }
        }
        let mut row = vec![mtps.to_string()];
        row.extend(per_pf.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    println!("# Fig. 8(d) — multi-level prefetching vs DRAM MTPS\n");
    println!("{}", t.to_markdown());
}
