//! Fig. 8(d) — multi-level prefetching: Stride(L1)+Pythia(L2) vs.
//! Stride+Streamer vs. IPCP, across DRAM bandwidth.

use pythia_bench::{figures, threads};
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig08d")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    println!("# Fig. 8(d) — multi-level prefetching vs DRAM MTPS\n");
    println!(
        "{}",
        r.pivot(Key::Config, Key::Prefetcher, Value::Speedup)
            .to_markdown()
    );
}
