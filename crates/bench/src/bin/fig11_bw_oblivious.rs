//! Fig. 11 — bandwidth-oblivious Pythia vs. basic Pythia as DRAM bandwidth
//! scales (the benefit of inherent bandwidth awareness, §6.3.3).

use pythia::runner::{run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_sim::config::SystemConfig;
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let names = [
        "Ligra-CC",
        "Ligra-PageRank",
        "429.mcf-184B",
        "482.sphinx3-417B",
        "PARSEC-Canneal",
        "cassandra",
        "462.libquantum-714B",
        "459.GemsFDTD-765B",
    ];
    let pool = all_suites();
    let (wu, me) = budget(Budget::Sweep);
    let mut t = Table::new(&["MTPS", "oblivious vs basic (%)"]);
    for mtps in [150u64, 300, 600, 1200, 2400, 4800, 9600] {
        let run = RunSpec::single_core()
            .with_system(SystemConfig::single_core_with_mtps(mtps))
            .with_budget(wu, me);
        let mut ratios = Vec::new();
        for name in names {
            let w = pool.iter().find(|w| w.name == name).expect("workload");
            let basic = run_workload(w, "pythia", &run);
            let oblivious = run_workload(w, "pythia_bw_oblivious", &run);
            ratios.push(compare(&basic, &oblivious).speedup);
        }
        let g = geomean(&ratios);
        t.row(&[mtps.to_string(), format!("{:+.2}%", (g - 1.0) * 100.0)]);
    }
    println!("# Fig. 11 — bandwidth-oblivious Pythia normalized to basic Pythia\n");
    println!("{}", t.to_markdown());
}
