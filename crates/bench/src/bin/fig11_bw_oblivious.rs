//! Fig. 11 — bandwidth-oblivious Pythia vs. basic Pythia as DRAM bandwidth
//! scales (the benefit of inherent bandwidth awareness, §6.3.3). The sweep
//! baseline *is* basic Pythia, so every cell's speedup is the normalized
//! ratio directly.

use pythia_bench::{figures, threads};
use pythia_stats::report::Table;
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig11")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    let mut t = Table::new(&["MTPS", "oblivious vs basic (%)"]);
    for (mtps, geo) in r.aggregate(Key::Config, Value::Speedup) {
        t.row(&[mtps, format!("{:+.2}%", (geo - 1.0) * 100.0)]);
    }
    println!("# Fig. 11 — bandwidth-oblivious Pythia normalized to basic Pythia\n");
    println!("{}", t.to_markdown());
}
