//! Fig. 20 — sensitivity of Pythia's performance to the exploration rate ε
//! and the learning rate α.

use pythia::runner::{build_pythia_with, run_traces_with, run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_core::PythiaConfig;
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let (wu, me) = budget(Budget::Sweep);
    let run = RunSpec::single_core().with_budget(wu, me);
    let names = [
        "459.GemsFDTD-765B",
        "462.libquantum-714B",
        "482.sphinx3-417B",
        "Ligra-CC",
        "429.mcf-184B",
    ];
    let pool = all_suites();

    let eval = |mutate: &dyn Fn(&mut PythiaConfig)| -> f64 {
        let mut speeds = Vec::new();
        for name in names {
            let w = pool.iter().find(|w| w.name == name).unwrap();
            let baseline = run_workload(w, "none", &run);
            let trace = w.trace((wu + me) as usize);
            let mut cfg = PythiaConfig::basic();
            mutate(&mut cfg);
            let report =
                run_traces_with(vec![trace], &run, move |_| build_pythia_with(cfg.clone()));
            speeds.push(compare(&baseline, &report).speedup);
        }
        geomean(&speeds)
    };

    println!("# Fig. 20(a) — sensitivity to exploration rate ε\n");
    let mut t = Table::new(&["epsilon", "geomean speedup"]);
    for eps in [1e-5f32, 1e-4, 1e-3, 2e-3, 1e-2, 1e-1, 0.5, 1.0] {
        let s = eval(&|c: &mut PythiaConfig| c.epsilon = eps);
        t.row(&[format!("{eps:e}"), format!("{s:.3}")]);
    }
    println!("{}", t.to_markdown());

    println!("# Fig. 20(b) — sensitivity to learning rate α\n");
    let mut t = Table::new(&["alpha", "geomean speedup"]);
    for alpha in [1e-5f32, 1e-4, 1e-3, 0.0065, 1e-2, 1e-1, 1.0] {
        let s = eval(&|c: &mut PythiaConfig| c.alpha = alpha);
        t.row(&[format!("{alpha:e}"), format!("{s:.3}")]);
    }
    println!("{}", t.to_markdown());
}
