//! Fig. 20 — sensitivity of Pythia's performance to the exploration rate ε
//! and the learning rate α, each swept as inline Pythia variants.

use pythia_bench::{figures, threads};
use pythia_stats::report::Table;
use pythia_sweep::{Key, Value};

fn main() {
    let specs = figures::specs("fig20").expect("registered figure");
    let threads = threads();

    println!("# Fig. 20(a) — sensitivity to exploration rate ε\n");
    let a = pythia_sweep::run(&specs[0], threads).expect("valid sweep");
    let mut t = Table::new(&["epsilon", "geomean speedup"]);
    for (eps, geo) in a.aggregate(Key::Prefetcher, Value::Speedup) {
        t.row(&[eps, format!("{geo:.3}")]);
    }
    println!("{}", t.to_markdown());

    println!("# Fig. 20(b) — sensitivity to learning rate α\n");
    let b = pythia_sweep::run(&specs[1], threads).expect("valid sweep");
    let mut t = Table::new(&["alpha", "geomean speedup"]);
    for (alpha, geo) in b.aggregate(Key::Prefetcher, Value::Speedup) {
        t.row(&[alpha, format!("{geo:.3}")]);
    }
    println!("{}", t.to_markdown());
}
