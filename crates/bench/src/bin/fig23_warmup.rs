//! Fig. 23 (App. B.6) — sensitivity to the number of warmup instructions.

use pythia::runner::{run_workload, RunSpec};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let names = [
        "459.GemsFDTD-765B",
        "462.libquantum-714B",
        "482.sphinx3-417B",
        "Ligra-CC",
        "429.mcf-184B",
    ];
    let pool = all_suites();
    let prefetchers = ["spp", "bingo", "mlop", "pythia"];
    let mut t = Table::new(&["warmup", "spp", "bingo", "mlop", "pythia"]);
    for warmup in [0u64, 25_000, 50_000, 100_000, 200_000] {
        let run = RunSpec::single_core().with_budget(warmup, 400_000);
        let mut per_pf = vec![Vec::new(); prefetchers.len()];
        for name in names {
            let w = pool.iter().find(|w| w.name == name).unwrap();
            let baseline = run_workload(w, "none", &run);
            for (pi, p) in prefetchers.iter().enumerate() {
                per_pf[pi].push(compare(&baseline, &run_workload(w, p, &run)).speedup);
            }
        }
        let mut row = vec![warmup.to_string()];
        row.extend(per_pf.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    println!("# Fig. 23 — sensitivity to warmup instructions\n");
    println!("{}", t.to_markdown());
}
