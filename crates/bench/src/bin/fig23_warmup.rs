//! Fig. 23 (App. B.6) — sensitivity to the number of warmup instructions,
//! swept as configuration points with fixed measure budgets.

use pythia_bench::{figures, threads};
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig23")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    println!("# Fig. 23 — sensitivity to warmup instructions\n");
    println!(
        "{}",
        r.pivot(Key::Config, Key::Prefetcher, Value::Speedup)
            .to_markdown()
    );
}
