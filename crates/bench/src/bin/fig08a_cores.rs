//! Fig. 8(a) — geomean speedup vs. core count (1–12) with the Table 5
//! per-core-count DRAM channel scaling.

use pythia::runner::RunSpec;
use pythia_bench::{budget, multi_core_speedups, Budget};
use pythia_stats::report::Table;
use pythia_workloads::mixes;

fn main() {
    let prefetchers = ["spp", "bingo", "mlop", "spp+ppf", "pythia"];
    let mut t = Table::new(&["cores", "spp", "bingo", "mlop", "spp+ppf", "pythia"]);
    let (w, m) = budget(Budget::MultiCore);
    for cores in [1usize, 2, 4, 8, 12] {
        let run = RunSpec::multi_core(cores).with_budget(w, m);
        let ms = mixes(cores, 4, 42);
        let speedups = multi_core_speedups(&ms, &prefetchers, &run);
        let mut row = vec![cores.to_string()];
        row.extend(speedups.iter().map(|(_, s)| format!("{s:.3}")));
        t.row(&row);
    }
    println!("# Fig. 8(a) — speedup vs core count\n");
    println!("{}", t.to_markdown());
}
