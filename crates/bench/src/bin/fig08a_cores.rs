//! Fig. 8(a) — geomean speedup vs. core count (1–12) with the Table 5
//! per-core-count DRAM channel scaling.

use pythia_bench::{figures, threads};
use pythia_sweep::engine::run_all;
use pythia_sweep::{Key, Value};

fn main() {
    let specs = figures::specs("fig08a").expect("registered figure");
    let r = run_all("fig08a", &specs, threads()).expect("valid sweep");
    println!("# Fig. 8(a) — speedup vs core count\n");
    println!(
        "{}",
        r.pivot(Key::Config, Key::Prefetcher, Value::Speedup)
            .to_markdown()
    );
}
