//! Fig. 16 — feature-optimized Pythia on SPEC06 (§6.6.2): per-workload
//! selection of the best feature combination from a candidate shortlist.

use pythia::runner::{build_pythia_with, run_traces_with, run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_core::{ControlFlow, DataFlow, Feature, PythiaConfig};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::suites::spec06;

fn main() {
    let (wu, me) = budget(Budget::Sweep);
    let run = RunSpec::single_core().with_budget(wu, me);
    // Candidate feature vectors: the basic pair plus alternatives from the
    // Table 3 space (a shortlist keeps the search tractable; the full
    // exploration lives in tab02_dse).
    let candidates: Vec<Vec<Feature>> = vec![
        vec![Feature::PC_DELTA, Feature::LAST_4_DELTAS],
        vec![Feature::PC_DELTA],
        vec![Feature::LAST_4_DELTAS],
        vec![
            Feature {
                control: ControlFlow::Pc,
                data: DataFlow::PageOffset,
            },
            Feature::LAST_4_DELTAS,
        ],
        vec![
            Feature::PC_DELTA,
            Feature {
                control: ControlFlow::None,
                data: DataFlow::LastFourOffsets,
            },
        ],
    ];
    let mut t = Table::new(&["workload", "basic", "feature-optimized", "gain"]);
    let mut basics = Vec::new();
    let mut opts = Vec::new();
    for w in spec06() {
        let baseline = run_workload(&w, "none", &run);
        let basic = compare(&baseline, &run_workload(&w, "pythia", &run)).speedup;
        let mut best = f64::MIN;
        for features in &candidates {
            let trace = w.trace((wu + me) as usize);
            let cfg = PythiaConfig::tuned().with_features(features.clone());
            let report =
                run_traces_with(vec![trace], &run, move |_| build_pythia_with(cfg.clone()));
            best = best.max(compare(&baseline, &report).speedup);
        }
        basics.push(basic);
        opts.push(best);
        t.row(&[
            w.name.clone(),
            format!("{basic:.3}"),
            format!("{best:.3}"),
            format!("{:+.1}%", (best / basic - 1.0) * 100.0),
        ]);
    }
    t.row(&[
        "GEOMEAN".into(),
        format!("{:.3}", geomean(&basics)),
        format!("{:.3}", geomean(&opts)),
        format!("{:+.1}%", (geomean(&opts) / geomean(&basics) - 1.0) * 100.0),
    ]);
    println!("# Fig. 16 — basic vs feature-optimized Pythia on SPEC06\n");
    println!("{}", t.to_markdown());
}
