//! Fig. 16 — feature-optimized Pythia on SPEC06 (§6.6.2): per-workload
//! selection of the best feature combination from a candidate shortlist,
//! all candidates swept as inline Pythia variants in one campaign.

use pythia_bench::{figures, threads};
use pythia_stats::metrics::geomean;
use pythia_stats::report::Table;

fn main() {
    let spec = figures::specs("fig16")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");

    let mut t = Table::new(&["workload", "basic", "feature-optimized", "gain"]);
    let mut basics = Vec::new();
    let mut opts = Vec::new();
    let units: Vec<String> = r.baselines.iter().map(|b| b.unit.clone()).collect();
    for unit in &units {
        let basic = r
            .cell(unit, "pythia", "base")
            .expect("cell")
            .metrics
            .speedup;
        let best = r
            .cells
            .iter()
            .filter(|c| &c.unit == unit && c.prefetcher.starts_with("feat:"))
            .map(|c| c.metrics.speedup)
            .fold(f64::MIN, f64::max);
        basics.push(basic);
        opts.push(best);
        t.row(&[
            unit.clone(),
            format!("{basic:.3}"),
            format!("{best:.3}"),
            format!("{:+.1}%", (best / basic - 1.0) * 100.0),
        ]);
    }
    t.row(&[
        "GEOMEAN".into(),
        format!("{:.3}", geomean(&basics)),
        format!("{:.3}", geomean(&opts)),
        format!("{:+.1}%", (geomean(&opts) / geomean(&basics) - 1.0) * 100.0),
    ]);
    println!("# Fig. 16 — basic vs feature-optimized Pythia on SPEC06\n");
    println!("{}", t.to_markdown());
}
