//! Figs. 17/18 — per-trace performance line graphs (s-curves): speedups of
//! every prefetcher on every workload, sorted by Pythia's speedup.

use pythia::runner::run_workload;
use pythia_bench::{spec, Budget};
use pythia_stats::metrics::compare;
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let run = spec(Budget::Sweep);
    let prefetchers = ["spp", "bingo", "mlop", "pythia"];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for w in all_suites() {
        let baseline = run_workload(&w, "none", &run);
        let mut speeds = Vec::new();
        for p in prefetchers {
            speeds.push(compare(&baseline, &run_workload(&w, p, &run)).speedup);
        }
        rows.push((w.name.clone(), speeds));
    }
    rows.sort_by(|a, b| a.1[3].partial_cmp(&b.1[3]).unwrap());
    let mut t = Table::new(&["workload", "spp", "bingo", "mlop", "pythia"]);
    for (name, speeds) in &rows {
        let mut row = vec![name.clone()];
        row.extend(speeds.iter().map(|s| format!("{s:.3}")));
        t.row(&row);
    }
    println!("# Fig. 17 — single-core s-curve (sorted by Pythia speedup)\n");
    println!("{}", t.to_markdown());
    let above: usize = rows.iter().filter(|(_, s)| s[3] > 1.0).count();
    println!("Pythia speeds up {above}/{} workloads", rows.len());
}
