//! Figs. 17/18 — per-trace performance line graphs (s-curves): speedups of
//! every prefetcher on every workload, sorted by Pythia's speedup.

use pythia_bench::figures::HEADLINE_PREFETCHERS;
use pythia_bench::{figures, threads};
use pythia_stats::report::Table;

fn main() {
    let spec = figures::specs("fig17")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");

    let mut rows: Vec<(String, Vec<f64>)> = r
        .baselines
        .iter()
        .map(|b| {
            let speeds: Vec<f64> = HEADLINE_PREFETCHERS
                .iter()
                .map(|p| r.cell(&b.unit, p, "base").expect("cell").metrics.speedup)
                .collect();
            (b.unit.clone(), speeds)
        })
        .collect();
    rows.sort_by(|a, b| a.1[3].total_cmp(&b.1[3]));

    let mut t = Table::new(&["workload", "spp", "bingo", "mlop", "pythia"]);
    for (name, speeds) in &rows {
        let mut row = vec![name.clone()];
        row.extend(speeds.iter().map(|s| format!("{s:.3}")));
        t.row(&row);
    }
    println!("# Fig. 17 — single-core s-curve (sorted by Pythia speedup)\n");
    println!("{}", t.to_markdown());
    let above: usize = rows.iter().filter(|(_, s)| s[3] > 1.0).count();
    println!("Pythia speeds up {above}/{} workloads", rows.len());
}
