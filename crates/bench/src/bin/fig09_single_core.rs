//! Fig. 9 — single-core performance: (a) per-suite speedups of SPP, Bingo,
//! MLOP and Pythia; (b) the prefetcher-combination ladder
//! (St, St+S, ..., St+S+B+D+M) against Pythia.

use pythia::runner::run_workload;
use pythia_bench::{single_core_suite_speedups, spec, Budget};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::{all_suites, Suite};

fn main() {
    let run = spec(Budget::Headline);
    let suites = [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::Cloudsuite,
    ];

    println!("# Fig. 9(a) — single-core per-suite geomean speedup\n");
    let s = single_core_suite_speedups(&suites, &["spp", "bingo", "mlop", "pythia"], &run);
    println!("{}", s.table().to_markdown());

    println!("# Fig. 9(b) — prefetcher-combination ladder (single-core)\n");
    let ladder = ["st", "st+s", "st+s+b", "st+s+b+d", "st+s+b+d+m", "pythia"];
    let mut per_pf = vec![Vec::new(); ladder.len()];
    for w in all_suites() {
        let baseline = run_workload(&w, "none", &run);
        for (pi, p) in ladder.iter().enumerate() {
            per_pf[pi].push(compare(&baseline, &run_workload(&w, p, &run)).speedup);
        }
    }
    let mut t = Table::new(&["configuration", "geomean speedup"]);
    for (p, v) in ladder.iter().zip(&per_pf) {
        t.row(&[p.to_string(), format!("{:.3}", geomean(v))]);
    }
    println!("{}", t.to_markdown());
}
