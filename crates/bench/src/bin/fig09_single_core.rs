//! Fig. 9 — single-core performance: (a) per-suite speedups of SPP, Bingo,
//! MLOP and Pythia; (b) the prefetcher-combination ladder
//! (St, St+S, ..., St+S+B+D+M) against Pythia.

use pythia_bench::{figures, threads};
use pythia_stats::report::Table;
use pythia_sweep::{Key, Value};

fn main() {
    let specs = figures::specs("fig09").expect("registered figure");
    let threads = threads();

    println!("# Fig. 9(a) — single-core per-suite geomean speedup\n");
    let a = pythia_sweep::run(&specs[0], threads).expect("valid sweep");
    println!(
        "{}",
        a.pivot_with_total(Key::Group, Key::Prefetcher, Value::Speedup, Some("GEOMEAN"))
            .to_markdown()
    );

    println!("# Fig. 9(b) — prefetcher-combination ladder (single-core)\n");
    let b = pythia_sweep::run(&specs[1], threads).expect("valid sweep");
    let mut t = Table::new(&["configuration", "geomean speedup"]);
    for (label, geo) in b.aggregate(Key::Prefetcher, Value::Speedup) {
        t.row(&[label, format!("{geo:.3}")]);
    }
    println!("{}", t.to_markdown());
}
