//! Fig. 10 — four-core performance: (a) per-suite speedups of homogeneous
//! mixes; (b) the combination ladder in the bandwidth-constrained four-core
//! system.

use pythia_bench::{figures, threads};
use pythia_stats::report::Table;
use pythia_sweep::{Key, Value};

fn main() {
    let specs = figures::specs("fig10").expect("registered figure");
    let threads = threads();

    println!("# Fig. 10(a) — four-core per-suite geomean speedup (homogeneous mixes)\n");
    let a = pythia_sweep::run(&specs[0], threads).expect("valid sweep");
    println!(
        "{}",
        a.pivot_with_total(Key::Group, Key::Prefetcher, Value::Speedup, Some("GEOMEAN"))
            .to_markdown()
    );

    println!("# Fig. 10(b) — combination ladder (four-core heterogeneous mixes)\n");
    let b = pythia_sweep::run(&specs[1], threads).expect("valid sweep");
    let mut t = Table::new(&["configuration", "geomean speedup"]);
    for (label, geo) in b.aggregate(Key::Prefetcher, Value::Speedup) {
        t.row(&[label, format!("{geo:.3}")]);
    }
    println!("{}", t.to_markdown());
}
