//! Fig. 10 — four-core performance: (a) per-suite speedups; (b) the
//! combination ladder in the bandwidth-constrained four-core system.

use pythia::runner::{run_mix, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::{mixes, suite, Suite};

fn main() {
    let (wu, me) = budget(Budget::MultiCore);
    let run = RunSpec::multi_core(4).with_budget(wu, me);

    println!("# Fig. 10(a) — four-core per-suite geomean speedup (homogeneous mixes)\n");
    let prefetchers = ["spp", "bingo", "mlop", "pythia"];
    let suites = [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::Cloudsuite,
    ];
    let mut t = Table::new(&["suite", "spp", "bingo", "mlop", "pythia"]);
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); prefetchers.len()];
    for s in suites {
        let mut per_pf = vec![Vec::new(); prefetchers.len()];
        // Homogeneous 4-copy mixes of a subset of each suite (cost control).
        for w in suite(s).into_iter().step_by(3) {
            let ws: Vec<_> = (0..4)
                .map(|i| {
                    let mut c = w.clone();
                    c.spec.seed += i as u64 * 7919;
                    c
                })
                .collect();
            let baseline = run_mix(&ws, "none", &run);
            for (pi, p) in prefetchers.iter().enumerate() {
                let sp = compare(&baseline, &run_mix(&ws, p, &run)).speedup;
                per_pf[pi].push(sp);
                all[pi].push(sp);
            }
        }
        let mut row = vec![s.label().to_string()];
        row.extend(per_pf.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    row.extend(all.iter().map(|v| format!("{:.3}", geomean(v))));
    t.row(&row);
    println!("{}", t.to_markdown());

    println!("# Fig. 10(b) — combination ladder (four-core heterogeneous mixes)\n");
    let ladder = ["st", "st+s", "st+s+b", "st+s+b+d", "st+s+b+d+m", "pythia"];
    let ms = mixes(4, 5, 77);
    let mut per_pf = vec![Vec::new(); ladder.len()];
    for (_, ws) in &ms {
        let baseline = run_mix(ws, "none", &run);
        for (pi, p) in ladder.iter().enumerate() {
            per_pf[pi].push(compare(&baseline, &run_mix(ws, p, &run)).speedup);
        }
    }
    let mut t = Table::new(&["configuration", "geomean speedup"]);
    for (p, v) in ladder.iter().zip(&per_pf) {
        t.row(&[p.to_string(), format!("{:.3}", geomean(v))]);
    }
    println!("{}", t.to_markdown());
}
