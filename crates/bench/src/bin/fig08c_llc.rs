//! Fig. 8(c) — geomean speedup vs. LLC size (256 KB – 4 MB, single core).

use pythia::runner::{run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_sim::config::SystemConfig;
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let prefetchers = ["spp", "bingo", "mlop", "spp+ppf", "pythia"];
    let names = [
        "462.libquantum-714B",
        "459.GemsFDTD-765B",
        "482.sphinx3-417B",
        "PARSEC-Facesim",
        "429.mcf-184B",
        "Ligra-CC",
        "483.xalancbmk-736B",
        "cassandra",
    ];
    let pool = all_suites();
    let (wu, me) = budget(Budget::Sweep);
    let mut t = Table::new(&["LLC", "spp", "bingo", "mlop", "spp+ppf", "pythia"]);
    for kb in [256u64, 512, 1024, 2048, 4096] {
        let run = RunSpec::single_core()
            .with_system(SystemConfig::single_core_with_llc_bytes(kb * 1024))
            .with_budget(wu, me);
        let mut per_pf = vec![Vec::new(); prefetchers.len()];
        for name in names {
            let w = pool.iter().find(|w| w.name == name).expect("workload");
            let baseline = run_workload(w, "none", &run);
            for (pi, p) in prefetchers.iter().enumerate() {
                per_pf[pi].push(compare(&baseline, &run_workload(w, p, &run)).speedup);
            }
        }
        let mut row = vec![format!("{kb}KB")];
        row.extend(per_pf.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    println!("# Fig. 8(c) — speedup vs LLC size (single core)\n");
    println!("{}", t.to_markdown());
}
