//! Fig. 8(c) — geomean speedup vs. LLC size (256 KB – 4 MB, single core).

use pythia_bench::{figures, threads};
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig08c")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    println!("# Fig. 8(c) — speedup vs LLC size (single core)\n");
    println!(
        "{}",
        r.pivot(Key::Config, Key::Prefetcher, Value::Speedup)
            .to_markdown()
    );
}
