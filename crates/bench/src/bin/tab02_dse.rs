//! Table 2 / Fig. 19 — automated design-space exploration (§4.3), scaled
//! down: feature selection over a candidate shortlist, action-list pruning,
//! and the two-phase hyperparameter grid search.

use pythia::runner::{build_pythia_with, run_traces_with, run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_core::tuning::{self, HyperPoint};
use pythia_core::{ControlFlow, DataFlow, Feature, PythiaConfig};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let (wu, me) = budget(Budget::MultiCore); // cheapest budget: many evals
    let run = RunSpec::single_core().with_budget(wu, me);
    let names = [
        "459.GemsFDTD-765B",
        "462.libquantum-714B",
        "482.sphinx3-417B",
        "429.mcf-184B",
    ];
    let pool = all_suites();
    let baselines: Vec<_> = names
        .iter()
        .map(|n| {
            let w = pool.iter().find(|w| w.name == *n).unwrap();
            (w.clone(), run_workload(w, "none", &run))
        })
        .collect();

    let eval_cfg = |cfg: &PythiaConfig| -> f64 {
        let mut speeds = Vec::new();
        for (w, baseline) in &baselines {
            let trace = w.trace((wu + me) as usize);
            let c = cfg.clone();
            let report = run_traces_with(vec![trace], &run, move |_| build_pythia_with(c.clone()));
            speeds.push(compare(baseline, &report).speedup);
        }
        geomean(&speeds)
    };

    // ---- Feature selection (Fig. 19 / Table 2 features) ----
    println!("# §4.3.1 feature selection (shortlisted candidates)\n");
    let candidates = vec![
        Feature::PC_DELTA,
        Feature::LAST_4_DELTAS,
        Feature {
            control: ControlFlow::Pc,
            data: DataFlow::PageOffset,
        },
        Feature {
            control: ControlFlow::None,
            data: DataFlow::LastFourOffsets,
        },
        Feature {
            control: ControlFlow::Pc,
            data: DataFlow::CachelineAddress,
        },
        Feature {
            control: ControlFlow::PcPath,
            data: DataFlow::Delta,
        },
    ];
    let result = tuning::select_features(&candidates, |features| {
        eval_cfg(&PythiaConfig::tuned().with_features(features.to_vec()))
    });
    let mut t = Table::new(&["state vector", "geomean speedup"]);
    let mut sorted = result.evaluated.clone();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (features, score) in sorted.iter().take(8) {
        let label: Vec<String> = features.iter().map(|f| f.label()).collect();
        t.row(&[label.join(" ; "), format!("{score:.3}")]);
    }
    println!("{}", t.to_markdown());
    let winner: Vec<String> = result.winner.iter().map(|f| f.label()).collect();
    println!("winner: {}\n", winner.join(" ; "));

    // ---- Action pruning (§4.3.2) ----
    println!("# §4.3.2 action pruning (from a 33-offset list)\n");
    let full: Vec<i32> = (-8..=24).collect();
    let pruned = tuning::prune_actions(&full, 0.005, |actions| {
        eval_cfg(&PythiaConfig::tuned().with_actions(actions.to_vec()))
    });
    println!(
        "pruned list ({} offsets): {:?}",
        pruned.winner.len(),
        pruned.winner
    );
    println!(
        "score {:.3} (full-list score {:.3})\n",
        pruned.score, pruned.evaluated[0].1
    );

    // ---- Hyperparameter grid (§4.3.3) ----
    println!("# §4.3.3 hyperparameter grid search (4 levels, top-5 confirm)\n");
    let grid = tuning::exponential_grid(4);
    let eval_hp = |p: &HyperPoint| {
        let mut cfg = PythiaConfig::tuned();
        cfg.alpha = p.alpha;
        cfg.gamma = p.gamma;
        cfg.epsilon = p.epsilon;
        eval_cfg(&cfg)
    };
    let result = tuning::grid_search(&grid, 5, eval_hp, eval_hp);
    println!(
        "winner: alpha={:.4} gamma={:.3} epsilon={:.4} (speedup {:.3})",
        result.winner.alpha, result.winner.gamma, result.winner.epsilon, result.score
    );
    println!("(paper's Table 2: alpha=0.0065 gamma=0.556 epsilon=0.002)");
}
