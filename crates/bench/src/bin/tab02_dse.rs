//! Table 2 / Fig. 19 — automated design-space exploration (§4.3), scaled
//! down: feature selection over a candidate shortlist, action-list pruning,
//! and the two-phase hyperparameter grid search. Every objective evaluation
//! is a sweep-engine campaign, so each eval fans out over the worker pool —
//! and the §4.3.3 screening phase runs as one big parallel grid.

use pythia_bench::figures::{dse_eval_spec, dse_units, hyper_label};
use pythia_bench::{figures, threads};
use pythia_core::tuning::{self, HyperPoint};
use pythia_core::{ControlFlow, DataFlow, Feature, PythiaConfig};
use pythia_stats::report::Table;
use pythia_sweep::{Key, Value};

fn main() {
    let threads = threads();
    let units = dse_units();

    // Objective: geomean speedup of one config over the DSE cross-section,
    // computed by a small sweep campaign. Every evaluation shares the same
    // baseline grid, so a cross-campaign cache keeps the hundreds of
    // greedy-search evals from re-simulating it each time.
    let baselines = std::cell::RefCell::new(pythia_sweep::BaselineCache::new());
    let eval_cfg = |cfg: &PythiaConfig| -> f64 {
        let spec = dse_eval_spec("candidate", cfg.clone(), &units);
        let r = pythia_sweep::run_cached(&spec, threads, &mut baselines.borrow_mut())
            .expect("valid sweep");
        r.aggregate(Key::Prefetcher, Value::Speedup)[0].1
    };

    // ---- Feature selection (Fig. 19 / Table 2 features) ----
    println!("# §4.3.1 feature selection (shortlisted candidates)\n");
    let candidates = vec![
        Feature::PC_DELTA,
        Feature::LAST_4_DELTAS,
        Feature {
            control: ControlFlow::Pc,
            data: DataFlow::PageOffset,
        },
        Feature {
            control: ControlFlow::None,
            data: DataFlow::LastFourOffsets,
        },
        Feature {
            control: ControlFlow::Pc,
            data: DataFlow::CachelineAddress,
        },
        Feature {
            control: ControlFlow::PcPath,
            data: DataFlow::Delta,
        },
    ];
    let result = tuning::select_features(&candidates, |features| {
        eval_cfg(&PythiaConfig::tuned().with_features(features.to_vec()))
    });
    let mut t = Table::new(&["state vector", "geomean speedup"]);
    let mut sorted = result.evaluated.clone();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (features, score) in sorted.iter().take(8) {
        let label: Vec<String> = features.iter().map(|f| f.label()).collect();
        t.row(&[label.join(" ; "), format!("{score:.3}")]);
    }
    println!("{}", t.to_markdown());
    let winner: Vec<String> = result.winner.iter().map(|f| f.label()).collect();
    println!("winner: {}\n", winner.join(" ; "));

    // ---- Action pruning (§4.3.2) ----
    println!("# §4.3.2 action pruning (from a 33-offset list)\n");
    let full: Vec<i32> = (-8..=24).collect();
    let pruned = tuning::prune_actions(&full, 0.005, |actions| {
        eval_cfg(&PythiaConfig::tuned().with_actions(actions.to_vec()))
    });
    println!(
        "pruned list ({} offsets): {:?}",
        pruned.winner.len(),
        pruned.winner
    );
    println!(
        "score {:.3} (full-list score {:.3})\n",
        pruned.score, pruned.evaluated[0].1
    );

    // ---- Hyperparameter grid (§4.3.3) ----
    println!("# §4.3.3 hyperparameter grid search (4 levels, top-5 confirm)\n");
    // Phase 1 (screening): the whole grid as ONE parallel campaign — the
    // registered `tab02` figure.
    let screen_spec = figures::specs("tab02")
        .expect("registered figure")
        .remove(0);
    let screened = pythia_sweep::run(&screen_spec, threads).expect("valid sweep");
    let scores: std::collections::BTreeMap<String, f64> = screened
        .aggregate(Key::Prefetcher, Value::Speedup)
        .into_iter()
        .collect();
    let grid = tuning::exponential_grid(4);
    let screen = |p: &HyperPoint| scores[&hyper_label(p)];
    // Phase 2 (confirm): re-evaluate the survivors with fresh campaigns.
    let confirm = |p: &HyperPoint| {
        let mut cfg = PythiaConfig::tuned();
        cfg.alpha = p.alpha;
        cfg.gamma = p.gamma;
        cfg.epsilon = p.epsilon;
        eval_cfg(&cfg)
    };
    let result = tuning::grid_search(&grid, 5, screen, confirm);
    println!(
        "winner: alpha={:.4} gamma={:.3} epsilon={:.4} (speedup {:.3})",
        result.winner.alpha, result.winner.gamma, result.winner.epsilon, result.score
    );
    println!("(paper's Table 2: alpha=0.0065 gamma=0.556 epsilon=0.002)");
}
