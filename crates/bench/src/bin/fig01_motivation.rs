//! Fig. 1 — motivation: coverage, overprediction and IPC improvement of
//! SPP, Bingo and Pythia on six example workloads.

use pythia::runner::run_workload;
use pythia_bench::{spec, Budget};
use pythia_stats::metrics::compare;
use pythia_stats::report::{frac_pct, pct, Table};
use pythia_workloads::suites;

fn main() {
    let run = spec(Budget::Headline);
    let pool: Vec<_> = suites::all_suites();
    let names = [
        "482.sphinx3-417B",
        "PARSEC-Canneal",
        "PARSEC-Facesim",
        "459.GemsFDTD-765B",
        "Ligra-CC",
        "Ligra-PageRankDelta",
    ];
    let prefetchers = ["spp", "bingo", "pythia"];
    let mut t = Table::new(&[
        "workload",
        "prefetcher",
        "coverage",
        "overprediction",
        "IPC improvement",
    ]);
    for name in names {
        let w = pool
            .iter()
            .find(|w| w.name == name)
            .expect("known workload");
        let baseline = run_workload(w, "none", &run);
        for p in prefetchers {
            let m = compare(&baseline, &run_workload(w, p, &run));
            t.row(&[
                name.to_string(),
                p.to_string(),
                frac_pct(m.coverage),
                frac_pct(m.overprediction),
                pct(m.speedup),
            ]);
        }
    }
    println!("# Fig. 1 — motivational coverage/overprediction/performance\n");
    println!("{}", t.to_markdown());
}
