//! Fig. 1 — motivation: coverage, overprediction and IPC improvement of
//! SPP, Bingo and Pythia on six example workloads.

use pythia_bench::{figures, threads};
use pythia_stats::report::{frac_pct, pct, Table};

fn main() {
    let spec = figures::specs("fig01")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    let mut t = Table::new(&[
        "workload",
        "prefetcher",
        "coverage",
        "overprediction",
        "IPC improvement",
    ]);
    // Cells arrive in grid order (workload-major), which is the table order.
    for c in &r.cells {
        t.row(&[
            c.unit.clone(),
            c.prefetcher.clone(),
            frac_pct(c.metrics.coverage),
            frac_pct(c.metrics.overprediction),
            pct(c.metrics.speedup),
        ]);
    }
    println!("# Fig. 1 — motivational coverage/overprediction/performance\n");
    println!("{}", t.to_markdown());
}
