//! Fig. 14 — Ligra-CC: fraction of runtime in DRAM-bandwidth buckets and
//! IPC improvement for each prefetcher (incl. basic and strict Pythia).

use pythia_bench::{figures, threads};
use pythia_stats::report::{pct, Table};
use pythia_sweep::RawSummary;

fn main() {
    let spec = figures::specs("fig14")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");

    let bucket_row = |raw: &RawSummary| -> Vec<String> {
        let b = raw.bw_bucket_windows;
        let total: u64 = b.iter().sum::<u64>().max(1);
        b.iter()
            .map(|x| format!("{:.0}%", *x as f64 * 100.0 / total as f64))
            .collect()
    };

    let mut t = Table::new(&[
        "config",
        "<25%",
        "25-50%",
        "50-75%",
        ">=75%",
        "IPC improvement",
    ]);
    let baseline = &r.baselines[0];
    let mut row = vec!["baseline".to_string()];
    row.extend(bucket_row(&baseline.raw));
    row.push("+0.0%".into());
    t.row(&row);
    for c in &r.cells {
        let mut row = vec![c.prefetcher.clone()];
        row.extend(bucket_row(&c.raw));
        row.push(pct(c.metrics.speedup));
        t.row(&row);
    }
    println!("# Fig. 14 — Ligra-CC bandwidth-bucket residency and performance\n");
    println!("{}", t.to_markdown());
}
