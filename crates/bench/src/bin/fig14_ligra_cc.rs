//! Fig. 14 — Ligra-CC: fraction of runtime in DRAM-bandwidth buckets and
//! IPC improvement for each prefetcher (incl. basic and strict Pythia).

use pythia::runner::{run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_stats::metrics::compare;
use pythia_stats::report::{pct, Table};
use pythia_workloads::all_suites;

fn main() {
    let (wu, me) = budget(Budget::Sweep);
    let run = RunSpec::single_core().with_budget(wu, me);
    let pool = all_suites();
    let w = pool
        .iter()
        .find(|w| w.name == "Ligra-CC")
        .expect("Ligra-CC");
    let baseline = run_workload(w, "none", &run);
    let mut t = Table::new(&[
        "config",
        "<25%",
        "25-50%",
        "50-75%",
        ">=75%",
        "IPC improvement",
    ]);
    let bucket_row = |r: &pythia_sim::stats::SimReport| -> Vec<String> {
        let b = r.dram.bw_bucket_windows;
        let total: u64 = b.iter().sum::<u64>().max(1);
        b.iter()
            .map(|x| format!("{:.0}%", *x as f64 * 100.0 / total as f64))
            .collect()
    };
    let mut row = vec!["baseline".to_string()];
    row.extend(bucket_row(&baseline));
    row.push("+0.0%".into());
    t.row(&row);
    for p in ["spp", "bingo", "mlop", "pythia", "pythia_strict"] {
        let r = run_workload(w, p, &run);
        let m = compare(&baseline, &r);
        let mut row = vec![p.to_string()];
        row.extend(bucket_row(&r));
        row.push(pct(m.speedup));
        t.row(&row);
    }
    println!("# Fig. 14 — Ligra-CC bandwidth-bucket residency and performance\n");
    println!("{}", t.to_markdown());
}
