//! Fig. 8(b) — geomean speedup vs. DRAM bandwidth (150–9600 MTPS,
//! single channel, single core).

use pythia::runner::run_workload;
use pythia::runner::RunSpec;
use pythia_bench::{budget, Budget};
use pythia_sim::config::SystemConfig;
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let prefetchers = ["spp", "bingo", "mlop", "spp+ppf", "pythia"];
    // A representative cross-section (full suites at every MTPS would be
    // slow; the shape comes from the mix of streaming/spatial/irregular).
    let names = [
        "462.libquantum-714B",
        "459.GemsFDTD-765B",
        "482.sphinx3-417B",
        "PARSEC-Facesim",
        "429.mcf-184B",
        "Ligra-CC",
        "Ligra-PageRank",
        "436.cactusADM-97B",
        "cassandra",
        "470.lbm-164B",
    ];
    let pool = all_suites();
    let (wu, me) = budget(Budget::Sweep);
    let mut t = Table::new(&["MTPS", "spp", "bingo", "mlop", "spp+ppf", "pythia"]);
    for mtps in [150u64, 300, 600, 1200, 2400, 4800, 9600] {
        let run = RunSpec::single_core()
            .with_system(SystemConfig::single_core_with_mtps(mtps))
            .with_budget(wu, me);
        let mut per_pf = vec![Vec::new(); prefetchers.len()];
        for name in names {
            let w = pool.iter().find(|w| w.name == name).expect("workload");
            let baseline = run_workload(w, "none", &run);
            for (pi, p) in prefetchers.iter().enumerate() {
                let m = compare(&baseline, &run_workload(w, p, &run));
                per_pf[pi].push(m.speedup);
            }
        }
        let mut row = vec![mtps.to_string()];
        row.extend(per_pf.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    println!("# Fig. 8(b) — speedup vs DRAM MTPS (single core, 1 channel)\n");
    println!("{}", t.to_markdown());
}
