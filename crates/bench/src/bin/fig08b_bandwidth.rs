//! Fig. 8(b) — geomean speedup vs. DRAM bandwidth (150–9600 MTPS,
//! single channel, single core).

use pythia_bench::{figures, threads};
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig08b")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    println!("# Fig. 8(b) — speedup vs DRAM MTPS (single core, 1 channel)\n");
    println!(
        "{}",
        r.pivot(Key::Config, Key::Prefetcher, Value::Speedup)
            .to_markdown()
    );
}
