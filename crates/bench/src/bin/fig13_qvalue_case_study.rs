//! Fig. 13 — Q-value learning curves for the GemsFDTD case study (§6.5):
//! the `PC+Delta` feature value of the page-trigger access should learn to
//! favour offset +23 as its Q-value rises above the alternatives.

use pythia_core::{Feature, FeatureContext, Pythia, PythiaConfig};
use pythia_sim::prefetch::{DemandAccess, FillEvent, Prefetcher, SystemFeedback};
use pythia_stats::report::Table;
use pythia_workloads::generators::{PatternKind, TraceSpec};

fn main() {
    let mut pythia = Pythia::new(PythiaConfig::basic());
    let trace = TraceSpec::new(
        "459.GemsFDTD-1320B",
        PatternKind::PageVisit {
            offsets: vec![0, 23],
        },
    )
    .with_instructions(3_000_000)
    .generate();

    // Mirror the agent's own feature extraction to find the probed feature
    // value: the trigger PC's first-touch (delta 0) PC+Delta value.
    let mut probe_ctx = FeatureContext::new();
    let mut probe_value: Option<u64> = None;

    let feedback = SystemFeedback::idle();
    let mut samples: Vec<(u64, Vec<f32>)> = Vec::new();
    let mut last_line = u64::MAX;
    let mut cycle = 0u64;
    let probe_actions = [1i32, 3, 22, 23];
    let cfg = PythiaConfig::basic();

    for r in &trace {
        let Some(mem) = r.mem else { continue };
        let line = mem.addr >> 6;
        if line == last_line {
            continue; // model the L1 filtering element re-accesses
        }
        last_line = line;
        cycle += 40;
        let access = DemandAccess {
            pc: r.pc,
            addr: mem.addr,
            line,
            is_write: mem.is_write,
            cycle,
            missed: true,
        };
        probe_ctx.update(&access);
        if probe_value.is_none() && r.pc == 0x436a81 && probe_ctx.delta() == 0 {
            probe_value = Some(probe_ctx.value(&Feature::PC_DELTA));
        }
        let out = pythia.on_demand(&access, &feedback);
        for req in out {
            pythia.on_fill(&FillEvent {
                line: req.line,
                ready_at: cycle + 190,
                prefetched: true,
            });
        }
        if let Some(v) = probe_value {
            let updates = pythia.qvstore().updates();
            if updates > 0 && updates.is_multiple_of(1000) {
                let q = pythia.probe_feature_q(0, v);
                samples.push((updates, q));
            }
        }
    }

    println!("# Fig. 13 — Q-value curves of the PC+Delta trigger feature (GemsFDTD-like)\n");
    let mut headers = vec!["q-updates".to_string()];
    headers.extend(probe_actions.iter().map(|a| format!("Q(+{a})")));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr);
    samples.dedup_by_key(|(u, _)| *u);
    for (u, q) in samples.iter().step_by(2) {
        let mut row = vec![u.to_string()];
        for a in probe_actions {
            let idx = cfg
                .actions
                .iter()
                .position(|&x| x == a)
                .expect("case-study offsets are Table 2 actions");
            row.push(format!("{:+.2}", q[idx]));
        }
        t.row(&row);
    }
    println!("{}", t.to_markdown());
    let hist = pythia.action_histogram();
    let total: u64 = hist.iter().sum();
    let plus23 = hist[cfg
        .actions
        .iter()
        .position(|&x| x == 23)
        .expect("+23 is a Table 2 action")];
    println!(
        "offset +23 selected {plus23}/{total} times ({:.1}% of selections)",
        plus23 as f64 * 100.0 / total as f64
    );
}
