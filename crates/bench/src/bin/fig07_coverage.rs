//! Fig. 7 — single-core coverage and overprediction per suite, measured at
//! the LLC–main-memory boundary.

use pythia_bench::{evaluate, spec, weighted_coverage, Budget};
use pythia_stats::metrics::geomean;
use pythia_stats::report::{frac_pct, Table};
use pythia_workloads::Suite;

fn main() {
    let run = spec(Budget::Headline);
    let prefetchers = ["spp", "bingo", "mlop", "pythia"];
    let suites = [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::Cloudsuite,
    ];
    let mut t = Table::new(&["suite", "prefetcher", "coverage", "overprediction"]);
    let mut avg: Vec<(String, Vec<f64>, Vec<f64>)> = prefetchers
        .iter()
        .map(|p| (p.to_string(), vec![], vec![]))
        .collect();
    for s in suites {
        let results = evaluate(&[s], &prefetchers, &run);
        for (pi, p) in prefetchers.iter().enumerate() {
            let (cov, over) = weighted_coverage(&results, p);
            t.row(&[
                s.label().to_string(),
                p.to_string(),
                frac_pct(cov),
                frac_pct(over),
            ]);
            avg[pi].1.push(cov);
            avg[pi].2.push(over);
        }
    }
    for (p, covs, overs) in &avg {
        t.row(&[
            "AVG".into(),
            p.clone(),
            frac_pct(covs.iter().sum::<f64>() / covs.len() as f64),
            frac_pct(overs.iter().sum::<f64>() / overs.len() as f64),
        ]);
    }
    let _ = geomean(&[]);
    println!("# Fig. 7 — coverage and overprediction per suite (single-core)\n");
    println!("{}", t.to_markdown());
}
