//! Fig. 7 — single-core coverage and overprediction per suite, measured at
//! the LLC–main-memory boundary.

use pythia_bench::figures::HEADLINE_PREFETCHERS;
use pythia_bench::{figures, threads};
use pythia_stats::report::{frac_pct, Table};

fn main() {
    let spec = figures::specs("fig07")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");

    let suites = r.distinct(pythia_sweep::Key::Group);

    let mut t = Table::new(&["suite", "prefetcher", "coverage", "overprediction"]);
    let mut avg: Vec<(String, Vec<f64>, Vec<f64>)> = HEADLINE_PREFETCHERS
        .iter()
        .map(|p| (p.to_string(), vec![], vec![]))
        .collect();
    for s in &suites {
        let per_suite = r.filter(|c| &c.group == s);
        for (pi, p) in HEADLINE_PREFETCHERS.iter().enumerate() {
            let (cov, over) = per_suite.weighted_coverage(p);
            t.row(&[s.clone(), p.to_string(), frac_pct(cov), frac_pct(over)]);
            avg[pi].1.push(cov);
            avg[pi].2.push(over);
        }
    }
    for (p, covs, overs) in &avg {
        t.row(&[
            "AVG".into(),
            p.clone(),
            frac_pct(covs.iter().sum::<f64>() / covs.len() as f64),
            frac_pct(overs.iter().sum::<f64>() / overs.len() as f64),
        ]);
    }
    println!("# Fig. 7 — coverage and overprediction per suite (single-core)\n");
    println!("{}", t.to_markdown());
}
