//! Fig. 12 — performance on unseen traces (CVP-2-like categories never used
//! for tuning), single-core and four-core.

use pythia::runner::{run_mix, run_workload, RunSpec};
use pythia_bench::{budget, spec, Budget};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::suites::cvp_unseen;

fn main() {
    let prefetchers = ["spp", "bingo", "mlop", "pythia"];
    let run1 = spec(Budget::Sweep);

    println!("# Fig. 12(a) — unseen traces, single-core\n");
    let mut t = Table::new(&["category", "spp", "bingo", "mlop", "pythia"]);
    let unseen = cvp_unseen();
    let categories = ["crypto", "int", "fp", "server"];
    let mut all = vec![Vec::new(); prefetchers.len()];
    for cat in categories {
        let mut per_pf = vec![Vec::new(); prefetchers.len()];
        for w in unseen.iter().filter(|w| w.name.starts_with(cat)) {
            let baseline = run_workload(w, "none", &run1);
            for (pi, p) in prefetchers.iter().enumerate() {
                let sp = compare(&baseline, &run_workload(w, p, &run1)).speedup;
                per_pf[pi].push(sp);
                all[pi].push(sp);
            }
        }
        let mut row = vec![cat.to_string()];
        row.extend(per_pf.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    row.extend(all.iter().map(|v| format!("{:.3}", geomean(v))));
    t.row(&row);
    println!("{}", t.to_markdown());

    println!("# Fig. 12(b) — unseen traces, four-core (homogeneous mixes)\n");
    let (wu, me) = budget(Budget::MultiCore);
    let run4 = RunSpec::multi_core(4).with_budget(wu, me);
    let mut t = Table::new(&["category", "spp", "bingo", "mlop", "pythia"]);
    for cat in categories {
        let mut per_pf = vec![Vec::new(); prefetchers.len()];
        for w in unseen.iter().filter(|w| w.name.starts_with(cat)).take(1) {
            let ws: Vec<_> = (0..4)
                .map(|i| {
                    let mut c = w.clone();
                    c.spec.seed += i as u64 * 131;
                    c
                })
                .collect();
            let baseline = run_mix(&ws, "none", &run4);
            for (pi, p) in prefetchers.iter().enumerate() {
                per_pf[pi].push(compare(&baseline, &run_mix(&ws, p, &run4)).speedup);
            }
        }
        let mut row = vec![cat.to_string()];
        row.extend(per_pf.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    println!("{}", t.to_markdown());
}
