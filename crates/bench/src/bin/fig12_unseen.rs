//! Fig. 12 — performance on unseen traces (CVP-2-like categories never used
//! for tuning), single-core and four-core.

use pythia_bench::{figures, threads};
use pythia_sweep::{Key, Value};

fn main() {
    let specs = figures::specs("fig12").expect("registered figure");
    let threads = threads();

    println!("# Fig. 12(a) — unseen traces, single-core\n");
    let a = pythia_sweep::run(&specs[0], threads).expect("valid sweep");
    println!(
        "{}",
        a.pivot_with_total(Key::Group, Key::Prefetcher, Value::Speedup, Some("GEOMEAN"))
            .to_markdown()
    );

    println!("# Fig. 12(b) — unseen traces, four-core (homogeneous mixes)\n");
    let b = pythia_sweep::run(&specs[1], threads).expect("valid sweep");
    println!(
        "{}",
        b.pivot(Key::Group, Key::Prefetcher, Value::Speedup)
            .to_markdown()
    );
}
