//! Tables 4, 7 and 8 — storage, prefetcher configurations, and area/power
//! overheads.

use pythia::runner::build_prefetcher;
use pythia_core::hw_model::{anchors, estimate_overhead, storage};
use pythia_core::pipeline::SearchPipeline;
use pythia_core::PythiaConfig;
use pythia_stats::report::Table;

fn main() {
    let cfg = PythiaConfig::basic();

    println!("# Table 4 — Pythia storage overhead\n");
    let s = storage(&cfg);
    let mut t = Table::new(&["structure", "size"]);
    t.row(&[
        "QVStore".into(),
        format!("{:.1} KB", s.qvstore_bits as f64 / 8192.0),
    ]);
    t.row(&["EQ".into(), format!("{:.1} KB", s.eq_bits as f64 / 8192.0)]);
    t.row(&["Total".into(), format!("{:.1} KB", s.total_kb())]);
    println!("{}", t.to_markdown());

    println!("# Table 7 — evaluated prefetcher storage (our estimates)\n");
    let mut t = Table::new(&["prefetcher", "estimated size", "paper"]);
    let paper: &[(&str, &str)] = &[
        ("spp", "6.2 KB"),
        ("bingo", "46 KB"),
        ("mlop", "8 KB"),
        ("dspatch", "3.6 KB"),
        ("spp+ppf", "39.3 KB"),
    ];
    for (name, paper_kb) in paper {
        let p = build_prefetcher(name, 0).expect("Table 4 names are registry prefetchers");
        t.row(&[
            name.to_string(),
            format!("{:.1} KB", p.storage_bits() as f64 / 8192.0),
            paper_kb.to_string(),
        ]);
    }
    let pythia = build_prefetcher("pythia", 0).expect("pythia is a runner prefetcher");
    t.row(&[
        "pythia".into(),
        format!("{:.1} KB", pythia.storage_bits() as f64 / 8192.0),
        "25.5 KB".into(),
    ]);
    println!("{}", t.to_markdown());

    println!("# Table 8 — area & power overhead (anchored to §6.7 synthesis)\n");
    let o = estimate_overhead(&cfg);
    let mut t = Table::new(&["processor", "area overhead", "power overhead"]);
    // Die areas/power implied by the paper's percentages.
    for (name, cores, die_mm2, tdp_w) in [
        ("4-core Skylake D-2123IT (60W)", 4usize, 128.2, 60.0),
        ("18-core Skylake 6150 (165W)", 18, 485.0, 165.0),
        ("28-core Skylake 8180M (205W)", 28, 694.0, 205.0),
    ] {
        let area_pct = o.area_overhead_pct(cores, die_mm2);
        let power_pct = o.power_mw * cores as f64 / (tdp_w * 1000.0) * 100.0;
        t.row(&[
            name.into(),
            format!("{area_pct:.2}%"),
            format!("{power_pct:.2}%"),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "Pythia per core: {:.2} mm^2, {:.2} mW (anchors: {:.2} mm^2, {:.2} mW)",
        o.area_mm2,
        o.power_mw,
        anchors::AREA_MM2,
        anchors::POWER_MW
    );

    println!("\n# §4.2.2 pipelined QVStore search\n");
    let pl = SearchPipeline::new(&cfg);
    println!(
        "search latency: {} cycles (16 actions, 5-stage pipeline)",
        pl.search_latency()
    );
    let full = PythiaConfig::basic().with_actions(PythiaConfig::full_actions());
    println!(
        "unpruned action list would take {} cycles",
        SearchPipeline::new(&full).search_latency()
    );
}
