//! Fig. 22 (App. B.5) — Pythia vs. the IBM POWER7-style adaptive stream
//! prefetcher per suite, single-core.

use pythia_bench::{figures, threads};
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("fig22")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    println!("# Fig. 22 — Pythia vs POWER7-adaptive (single-core)\n");
    println!(
        "{}",
        r.pivot_with_total(Key::Group, Key::Prefetcher, Value::Speedup, Some("GEOMEAN"))
            .to_markdown()
    );
}
