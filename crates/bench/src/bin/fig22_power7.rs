//! Fig. 22 (App. B.5) — Pythia vs. the IBM POWER7-style adaptive stream
//! prefetcher per suite, single-core.

use pythia_bench::{single_core_suite_speedups, spec, Budget};
use pythia_workloads::Suite;

fn main() {
    let run = spec(Budget::Sweep);
    let suites = [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::Cloudsuite,
    ];
    let s = single_core_suite_speedups(&suites, &["power7", "pythia"], &run);
    println!("# Fig. 22 — Pythia vs POWER7-adaptive (single-core)\n");
    println!("{}", s.table().to_markdown());
}
