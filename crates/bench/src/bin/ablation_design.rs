//! Ablation benches for the design choices DESIGN.md calls out:
//! (1) max vs. mean vault combination (Eqn. 3), (2) tile-coding plane
//! count, (3) pruned vs. full action list, (4) EQ size, (5) optimistic vs.
//! paper-literal Q-init, (6) the re-derived vs. paper learning rate, and
//! (7) binary vs. graded timeliness rewards (footnote 3).

use pythia::runner::{build_pythia_with, run_traces_with, run_workload, RunSpec};
use pythia_bench::{budget, Budget};
use pythia_core::{PythiaConfig, VaultCombine};
use pythia_stats::metrics::{compare, geomean};
use pythia_stats::report::Table;
use pythia_workloads::all_suites;

fn main() {
    let (wu, me) = budget(Budget::Sweep);
    let run = RunSpec::single_core().with_budget(wu, me);
    let names = [
        "459.GemsFDTD-765B",
        "462.libquantum-714B",
        "482.sphinx3-417B",
        "436.cactusADM-97B",
        "429.mcf-184B",
        "Ligra-CC",
    ];
    let pool = all_suites();
    let baselines: Vec<_> = names
        .iter()
        .map(|n| {
            let w = pool.iter().find(|w| w.name == *n).unwrap();
            (w.clone(), run_workload(w, "none", &run))
        })
        .collect();
    let eval = |cfg: PythiaConfig| -> f64 {
        let mut speeds = Vec::new();
        for (w, baseline) in &baselines {
            let trace = w.trace((wu + me) as usize);
            let c = cfg.clone();
            let report = run_traces_with(vec![trace], &run, move |_| build_pythia_with(c.clone()));
            speeds.push(compare(baseline, &report).speedup);
        }
        geomean(&speeds)
    };

    let mut t = Table::new(&["variant", "geomean speedup"]);
    t.row(&[
        "tuned (max, 3 planes, 16 actions, EQ 256)".into(),
        format!("{:.3}", eval(PythiaConfig::tuned())),
    ]);

    t.row(&[
        "paper-literal alpha = 0.0065".into(),
        format!("{:.3}", eval(PythiaConfig::basic())),
    ]);

    let mut c = PythiaConfig::tuned();
    c.q_init_override = Some(1.0 / (1.0 - c.gamma));
    t.row(&[
        "paper-literal Q-init 1/(1-gamma)".into(),
        format!("{:.3}", eval(c)),
    ]);

    let mut c = PythiaConfig::tuned();
    c.graded_timeliness = true;
    t.row(&[
        "graded timeliness (footnote 3)".into(),
        format!("{:.3}", eval(c)),
    ]);

    let mut c = PythiaConfig::tuned();
    c.vault_combine = VaultCombine::Mean;
    t.row(&["mean vault combination".into(), format!("{:.3}", eval(c))]);

    let mut c = PythiaConfig::tuned();
    c.planes = 1;
    t.row(&["1 plane per vault".into(), format!("{:.3}", eval(c))]);

    let c = PythiaConfig::tuned().with_actions(PythiaConfig::full_actions());
    t.row(&[
        "full [-63,63] action list".into(),
        format!("{:.3}", eval(c)),
    ]);

    let mut c = PythiaConfig::tuned();
    c.eq_size = 64;
    t.row(&["EQ of 64 entries".into(), format!("{:.3}", eval(c))]);

    let mut c = PythiaConfig::tuned();
    c.eq_size = 1024;
    t.row(&["EQ of 1024 entries".into(), format!("{:.3}", eval(c))]);

    println!("# Ablations of Pythia design choices\n");
    println!("{}", t.to_markdown());
}
