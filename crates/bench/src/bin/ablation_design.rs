//! Ablation benches for the design choices DESIGN.md calls out:
//! (1) max vs. mean vault combination (Eqn. 3), (2) tile-coding plane
//! count, (3) pruned vs. full action list, (4) EQ size, (5) optimistic vs.
//! paper-literal Q-init, (6) the re-derived vs. paper learning rate, and
//! (7) binary vs. graded timeliness rewards (footnote 3) — one sweep
//! campaign with every variant as an inline Pythia configuration.

use pythia_bench::{figures, threads};
use pythia_stats::report::Table;
use pythia_sweep::{Key, Value};

fn main() {
    let spec = figures::specs("ablation")
        .expect("registered figure")
        .remove(0);
    let r = pythia_sweep::run(&spec, threads()).expect("valid sweep");
    let mut t = Table::new(&["variant", "geomean speedup"]);
    for (variant, geo) in r.aggregate(Key::Prefetcher, Value::Speedup) {
        t.row(&[variant, format!("{geo:.3}")]);
    }
    println!("# Ablations of Pythia design choices\n");
    println!("{}", t.to_markdown());
}
