//! Criterion microbenchmarks: per-demand cost of each prefetcher and the
//! QVStore lookup/update primitives (the software analogue of the §4.2.2
//! latency discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pythia::runner::build_prefetcher;
use pythia_sim::prefetch::{DemandAccess, SystemFeedback};

fn demand(i: u64) -> DemandAccess {
    let addr = (i % 4096) * 64 + (i / 4096) * 4096 * 64;
    DemandAccess {
        pc: 0x400000 + (i % 8) * 4,
        addr,
        line: addr >> 6,
        is_write: false,
        cycle: i * 40,
        missed: true,
    }
}

fn bench_prefetchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("on_demand");
    for name in [
        "stride", "streamer", "spp", "bingo", "mlop", "dspatch", "ipcp", "pythia",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            let mut p = build_prefetcher(name, 1).unwrap();
            let fb = SystemFeedback::idle();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                std::hint::black_box(p.on_demand(&demand(i), &fb));
            });
        });
    }
    group.finish();
}

fn bench_qvstore(c: &mut Criterion) {
    use pythia_core::{PythiaConfig, QvStore};
    let cfg = PythiaConfig::basic();
    let mut store = QvStore::new(&cfg);
    let s1 = vec![123u64, 456u64];
    let s2 = vec![124u64, 457u64];
    c.bench_function("qvstore_argmax", |b| {
        b.iter(|| std::hint::black_box(store.argmax(std::hint::black_box(&s1))))
    });
    c.bench_function("qvstore_sarsa_update", |b| {
        b.iter(|| store.sarsa_update(&s1, 3, 12.0, &s2, 5, cfg.alpha, cfg.gamma))
    });
}

criterion_group!(benches, bench_prefetchers, bench_qvstore);
criterion_main!(benches);
