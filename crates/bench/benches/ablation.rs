//! Criterion ablation benches: QVStore search cost for pruned vs. full
//! action lists (the latency rationale of §4.3.2) and plane-count scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pythia_core::{PythiaConfig, QvStore};

fn bench_action_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("argmax_by_action_count");
    for (label, actions) in [
        ("pruned_16", PythiaConfig::basic_actions()),
        ("full_127", PythiaConfig::full_actions()),
    ] {
        let cfg = PythiaConfig::basic().with_actions(actions);
        let store = QvStore::new(&cfg);
        let state = vec![99u64, 7u64];
        group.bench_with_input(BenchmarkId::from_parameter(label), &store, |b, store| {
            b.iter(|| std::hint::black_box(store.argmax(std::hint::black_box(&state))))
        });
    }
    group.finish();
}

fn bench_planes(c: &mut Criterion) {
    let mut group = c.benchmark_group("argmax_by_planes");
    for planes in [1usize, 3, 6] {
        let mut cfg = PythiaConfig::basic();
        cfg.planes = planes;
        let store = QvStore::new(&cfg);
        let state = vec![99u64, 7u64];
        group.bench_with_input(BenchmarkId::from_parameter(planes), &store, |b, store| {
            b.iter(|| std::hint::black_box(store.argmax(std::hint::black_box(&state))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_action_list, bench_planes);
criterion_main!(benches);
