//! Build prefetchers by name — the equivalent of ChampSim's configuration
//! strings, used by the experiment harness and the examples.

use pythia_sim::prefetch::{NoPrefetcher, Prefetcher};

use crate::bingo::Bingo;
use crate::cp_hw::CpHw;
use crate::dspatch::DsPatch;
use crate::ipcp::Ipcp;
use crate::mlop::Mlop;
use crate::multi::Multi;
use crate::next_line::NextLine;
use crate::power7::Power7;
use crate::ppf::SppPpf;
use crate::spp::Spp;
use crate::streamer::Streamer;
use crate::stride::StridePrefetcher;

/// Names accepted by [`build`].
pub fn available() -> &'static [&'static str] {
    &[
        "none",
        "next_line",
        "stride",
        "streamer",
        "spp",
        "spp+ppf",
        "bingo",
        "mlop",
        "dspatch",
        "ipcp",
        "cp_hw",
        "power7",
        "stride+streamer",
        "st",
        "st+s",
        "st+s+b",
        "st+s+b+d",
        "st+s+b+d+m",
    ]
}

/// Builds a prefetcher by name. `seed` feeds stochastic prefetchers (CP-HW)
/// so multi-core instances diverge deterministically.
///
/// Returns `None` for unknown names; see [`available`].
pub fn build(name: &str, seed: u64) -> Option<Box<dyn Prefetcher>> {
    let p: Box<dyn Prefetcher> = match name {
        "none" => Box::new(NoPrefetcher::new()),
        "next_line" => Box::new(NextLine::default()),
        "stride" | "st" => Box::new(StridePrefetcher::default()),
        "streamer" => Box::new(Streamer::default()),
        "spp" => Box::new(Spp::new()),
        "spp+ppf" => Box::new(SppPpf::new()),
        "bingo" => Box::new(Bingo::new()),
        "mlop" => Box::new(Mlop::new()),
        "dspatch" => Box::new(DsPatch::new()),
        "ipcp" => Box::new(Ipcp::new()),
        "cp_hw" => Box::new(CpHw::new(seed)),
        "power7" => Box::new(Power7::new()),
        "stride+streamer" => Box::new(Multi::new(vec![
            Box::new(StridePrefetcher::default()),
            Box::new(Streamer::default()),
        ])),
        "st+s" => ladder(&["stride", "spp"], seed)?,
        "st+s+b" => ladder(&["stride", "spp", "bingo"], seed)?,
        "st+s+b+d" => ladder(&["stride", "spp", "bingo", "dspatch"], seed)?,
        "st+s+b+d+m" => ladder(&["stride", "spp", "bingo", "dspatch", "mlop"], seed)?,
        _ => return None,
    };
    Some(p)
}

/// Builds a [`Multi`] from component names (the Fig. 9(b)/10(b) ladders).
pub fn ladder(names: &[&str], seed: u64) -> Option<Box<dyn Prefetcher>> {
    let parts = names
        .iter()
        .map(|n| build(n, seed))
        .collect::<Option<Vec<_>>>()?;
    Some(Box::new(Multi::new(parts)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_advertised_names_build() {
        for name in available() {
            assert!(build(name, 1).is_some(), "{name} failed to build");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("does-not-exist", 0).is_none());
    }

    #[test]
    fn ladder_composes() {
        let p = ladder(&["stride", "spp"], 0).unwrap();
        assert_eq!(p.name(), "stride+spp");
    }

    #[test]
    fn table7_storage_sizes_are_ordered_sensibly() {
        // Table 7: Bingo (46 KB) is the largest, SPP+PPF (39.3 KB) exceeds
        // plain SPP (6.2 KB), and every prefetcher fits in tens of KB.
        let bits = |n: &str| build(n, 0).unwrap().storage_bits();
        assert!(bits("bingo") > bits("spp"));
        assert!(bits("bingo") > bits("mlop"));
        assert!(bits("spp+ppf") > bits("spp"));
        for name in ["spp", "bingo", "mlop", "dspatch", "spp+ppf", "ipcp"] {
            let kb = bits(name) as f64 / 8192.0;
            assert!(
                kb > 0.5 && kb < 128.0,
                "{name}: {kb} KB out of plausible range"
            );
        }
    }
}
