//! IPCP: Instruction-Pointer Classifier Prefetcher (Pakalapati & Panda,
//! ISCA 2020) — winner of the third data prefetching championship, used as a
//! multi-level baseline in §6.2.4 of the Pythia paper.
//!
//! IPCP classifies each load PC into one of three classes and prefetches
//! with a class-specific strategy:
//!
//! * **CS** (constant stride): the PC strides regularly; prefetch
//!   `stride x degree` ahead.
//! * **CPLX** (complex): the PC's delta sequence is irregular but
//!   signature-predictable; prefetch along the predicted delta chain.
//! * **GS** (global stream): the PC participates in a dense region sweep;
//!   prefetch deep sequential lines.

use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::{hash_bits, push_in_page};

const IPT_ENTRIES: usize = 256;
const CSPT_ENTRIES: usize = 128;
const CS_DEGREE: i32 = 3;
const GS_DEGREE: i32 = 6;
const REGION_TRACKERS: usize = 8;
/// A region is "dense" (global stream) once this many distinct lines hit.
const GS_DENSITY: u32 = 24;

#[derive(Debug, Clone, Copy, Default)]
struct IpEntry {
    tag: u16,
    valid: bool,
    last_line: u64,
    stride: i32,
    conf: u8,
    signature: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct CsptEntry {
    delta: i8,
    conf: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct RegionTracker {
    valid: bool,
    page: u64,
    bitmap: u64,
    lru: u64,
}

/// The IPCP prefetcher.
#[derive(Debug)]
pub struct Ipcp {
    ipt: Vec<IpEntry>,
    cspt: Vec<CsptEntry>,
    regions: [RegionTracker; REGION_TRACKERS],
    clock: u64,
    stats: PrefetcherStats,
}

impl Ipcp {
    /// Creates an IPCP instance.
    pub fn new() -> Self {
        Self {
            ipt: vec![IpEntry::default(); IPT_ENTRIES],
            cspt: vec![CsptEntry::default(); CSPT_ENTRIES],
            regions: [RegionTracker::default(); REGION_TRACKERS],
            clock: 0,
            stats: PrefetcherStats::default(),
        }
    }

    fn ip_slot(pc: u64) -> (usize, u16) {
        (hash_bits(pc, 8), ((pc >> 8) & 0xffff) as u16)
    }

    #[inline]
    fn sig_update(sig: u16, delta: i32) -> u16 {
        ((sig << 2) ^ (delta as u16 & 0x3f)) & 0x7f
    }

    /// Tracks region density for global-stream detection; returns `true`
    /// when the access's page has become dense.
    fn region_dense(&mut self, page: u64, offset: u64) -> bool {
        self.clock += 1;
        if let Some(r) = self.regions.iter_mut().find(|r| r.valid && r.page == page) {
            r.bitmap |= 1 << offset;
            r.lru = self.clock;
            return r.bitmap.count_ones() >= GS_DENSITY;
        }
        let victim = self
            .regions
            .iter_mut()
            .min_by_key(|r| if r.valid { r.lru } else { 0 })
            .expect("non-empty trackers");
        *victim = RegionTracker {
            valid: true,
            page,
            bitmap: 1 << offset,
            lru: self.clock,
        };
        false
    }
}

impl Default for Ipcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Ipcp {
    fn name(&self) -> &str {
        "ipcp"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let (idx, tag) = Self::ip_slot(access.pc);
        let start = out.len();
        let dense = self.region_dense(access.page(), access.page_offset());

        let entry = &mut self.ipt[idx];
        if !entry.valid || entry.tag != tag {
            *entry = IpEntry {
                tag,
                valid: true,
                last_line: access.line,
                ..Default::default()
            };
            return;
        }

        let delta = (access.line as i64 - entry.last_line as i64).clamp(-63, 63) as i32;
        entry.last_line = access.line;
        if delta == 0 {
            return;
        }

        // CS training.
        if delta == entry.stride {
            entry.conf = (entry.conf + 1).min(3);
        } else {
            entry.conf = entry.conf.saturating_sub(1);
            if entry.conf == 0 {
                entry.stride = delta;
            }
        }

        // CPLX training: signature -> delta.
        let sig = entry.signature;
        entry.signature = Self::sig_update(sig, delta);
        let stride = entry.stride;
        let conf = entry.conf;
        let cur_sig = entry.signature;
        let c = &mut self.cspt[sig as usize % CSPT_ENTRIES];
        if c.delta == delta as i8 && c.conf > 0 {
            c.conf = (c.conf + 1).min(3);
        } else if c.conf == 0 {
            c.delta = delta as i8;
            c.conf = 1;
        } else {
            c.conf -= 1;
        }

        // Prediction: priority CS > CPLX > GS (per the original design).
        if conf >= 2 && stride != 0 {
            for d in 1..=CS_DEGREE {
                push_in_page(out, access.line, stride * d, true);
            }
        } else {
            let pred = self.cspt[cur_sig as usize % CSPT_ENTRIES];
            if pred.conf >= 2 && pred.delta != 0 {
                // Walk the complex chain up to 3 steps.
                let mut line = access.line;
                let mut sig = cur_sig;
                for _ in 0..3 {
                    let p = self.cspt[sig as usize % CSPT_ENTRIES];
                    if p.conf < 2 || p.delta == 0 {
                        break;
                    }
                    let rel = (line as i64 + p.delta as i64 - access.line as i64) as i32;
                    push_in_page(out, access.line, rel, true);
                    line = (line as i64 + p.delta as i64).max(0) as u64;
                    sig = Self::sig_update(sig, p.delta as i32);
                }
            } else if dense {
                let dir = if stride >= 0 { 1 } else { -1 };
                for d in 1..=GS_DEGREE {
                    push_in_page(out, access.line, dir * d, true);
                }
            }
        }

        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // IPT: tag(16)+v(1)+line(32)+stride(7)+conf(2)+sig(7)
        let ipt = IPT_ENTRIES as u64 * (16 + 1 + 32 + 7 + 2 + 7);
        // CSPT: delta(7)+conf(2)
        let cspt = CSPT_ENTRIES as u64 * (7 + 2);
        // Region trackers: page(36)+bitmap(64)+v(1)+lru(8)
        let rt = REGION_TRACKERS as u64 * (36 + 64 + 1 + 8);
        ipt + cspt + rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    #[test]
    fn cs_class_prefetches_strided() {
        let mut p = Ipcp::new();
        let mut last = Vec::new();
        for i in 0..10u64 {
            last = p.on_demand(&test_access(0x400100, i * 192), &SystemFeedback::idle());
        }
        assert!(!last.is_empty(), "stride-3 PC should classify CS");
        let base = pythia_sim::addr::line_of(9 * 192);
        assert_eq!(last[0].line, base + 3);
    }

    #[test]
    fn cplx_class_follows_signature_deltas() {
        let mut p = Ipcp::new();
        // Repeating delta pattern +1,+2,+1,+2 -- not constant-stride, so CS
        // confidence stays low, but the signature predicts it.
        let mut addrs = Vec::new();
        let mut line = 0u64;
        for i in 0..200 {
            addrs.push(line * 64);
            line += if i % 2 == 0 { 1 } else { 2 };
        }
        let mut issued = 0usize;
        for a in &addrs {
            issued += p
                .on_demand(&test_access(0x400200, *a), &SystemFeedback::idle())
                .len();
        }
        assert!(
            issued > 0,
            "CPLX class should eventually predict the delta chain"
        );
    }

    #[test]
    fn gs_class_detects_dense_regions() {
        let mut p = Ipcp::new();
        // Two PCs alternating over a dense sweep: per-PC stride is 2 so CS
        // may fire; use erratic per-PC deltas by interleaving three PCs.
        let pcs = [0x400300u64, 0x400304, 0x400308];
        let mut out_total = 0usize;
        for i in 0..64u64 {
            let pc = pcs[(i % 3) as usize];
            let out = p.on_demand(&test_access(pc, i * 64), &SystemFeedback::idle());
            out_total += out.len();
        }
        assert!(out_total > 0, "dense page sweep should trigger prefetching");
    }

    #[test]
    fn irregular_pcs_stay_quiet() {
        let mut p = Ipcp::new();
        let mut x = 99u64;
        let mut issued = 0usize;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x % 2048) * 4096 + ((x >> 40) % 64) * 64;
            issued += p
                .on_demand(&test_access(0x400400, addr), &SystemFeedback::idle())
                .len();
        }
        assert!(
            issued < 60,
            "random pointer traffic should rarely prefetch: {issued}"
        );
    }
}
