//! IBM POWER7-style adaptive stream prefetcher (Jiménez et al., TOPC 2014),
//! the comparison point of Appendix B.5 in the Pythia paper.
//!
//! A conventional stream detector feeds a global aggressiveness controller:
//! every epoch the controller inspects prefetch usefulness and ramps the
//! stream depth up or down through a fixed set of levels — the
//! "tune-aggressiveness-by-monitoring" adaptivity the paper contrasts with
//! Pythia's per-decision learning.

use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::push_in_page;

const STREAM_ENTRIES: usize = 16;
/// Depth levels the controller ramps through (0 = off .. 16 = deepest).
const DEPTH_LEVELS: [u32; 6] = [0, 1, 2, 4, 8, 16];
const EPOCH_DEMANDS: u64 = 2048;
/// Accuracy (per mille) above which depth ramps up.
const RAMP_UP_THRESHOLD: u64 = 550;
/// Accuracy (per mille) below which depth ramps down.
const RAMP_DOWN_THRESHOLD: u64 = 250;

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    valid: bool,
    page: u64,
    last_offset: i32,
    direction: i32,
    confirmed: bool,
    lru: u64,
}

/// The POWER7-style adaptive prefetcher.
#[derive(Debug)]
pub struct Power7 {
    streams: [StreamEntry; STREAM_ENTRIES],
    depth_level: usize,
    clock: u64,
    epoch_demands: u64,
    epoch_useful: u64,
    epoch_useless: u64,
    stats: PrefetcherStats,
}

impl Power7 {
    /// Creates a POWER7-style prefetcher starting at a middle depth.
    pub fn new() -> Self {
        Self {
            streams: [StreamEntry::default(); STREAM_ENTRIES],
            depth_level: 3, // depth 4
            clock: 0,
            epoch_demands: 0,
            epoch_useful: 0,
            epoch_useless: 0,
            stats: PrefetcherStats::default(),
        }
    }

    /// Current stream depth (for tests/diagnostics).
    pub fn depth(&self) -> u32 {
        DEPTH_LEVELS[self.depth_level]
    }

    fn end_epoch(&mut self) {
        let resolved = self.epoch_useful + self.epoch_useless;
        if resolved >= 32 {
            let accuracy = self.epoch_useful * 1000 / resolved;
            if accuracy >= RAMP_UP_THRESHOLD && self.depth_level + 1 < DEPTH_LEVELS.len() {
                self.depth_level += 1;
            } else if accuracy < RAMP_DOWN_THRESHOLD && self.depth_level > 0 {
                self.depth_level -= 1;
            }
        }
        self.epoch_demands = 0;
        self.epoch_useful = 0;
        self.epoch_useless = 0;
    }
}

impl Default for Power7 {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Power7 {
    fn name(&self) -> &str {
        "power7"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.clock += 1;
        self.epoch_demands += 1;
        if self.epoch_demands >= EPOCH_DEMANDS {
            self.end_epoch();
        }

        let page = access.page();
        let offset = access.page_offset() as i32;
        let start = out.len();

        if let Some(e) = self.streams.iter_mut().find(|e| e.valid && e.page == page) {
            e.lru = self.clock;
            let dir = (offset - e.last_offset).signum();
            if dir != 0 {
                if dir == e.direction {
                    e.confirmed = true;
                } else {
                    e.confirmed = false;
                    e.direction = dir;
                }
            }
            e.last_offset = offset;
            if e.confirmed {
                let depth = DEPTH_LEVELS[self.depth_level];
                let direction = e.direction;
                for d in 1..=depth as i32 {
                    push_in_page(out, access.line, direction * d, true);
                }
            }
        } else {
            let victim = self
                .streams
                .iter_mut()
                .min_by_key(|e| if e.valid { e.lru } else { 0 })
                .expect("non-empty streams");
            *victim = StreamEntry {
                valid: true,
                page,
                last_offset: offset,
                direction: 0,
                confirmed: false,
                lru: self.clock,
            };
        }
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
        self.epoch_useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
        self.epoch_useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // Streams: page(36)+off(7)+dir(2)+confirmed(1)+v(1)+lru(8)
        let st = STREAM_ENTRIES as u64 * (36 + 7 + 2 + 1 + 1 + 8);
        st + 3 * 16 // epoch counters + depth register
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    #[test]
    fn confirmed_stream_prefetches_at_current_depth() {
        let mut p = Power7::new();
        let mut last = Vec::new();
        for i in 0..5u64 {
            last = p.on_demand(&test_access(0x400000, i * 64), &SystemFeedback::idle());
        }
        assert_eq!(last.len(), p.depth() as usize);
    }

    #[test]
    fn depth_ramps_up_with_useful_feedback() {
        let mut p = Power7::new();
        let d0 = p.depth();
        for i in 0..3 * EPOCH_DEMANDS {
            let out = p.on_demand(
                &test_access(0x400000, (i % 60) * 64),
                &SystemFeedback::idle(),
            );
            for r in out {
                p.on_useful(r.line);
            }
        }
        assert!(
            p.depth() > d0,
            "depth should ramp up: {} -> {}",
            d0,
            p.depth()
        );
    }

    #[test]
    fn depth_ramps_down_with_useless_feedback() {
        let mut p = Power7::new();
        let d0 = p.depth();
        for i in 0..3 * EPOCH_DEMANDS {
            let out = p.on_demand(
                &test_access(0x400000, (i % 60) * 64),
                &SystemFeedback::idle(),
            );
            for r in out {
                p.on_useless(r.line);
            }
        }
        assert!(
            p.depth() < d0,
            "depth should ramp down: {} -> {}",
            d0,
            p.depth()
        );
    }

    #[test]
    fn depth_can_reach_zero_and_silence() {
        let mut p = Power7::new();
        for i in 0..10 * EPOCH_DEMANDS {
            let out = p.on_demand(
                &test_access(0x400000, (i % 60) * 64),
                &SystemFeedback::idle(),
            );
            for r in out {
                p.on_useless(r.line);
            }
        }
        assert_eq!(p.depth(), 0);
        let out = p.on_demand(&test_access(0x400000, 61 * 64), &SystemFeedback::idle());
        assert!(out.is_empty());
    }
}
