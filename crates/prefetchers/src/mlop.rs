//! Multi-Lookahead Offset Prefetcher (Shakerinava et al., third data
//! prefetching championship), configured per Table 7 of the Pythia paper:
//! 128-entry access-map table, 500-update evaluation rounds, degree 16.
//!
//! MLOP generalizes best-offset prefetching: for every candidate offset it
//! scores, over an evaluation round, how often the offset would have
//! predicted an observed access — at multiple lookahead levels — and then
//! selects one best offset *per lookahead level* (up to the degree). The
//! result is an aggressive multi-offset prefetcher with high coverage and
//! high overprediction, which is exactly the behaviour the paper contrasts
//! Pythia against in bandwidth-constrained systems.

use pythia_sim::addr;
use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::push_in_page;

const AMT_ENTRIES: usize = 128;
const ROUND_UPDATES: u32 = 500;
const MAX_DEGREE: usize = 16;
/// Candidate offsets: every non-zero offset in [-31, 31] (the DPC-3 MLOP
/// evaluates offsets within half a page around the demand).
const CANDIDATE_MIN: i32 = -31;
const CANDIDATE_MAX: i32 = 31;
const NUM_CANDIDATES: usize = (CANDIDATE_MAX - CANDIDATE_MIN + 1) as usize;

#[derive(Debug, Clone, Copy, Default)]
struct AmtEntry {
    valid: bool,
    page: u64,
    /// Lines demanded in this page (drives offset scoring).
    accessed: u64,
    /// Lines already prefetched (suppresses duplicate requests; never
    /// feeds the scores).
    prefetched: u64,
    lru: u64,
}

/// The MLOP prefetcher.
#[derive(Debug)]
pub struct Mlop {
    amt: Vec<AmtEntry>,
    scores: [u32; NUM_CANDIDATES],
    chosen: Vec<i32>,
    updates: u32,
    clock: u64,
    stats: PrefetcherStats,
}

impl Mlop {
    /// Creates an MLOP instance with the Table 7 configuration.
    pub fn new() -> Self {
        Self {
            amt: vec![AmtEntry::default(); AMT_ENTRIES],
            scores: [0; NUM_CANDIDATES],
            chosen: Vec::new(),
            updates: 0,
            clock: 0,
            stats: PrefetcherStats::default(),
        }
    }

    #[inline]
    fn candidate_index(offset: i32) -> usize {
        (offset - CANDIDATE_MIN) as usize
    }

    #[inline]
    fn candidate_offset(index: usize) -> i32 {
        index as i32 + CANDIDATE_MIN
    }

    /// Finishes an evaluation round: pick the best offset per lookahead
    /// level, i.e. the top-`MAX_DEGREE` scoring offsets above a noise floor.
    fn select_offsets(&mut self) {
        let floor = ROUND_UPDATES / 4; // an offset must predict >=25% of accesses
        let mut indexed: Vec<(usize, u32)> = self
            .scores
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, s)| s >= floor && Self::candidate_offset(i) != 0)
            .collect();
        indexed.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
        self.chosen = indexed
            .into_iter()
            .take(MAX_DEGREE)
            .map(|(i, _)| Self::candidate_offset(i))
            .collect();
        self.scores = [0; NUM_CANDIDATES];
        self.updates = 0;
    }

    /// The offsets currently armed (for tests/diagnostics).
    pub fn chosen_offsets(&self) -> &[i32] {
        &self.chosen
    }
}

impl Default for Mlop {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Mlop {
    fn name(&self) -> &str {
        "mlop"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.clock += 1;
        let page = access.page();
        let offset = access.page_offset() as i32;

        // Locate or allocate the page's access map.
        let pos = self.amt.iter().position(|e| e.valid && e.page == page);
        let idx = match pos {
            Some(i) => i,
            None => {
                let victim = self
                    .amt
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("AMT non-empty");
                self.amt[victim] = AmtEntry {
                    valid: true,
                    page,
                    accessed: 0,
                    prefetched: 0,
                    lru: self.clock,
                };
                victim
            }
        };
        self.amt[idx].lru = self.clock;
        let bitmap = self.amt[idx].accessed;

        // Score every candidate offset that would have predicted this access
        // from a previously-seen line in the same page.
        for cand in CANDIDATE_MIN..=CANDIDATE_MAX {
            if cand == 0 {
                continue;
            }
            let source = offset - cand;
            if (0..addr::LINES_PER_PAGE as i32).contains(&source) && bitmap & (1u64 << source) != 0
            {
                self.scores[Self::candidate_index(cand)] += 1;
            }
        }
        self.amt[idx].accessed |= 1u64 << offset;

        self.updates += 1;
        if self.updates >= ROUND_UPDATES {
            self.select_offsets();
        }

        // Prefetch with every armed offset, consulting the access map so
        // already-touched (or already-prefetched) lines are skipped — this
        // is MLOP's AMT check, without which it floods redundant requests.
        let start = out.len();
        let chosen = self.chosen.clone();
        let e = &self.amt[idx];
        let mut covered = e.accessed | e.prefetched;
        for d in chosen {
            let target = offset + d;
            if (0..addr::LINES_PER_PAGE as i32).contains(&target) && covered & (1u64 << target) == 0
            {
                push_in_page(out, access.line, d, true);
                covered |= 1u64 << target;
            }
        }
        self.amt[idx].prefetched = covered & !self.amt[idx].accessed;
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // AMT: page tag(36) + accessed(64) + prefetched(64) + valid(1) + lru(8)
        let amt = AMT_ENTRIES as u64 * (36 + 64 + 64 + 1 + 8);
        // Scores: 63 x 16-bit counters; chosen: 16 x 6-bit offsets.
        let scorer = NUM_CANDIDATES as u64 * 16 + MAX_DEGREE as u64 * 6;
        amt + scorer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    #[test]
    fn unit_stride_selects_positive_offsets() {
        let mut p = Mlop::new();
        // Stream sequentially over many pages: after a round, +1 (and
        // friends) should dominate the scores.
        for i in 0..2_000u64 {
            p.on_demand(&test_access(0x400000, i * 64), &SystemFeedback::idle());
        }
        assert!(
            !p.chosen_offsets().is_empty(),
            "round should have armed offsets"
        );
        assert!(
            p.chosen_offsets().contains(&1),
            "unit stride must arm +1: {:?}",
            p.chosen_offsets()
        );
        // All armed offsets should be positive for an ascending stream.
        assert!(p.chosen_offsets().iter().all(|&d| d > 0));
    }

    #[test]
    fn stride_two_selects_even_offsets() {
        let mut p = Mlop::new();
        for i in 0..2_000u64 {
            p.on_demand(&test_access(0x400000, i * 128), &SystemFeedback::idle());
        }
        assert!(p.chosen_offsets().contains(&2), "{:?}", p.chosen_offsets());
        // Odd offsets never predict a stride-2 stream.
        assert!(p.chosen_offsets().iter().all(|&d| d % 2 == 0));
    }

    #[test]
    fn issues_up_to_degree_requests() {
        let mut p = Mlop::new();
        for i in 0..2_000u64 {
            p.on_demand(&test_access(0x400000, i * 64), &SystemFeedback::idle());
        }
        let out = p.on_demand(&test_access(0x400000, 0x100_0000), &SystemFeedback::idle());
        assert!(out.len() <= MAX_DEGREE);
        assert!(!out.is_empty());
    }

    #[test]
    fn random_pattern_arms_nothing() {
        let mut p = Mlop::new();
        let mut x = 12345u64;
        for _ in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = x % 512;
            let off = (x >> 32) % 64;
            p.on_demand(
                &test_access(0x400000, page * 4096 + off * 64),
                &SystemFeedback::idle(),
            );
        }
        assert!(
            p.chosen_offsets().len() <= 2,
            "random traffic should arm few offsets: {:?}",
            p.chosen_offsets()
        );
    }

    #[test]
    fn storage_matches_table7_order() {
        let p = Mlop::new();
        let kb = p.storage_bits() as f64 / 8192.0;
        // Table 7 reports 8 KB.
        assert!(kb > 1.0 && kb < 16.0, "MLOP storage {kb} KB out of range");
    }
}
