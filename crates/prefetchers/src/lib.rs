//! # pythia-prefetchers
//!
//! From-scratch Rust implementations of the baseline hardware prefetchers
//! the Pythia paper (Bera et al., MICRO 2021) evaluates against (Table 7 and
//! appendices B.4/B.5):
//!
//! * [`spp`] — Signature Path Prefetcher (Kim et al., MICRO'16)
//! * [`ppf`] — SPP with the Perceptron Prefetch Filter (Bhatia et al., ISCA'19)
//! * [`bingo`] — Bingo spatial prefetcher (Bakhshalipour et al., HPCA'19)
//! * [`mlop`] — Multi-Lookahead Offset Prefetcher (Shakerinava et al., DPC-3)
//! * [`dspatch`] — Dual Spatial Pattern prefetcher (Bera et al., MICRO'19)
//! * [`ipcp`] — Instruction Pointer Classifier prefetcher (Pakalapati &
//!   Panda, ISCA'20)
//! * [`stride`] — PC-based stride prefetcher (Fu/Patel-style)
//! * [`streamer`] — next-N-line streamer with direction detection
//! * [`next_line`] — degree-1 next-line prefetcher
//! * [`cp_hw`] — the context prefetcher restricted to hardware contexts,
//!   i.e. a contextual-bandit (no long-term credit) RL prefetcher (App. B.4)
//! * [`power7`] — IBM POWER7-style adaptive stream prefetcher (App. B.5)
//! * [`multi`] — composition of several prefetchers (the St+S+B+D+M ladders
//!   of Figs. 9(b)/10(b))
//!
//! All of them implement [`pythia_sim::prefetch::Prefetcher`] and report a
//! storage estimate for the Table 7 reproduction.

pub mod bingo;
pub mod cp_hw;
pub mod dspatch;
pub mod ipcp;
pub mod mlop;
pub mod multi;
pub mod next_line;
pub mod power7;
pub mod ppf;
pub mod registry;
pub mod spp;
pub mod streamer;
pub mod stride;

pub use pythia_sim::prefetch::{
    DemandAccess, FillEvent, NoPrefetcher, PrefetchRequest, Prefetcher, SystemFeedback,
};
pub use registry::{available, build};

pub(crate) mod util {
    //! Small helpers shared by the prefetcher implementations.

    use pythia_sim::addr;
    use pythia_sim::prefetch::PrefetchRequest;

    /// Emits a prefetch for `line + offset` into `out` if it stays within
    /// the 4 KB page of `line` (post-L1 prefetchers stay in-page, §3.1).
    pub fn push_in_page(out: &mut Vec<PrefetchRequest>, line: u64, offset: i32, fill_l2: bool) {
        if offset != 0 && addr::offset_stays_in_page(line, offset) {
            let target = addr::apply_offset(line, offset);
            out.push(PrefetchRequest {
                line: target,
                fill_l2,
            });
        }
    }

    /// A small multiplicative hash into `bits` bits.
    #[inline]
    pub fn hash_bits(x: u64, bits: u32) -> usize {
        let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> (64 - bits)) as usize
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn push_in_page_respects_boundaries() {
            let mut out = Vec::new();
            let line = 64; // first line of page 1
            push_in_page(&mut out, line, 5, true);
            push_in_page(&mut out, line, -1, true); // crosses down -> dropped
            push_in_page(&mut out, line, 64, true); // crosses up -> dropped
            push_in_page(&mut out, line, 0, true); // zero offset -> dropped
            assert_eq!(out, vec![PrefetchRequest::to_l2(69)]);
        }

        #[test]
        fn hash_bits_in_range() {
            for x in 0..1000u64 {
                assert!(hash_bits(x, 10) < 1024);
            }
        }
    }
}

/// Convenience: a [`DemandAccess`] for unit tests across this crate.
#[cfg(test)]
pub(crate) fn test_access(pc: u64, addr: u64) -> DemandAccess {
    DemandAccess {
        pc,
        addr,
        line: pythia_sim::addr::line_of(addr),
        is_write: false,
        cycle: 0,
        missed: true,
    }
}
