//! SPP + Perceptron Prefetch Filter (Bhatia et al., ISCA 2019).
//!
//! PPF lets an underlying SPP run more aggressively and gates each candidate
//! prefetch through a perceptron: a set of feature-indexed weight tables
//! whose sum must exceed a threshold for the prefetch to issue. The filter
//! trains online from prefetch outcomes (useful / useless) and from demands
//! that hit previously-rejected candidates (lost coverage).

use pythia_sim::prefetch::{DemandAccess, FillEvent, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::spp::Spp;
use crate::util::hash_bits;

const NUM_FEATURES: usize = 6;
const TABLE_BITS: u32 = 10;
const TABLE_ENTRIES: usize = 1 << TABLE_BITS;
const WEIGHT_MAX: i8 = 31;
const WEIGHT_MIN: i8 = -32;
/// Accept a prefetch when the perceptron sum is at least this.
const TAU_ACCEPT: i32 = -10;
/// Track recently issued/rejected candidates for training.
const RECALL_ENTRIES: usize = 1024;

#[derive(Debug, Clone, Copy, Default)]
struct RecallEntry {
    valid: bool,
    line: u64,
    features: [u16; NUM_FEATURES],
}

#[derive(Debug)]
struct RecallQueue {
    entries: Vec<RecallEntry>,
    next: usize,
}

impl RecallQueue {
    fn new() -> Self {
        Self {
            entries: vec![RecallEntry::default(); RECALL_ENTRIES],
            next: 0,
        }
    }

    fn push(&mut self, line: u64, features: [u16; NUM_FEATURES]) {
        self.entries[self.next] = RecallEntry {
            valid: true,
            line,
            features,
        };
        self.next = (self.next + 1) % RECALL_ENTRIES;
    }

    fn take(&mut self, line: u64) -> Option<[u16; NUM_FEATURES]> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.valid && e.line == line)?;
        e.valid = false;
        Some(e.features)
    }
}

/// The SPP+PPF prefetcher.
#[derive(Debug)]
pub struct SppPpf {
    spp: Spp,
    weights: [[i8; TABLE_ENTRIES]; NUM_FEATURES],
    issued: RecallQueue,
    rejected: RecallQueue,
    stats: PrefetcherStats,
    /// Reusable buffer for the underlying SPP's candidate requests, so the
    /// filtering pass allocates nothing per demand.
    candidates: Vec<PrefetchRequest>,
}

impl SppPpf {
    /// Creates an SPP+PPF instance.
    pub fn new() -> Self {
        Self {
            spp: Spp::new(),
            weights: [[0; TABLE_ENTRIES]; NUM_FEATURES],
            candidates: Vec::new(),
            issued: RecallQueue::new(),
            rejected: RecallQueue::new(),
            stats: PrefetcherStats::default(),
        }
    }

    fn features(access: &DemandAccess, target_line: u64) -> [u16; NUM_FEATURES] {
        let delta = target_line as i64 - access.line as i64;
        let page_off = access.page_offset();
        [
            hash_bits(access.pc, TABLE_BITS) as u16,
            hash_bits(access.pc ^ (delta as u64) << 20, TABLE_BITS) as u16,
            hash_bits(target_line, TABLE_BITS) as u16,
            hash_bits(page_off ^ (delta as u64) << 8, TABLE_BITS) as u16,
            hash_bits(access.page(), TABLE_BITS) as u16,
            hash_bits((access.pc >> 2) ^ page_off, TABLE_BITS) as u16,
        ]
    }

    fn sum(&self, features: &[u16; NUM_FEATURES]) -> i32 {
        features
            .iter()
            .enumerate()
            .map(|(t, &i)| self.weights[t][i as usize] as i32)
            .sum()
    }

    fn train(&mut self, features: &[u16; NUM_FEATURES], up: bool) {
        for (t, &i) in features.iter().enumerate() {
            let w = &mut self.weights[t][i as usize];
            *w = if up {
                (*w + 1).min(WEIGHT_MAX)
            } else {
                (*w - 1).max(WEIGHT_MIN)
            };
        }
    }
}

impl Default for SppPpf {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for SppPpf {
    fn name(&self) -> &str {
        "spp+ppf"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        // Recall: if this demand was previously rejected by the filter, that
        // was lost coverage -- train the perceptron up.
        if let Some(features) = self.rejected.take(access.line) {
            self.train(&features, true);
        }

        let mut candidates = std::mem::take(&mut self.candidates);
        candidates.clear();
        self.spp.on_demand_into(access, feedback, &mut candidates);
        let start = out.len();
        for req in candidates.drain(..) {
            let features = Self::features(access, req.line);
            if self.sum(&features) >= TAU_ACCEPT {
                self.issued.push(req.line, features);
                out.push(req);
            } else {
                self.rejected.push(req.line, features);
            }
        }
        self.candidates = candidates;
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_fill(&mut self, event: &FillEvent) {
        self.spp.on_fill(event);
    }

    fn on_useful(&mut self, line: u64) {
        self.stats.useful += 1;
        if let Some(features) = self.issued.take(line) {
            self.train(&features, true);
        }
    }

    fn on_useless(&mut self, line: u64) {
        self.stats.useless += 1;
        if let Some(features) = self.issued.take(line) {
            self.train(&features, false);
        }
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
        self.spp.reset_stats();
    }

    fn storage_bits(&self) -> u64 {
        // Weight tables (6 x 1024 x 6-bit) + two recall queues + inner SPP.
        let weights = (NUM_FEATURES * TABLE_ENTRIES) as u64 * 6;
        let recall = 2 * RECALL_ENTRIES as u64 * (1 + 32 + NUM_FEATURES as u64 * TABLE_BITS as u64);
        weights + recall + self.spp.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    #[test]
    fn passes_spp_candidates_when_untrained() {
        let mut p = SppPpf::new();
        let mut total = 0usize;
        for page in 0..4u64 {
            for i in 0..32u64 {
                let out = p.on_demand(
                    &test_access(0x400000, page * 4096 + i * 64),
                    &SystemFeedback::idle(),
                );
                total += out.len();
            }
        }
        assert!(
            total > 0,
            "untrained filter (weights 0 >= tau) must pass candidates"
        );
    }

    #[test]
    fn negative_training_suppresses_prefetches() {
        let mut p = SppPpf::new();
        // Train SPP on a stream, then hammer the filter with useless
        // feedback for everything it issues.
        let mut suppressed = false;
        for i in 0..3_000u64 {
            let out = p.on_demand(&test_access(0x400000, i * 64), &SystemFeedback::idle());
            for r in &out {
                p.on_useless(r.line);
            }
            if i > 1_000 && out.is_empty() {
                suppressed = true;
            }
        }
        assert!(
            suppressed,
            "constant negative feedback should close the filter"
        );
    }

    #[test]
    fn positive_training_reopens_filter() {
        let mut p = SppPpf::new();
        // Close the filter...
        for i in 0..2_000u64 {
            let out = p.on_demand(&test_access(0x400000, i * 64), &SystemFeedback::idle());
            for r in &out {
                p.on_useless(r.line);
            }
        }
        // ...then give positive feedback via rejected-candidate recall: the
        // demand stream keeps hitting lines the filter rejected.
        let mut reopened = false;
        for i in 2_000..8_000u64 {
            let out = p.on_demand(&test_access(0x400000, i * 64), &SystemFeedback::idle());
            for r in &out {
                p.on_useful(r.line);
            }
            if !out.is_empty() {
                reopened = true;
            }
        }
        assert!(reopened, "recall training should reopen the filter");
    }

    #[test]
    fn weights_saturate() {
        let mut p = SppPpf::new();
        let f = [0u16; NUM_FEATURES];
        for _ in 0..100 {
            p.train(&f, true);
        }
        assert_eq!(p.weights[0][0], WEIGHT_MAX);
        for _ in 0..200 {
            p.train(&f, false);
        }
        assert_eq!(p.weights[0][0], WEIGHT_MIN);
    }

    #[test]
    fn storage_larger_than_spp() {
        let p = SppPpf::new();
        let spp = Spp::new();
        assert!(p.storage_bits() > spp.storage_bits());
    }
}
