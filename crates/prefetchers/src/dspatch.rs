//! DSPatch: Dual Spatial Pattern prefetcher (Bera et al., MICRO 2019).
//!
//! DSPatch learns, per trigger-PC, *two* bit-patterns over a spatial region:
//! a coverage-biased pattern (`CovP`, the OR of observed footprints) and an
//! accuracy-biased pattern (`AccP`, the AND). At prediction time it picks
//! between them using DRAM bandwidth utilization — the "system awareness as
//! an afterthought" design the Pythia paper contrasts with its inherent
//! reward-level feedback.

use pythia_sim::addr;
use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::hash_bits;

/// Region = one 4 KB page (64 lines), as in the original proposal.
const REGION_LINES: usize = addr::LINES_PER_PAGE as usize;
const PB_ENTRIES: usize = 64;
const SPT_ENTRIES: usize = 256;
/// Patterns decay periodically so stale unions don't dominate.
const DECAY_PERIOD: u32 = 128;

#[derive(Debug, Clone, Copy, Default)]
struct PageBufferEntry {
    valid: bool,
    page: u64,
    trigger_pc: u64,
    trigger_offset: u8,
    footprint: u64,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct SptEntry {
    valid: bool,
    tag: u16,
    /// Coverage-biased pattern: OR of anchored footprints.
    cov_p: u64,
    /// Accuracy-biased pattern: AND of anchored footprints.
    acc_p: u64,
    /// Number of footprints merged (for decay and confidence).
    merges: u32,
    /// Running sum of observed footprint popcounts (density estimate).
    bits_seen: u32,
}

/// Rotates a 64-bit footprint left so the trigger offset becomes bit 0
/// (anchoring patterns relative to the trigger).
#[inline]
fn anchor(footprint: u64, trigger_offset: u8) -> u64 {
    footprint.rotate_right(trigger_offset as u32)
}

/// Undoes [`anchor`]: places bit 0 of the pattern at `trigger_offset`.
#[inline]
fn unanchor(pattern: u64, trigger_offset: u8) -> u64 {
    pattern.rotate_left(trigger_offset as u32)
}

/// The DSPatch prefetcher.
#[derive(Debug)]
pub struct DsPatch {
    pb: Vec<PageBufferEntry>,
    spt: Vec<SptEntry>,
    clock: u64,
    decay_counter: u32,
    stats: PrefetcherStats,
}

impl DsPatch {
    /// Creates a DSPatch instance with the configuration of the original
    /// paper (64-entry page buffer, 256-entry signature pattern table).
    pub fn new() -> Self {
        Self {
            pb: vec![PageBufferEntry::default(); PB_ENTRIES],
            spt: vec![SptEntry::default(); SPT_ENTRIES],
            clock: 0,
            decay_counter: 0,
            stats: PrefetcherStats::default(),
        }
    }

    fn spt_slot(pc: u64) -> (usize, u16) {
        (hash_bits(pc, 8), ((pc >> 8) & 0xffff) as u16)
    }

    fn commit(&mut self, entry: PageBufferEntry) {
        let (idx, tag) = Self::spt_slot(entry.trigger_pc);
        let anchored = anchor(entry.footprint, entry.trigger_offset);
        let e = &mut self.spt[idx];
        if !e.valid || e.tag != tag {
            *e = SptEntry {
                valid: true,
                tag,
                cov_p: anchored,
                acc_p: anchored,
                merges: 1,
                bits_seen: anchored.count_ones(),
            };
            return;
        }
        e.cov_p |= anchored;
        e.acc_p &= anchored;
        e.merges += 1;
        e.bits_seen += anchored.count_ones();
        self.decay_counter += 1;
        if self.decay_counter >= DECAY_PERIOD {
            self.decay_counter = 0;
            // Periodic decay: CovP resets toward AccP to shed stale bits.
            // Halve the density-estimate numerator and denominator together
            // so the guard's average stays calibrated.
            for s in &mut self.spt {
                if s.valid && s.merges > 4 {
                    s.cov_p = s.acc_p | (s.cov_p & anchorless_half(s.cov_p));
                    s.merges /= 2;
                    s.bits_seen /= 2;
                }
            }
        }
    }

    fn predict(&self, pc: u64, trigger_offset: u8, bandwidth_high: bool) -> Option<u64> {
        let (idx, tag) = Self::spt_slot(pc);
        let e = &self.spt[idx];
        if !e.valid || e.tag != tag || e.merges < 2 {
            return None;
        }
        // Density guard: if CovP has grown far denser than the typical
        // observed footprint (a union of unrelated visits, e.g. on random
        // traffic), prefetching it would flood -- fall back to AccP.
        let avg_bits = (e.bits_seen / e.merges).max(1);
        let pattern = if bandwidth_high || e.cov_p.count_ones() > 2 * avg_bits {
            e.acc_p
        } else {
            e.cov_p
        };
        if pattern == 0 {
            None
        } else {
            Some(unanchor(pattern, trigger_offset))
        }
    }
}

/// Keeps every other bit of a pattern (a cheap decay mask).
#[inline]
fn anchorless_half(p: u64) -> u64 {
    p & 0x5555_5555_5555_5555
}

impl Default for DsPatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for DsPatch {
    fn name(&self) -> &str {
        "dspatch"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.clock += 1;
        let page = access.page();
        let offset = access.page_offset() as usize;
        let start = out.len();

        if let Some(e) = self.pb.iter_mut().find(|e| e.valid && e.page == page) {
            e.footprint |= 1u64 << offset;
            e.lru = self.clock;
            return;
        }

        // First access to this page: predict, then start tracking it.
        if let Some(pattern) = self.predict(access.pc, offset as u8, feedback.bandwidth_high) {
            let page_base_line = page * addr::LINES_PER_PAGE;
            for bit in 0..REGION_LINES {
                if pattern & (1u64 << bit) != 0 && bit != offset {
                    out.push(PrefetchRequest::to_l2(page_base_line + bit as u64));
                }
            }
        }

        let victim = self
            .pb
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("PB non-empty");
        let evicted = self.pb[victim];
        if evicted.valid {
            self.commit(evicted);
        }
        self.pb[victim] = PageBufferEntry {
            valid: true,
            page,
            trigger_pc: access.pc,
            trigger_offset: offset as u8,
            footprint: 1u64 << offset,
            lru: self.clock,
        };

        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // PB: page tag(36) + pc(16) + offset(6) + footprint(64) + v(1) + lru(8)
        let pb = PB_ENTRIES as u64 * (36 + 16 + 6 + 64 + 1 + 8);
        // SPT: tag(16) + CovP(64) + AccP(64) + merges(8) + v(1)
        let spt = SPT_ENTRIES as u64 * (16 + 64 + 64 + 8 + 1);
        pb + spt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    fn low_bw() -> SystemFeedback {
        SystemFeedback {
            bandwidth_high: false,
            bandwidth_utilization_pct: 10,
        }
    }

    fn high_bw() -> SystemFeedback {
        SystemFeedback {
            bandwidth_high: true,
            bandwidth_utilization_pct: 90,
        }
    }

    /// Train DSPatch with footprints over many pages; `varying` adds noise
    /// bits to alternate pages so CovP != AccP.
    fn train(p: &mut DsPatch, pages: u64, stable: &[usize], noisy: &[usize]) {
        for page in 0..pages {
            let base = (100 + page) * 4096;
            for &o in stable {
                p.on_demand(&test_access(0x400def, base + o as u64 * 64), &low_bw());
            }
            if page % 2 == 0 {
                for &o in noisy {
                    p.on_demand(&test_access(0x400def, base + o as u64 * 64), &low_bw());
                }
            }
        }
        // Flush page buffer by touching many fresh pages so footprints commit.
        for page in 0..PB_ENTRIES as u64 + 4 {
            p.on_demand(&test_access(0x999999, (90_000 + page) * 4096), &low_bw());
        }
    }

    #[test]
    fn coverage_pattern_used_at_low_bandwidth() {
        let mut p = DsPatch::new();
        train(&mut p, 150, &[0, 4, 8], &[20, 30]);
        let out = p.on_demand(&test_access(0x400def, 500_000 * 4096), &low_bw());
        let lines: Vec<u64> = out.iter().map(|r| r.line % 64).collect();
        // CovP includes the noisy bits.
        assert!(lines.contains(&4) && lines.contains(&8), "{lines:?}");
        assert!(
            lines.contains(&20) || lines.contains(&30),
            "CovP should include union bits: {lines:?}"
        );
    }

    #[test]
    fn accuracy_pattern_used_at_high_bandwidth() {
        let mut p = DsPatch::new();
        train(&mut p, 150, &[0, 4, 8], &[20, 30]);
        let out = p.on_demand(&test_access(0x400def, 600_000 * 4096), &high_bw());
        let lines: Vec<u64> = out.iter().map(|r| r.line % 64).collect();
        // AccP = intersection: stable bits only.
        assert!(lines.contains(&4) && lines.contains(&8), "{lines:?}");
        assert!(
            !lines.contains(&20) && !lines.contains(&30),
            "AccP must exclude noise bits: {lines:?}"
        );
    }

    #[test]
    fn high_bw_prediction_is_subset_of_low_bw() {
        let mut p = DsPatch::new();
        train(&mut p, 150, &[0, 2, 10, 40], &[5, 25]);
        let cov = p.on_demand(&test_access(0x400def, 700_000 * 4096), &low_bw());
        let mut q = DsPatch::new();
        train(&mut q, 150, &[0, 2, 10, 40], &[5, 25]);
        let acc = q.on_demand(&test_access(0x400def, 700_000 * 4096), &high_bw());
        let cov_set: std::collections::HashSet<u64> = cov.iter().map(|r| r.line % 64).collect();
        for r in &acc {
            assert!(cov_set.contains(&(r.line % 64)), "AccP ⊄ CovP");
        }
        assert!(acc.len() <= cov.len());
    }

    #[test]
    fn untrained_pc_stays_quiet() {
        let mut p = DsPatch::new();
        let out = p.on_demand(&test_access(0x1234, 0x8000_0000), &low_bw());
        assert!(out.is_empty());
    }

    #[test]
    fn anchoring_roundtrip() {
        let fp = 0b1011u64;
        for off in 0..64u8 {
            assert_eq!(unanchor(anchor(fp, off), off), fp);
        }
    }
}
