//! CP-HW: the context prefetcher of Peled et al. (ISCA 2015) restricted to
//! hardware contexts, as constructed for the comparison in Appendix B.4 of
//! the Pythia paper.
//!
//! CP-HW is a *contextual bandit*: like Pythia it maps a program context to
//! an offset-valued action and learns from rewards, but (1) its reward is
//! immediate-only (no SARSA bootstrapping, discount γ = 0), so it cannot
//! account for an action's long-term consequences, and (2) its reward is a
//! simple usefulness signal with no bandwidth awareness. The Pythia paper
//! attributes its advantage over CP to exactly these differences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pythia_sim::addr;
use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::hash_bits;

/// Offset action list (shared shape with Pythia's pruned list, Table 2).
pub const ACTIONS: [i32; 16] = [-6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32];

const STATE_BITS: u32 = 12;
const STATES: usize = 1 << STATE_BITS;
const RECALL_ENTRIES: usize = 256;
const EPSILON_PER_MILLE: u32 = 10; // 1% exploration
const ALPHA_SHIFT: u32 = 4; // learning rate 1/16
const REWARD_USEFUL: i32 = 16;
const REWARD_USELESS: i32 = -16;

#[derive(Debug, Clone, Copy, Default)]
struct RecallEntry {
    valid: bool,
    line: u64,
    state: u16,
    action: u8,
}

/// The contextual-bandit context prefetcher.
#[derive(Debug)]
pub struct CpHw {
    q: Vec<[i16; ACTIONS.len()]>,
    recall: Vec<RecallEntry>,
    recall_next: usize,
    last_line: u64,
    rng: StdRng,
    stats: PrefetcherStats,
}

impl CpHw {
    /// Creates a CP-HW instance with a deterministic exploration seed.
    pub fn new(seed: u64) -> Self {
        Self {
            q: vec![[0; ACTIONS.len()]; STATES],
            recall: vec![RecallEntry::default(); RECALL_ENTRIES],
            recall_next: 0,
            last_line: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: PrefetcherStats::default(),
        }
    }

    fn state_of(&self, access: &DemandAccess) -> u16 {
        let delta = (access.line as i64 - self.last_line as i64).clamp(-64, 64) as u64;
        hash_bits(access.pc ^ (delta << 24), STATE_BITS) as u16
    }

    fn train(&mut self, line: u64, reward: i32) {
        if let Some(e) = self.recall.iter_mut().find(|e| e.valid && e.line == line) {
            e.valid = false;
            let q = &mut self.q[e.state as usize][e.action as usize];
            // Immediate-only update: Q += alpha * (R - Q).
            let delta = (reward - *q as i32) >> ALPHA_SHIFT;
            *q = (*q as i32 + delta).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        }
    }
}

impl Prefetcher for CpHw {
    fn name(&self) -> &str {
        "cp_hw"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let state = self.state_of(access);
        self.last_line = access.line;

        let action = if self.rng.gen_range(0..1000u32) < EPSILON_PER_MILLE {
            self.rng.gen_range(0..ACTIONS.len())
        } else {
            let row = &self.q[state as usize];
            (0..ACTIONS.len())
                .max_by_key(|&a| row[a])
                .expect("non-empty actions")
        };

        let offset = ACTIONS[action];
        if offset != 0 && addr::offset_stays_in_page(access.line, offset) {
            let target = addr::apply_offset(access.line, offset);
            out.push(PrefetchRequest::to_l2(target));
            self.recall[self.recall_next] = RecallEntry {
                valid: true,
                line: target,
                state,
                action: action as u8,
            };
            self.recall_next = (self.recall_next + 1) % RECALL_ENTRIES;
            self.stats.issued += 1;
        }
    }

    fn on_useful(&mut self, line: u64) {
        self.stats.useful += 1;
        self.train(line, REWARD_USEFUL);
    }

    fn on_useless(&mut self, line: u64) {
        self.stats.useless += 1;
        self.train(line, REWARD_USELESS);
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        let q = (STATES * ACTIONS.len()) as u64 * 16;
        let recall = RECALL_ENTRIES as u64 * (1 + 32 + STATE_BITS as u64 + 4);
        q + recall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    #[test]
    fn learns_profitable_offset_with_immediate_reward() {
        let mut p = CpHw::new(7);
        // Reward +1 prefetches: stream where line+1 is always demanded next.
        for i in 0..20_000u64 {
            let out = p.on_demand(&test_access(0x400000, i * 64), &SystemFeedback::idle());
            for r in &out {
                // The next access is line+1, so a +1 prefetch is useful and
                // anything else useless.
                if r.line == pythia_sim::addr::line_of(i * 64) + 1 {
                    p.on_useful(r.line);
                } else {
                    p.on_useless(r.line);
                }
            }
        }
        // After training, the greedy action on a fresh page with the same
        // context should be +1 most of the time.
        let mut plus_one = 0;
        let mut total = 0;
        for i in 0..500u64 {
            let a = test_access(0x400000, 0x5000_0000 + i * 64);
            let out = p.on_demand(&a, &SystemFeedback::idle());
            for r in out {
                total += 1;
                if r.line == a.line + 1 {
                    plus_one += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            plus_one * 10 >= total * 8,
            "greedy policy should prefer +1: {plus_one}/{total}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut p = CpHw::new(42);
            let mut lines = Vec::new();
            for i in 0..500u64 {
                for r in p.on_demand(&test_access(0x4000, i * 64), &SystemFeedback::idle()) {
                    lines.push(r.line);
                }
            }
            lines
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_offset_action_issues_nothing() {
        // Action list contains 0 (no prefetch); untrained Q ties resolve to
        // the max_by_key's last max -- ensure no panic and at most one
        // request per demand.
        let mut p = CpHw::new(1);
        let out = p.on_demand(&test_access(0, 0x1000), &SystemFeedback::idle());
        assert!(out.len() <= 1);
    }
}
