//! Degree-N next-line prefetcher — the simplest possible spatial prefetcher,
//! used in tests and as a worked example of the [`Prefetcher`] trait.

use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::push_in_page;

/// Prefetches the next `degree` sequential lines after every demand.
#[derive(Debug, Clone)]
pub struct NextLine {
    degree: u32,
    stats: PrefetcherStats,
}

impl NextLine {
    /// Creates a next-line prefetcher of the given degree.
    pub fn new(degree: u32) -> Self {
        Self {
            degree,
            stats: PrefetcherStats::default(),
        }
    }
}

impl Default for NextLine {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> &str {
        "next_line"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let start = out.len();
        for d in 1..=self.degree as i32 {
            push_in_page(out, access.line, d, true);
        }
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        32 // a degree register
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    #[test]
    fn emits_next_lines_in_page() {
        let mut p = NextLine::new(2);
        let out = p.on_demand(&test_access(0, 0x1000), &SystemFeedback::idle());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, pythia_sim::addr::line_of(0x1000) + 1);
    }

    #[test]
    fn stops_at_page_end() {
        let mut p = NextLine::new(4);
        // Last line of a page: nothing to prefetch.
        let out = p.on_demand(&test_access(0, 0x1fc0), &SystemFeedback::idle());
        assert!(out.is_empty());
    }
}
