//! Signature Path Prefetcher (Kim et al., "Path Confidence based Lookahead
//! Prefetching", MICRO 2016), configured per Table 7 of the Pythia paper:
//! 256-entry signature table, 512-entry 4-way pattern table, 8-entry global
//! history register; ~6.2 KB of metadata.
//!
//! SPP compresses the recent *delta history within a page* into a 12-bit
//! signature, learns `signature -> next delta` correlations with confidence
//! counters, and speculatively walks the signature chain ("lookahead"),
//! multiplying per-step confidences; prefetching continues while the path
//! confidence stays above a threshold. High-confidence prefetches fill L2,
//! low-confidence ones fill only the LLC.

use pythia_sim::addr;
use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::hash_bits;

const ST_ENTRIES: usize = 256;
const PT_SETS: usize = 128;
const PT_WAYS: usize = 4;
const SIG_BITS: u32 = 12;
const SIG_MASK: u16 = (1 << SIG_BITS) - 1;
const C_MAX: u8 = 15;
const GHR_ENTRIES: usize = 8;
/// Lookahead continues while path confidence (scaled by 128) exceeds this.
const FILL_THRESHOLD: u32 = 115; // ~0.90 -> fill L2
const PREFETCH_THRESHOLD: u32 = 52; // ~0.40 -> stop lookahead
const MAX_LOOKAHEAD: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct StEntry {
    tag: u16,
    valid: bool,
    last_offset: u8,
    signature: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtWay {
    delta: i8,
    c_delta: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtSet {
    ways: [PtWay; PT_WAYS],
    c_sig: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct GhrEntry {
    valid: bool,
    signature: u16,
    /// Path confidence at the page crossing; kept for parity with the
    /// original design's GHR entry format (not consulted by the bootstrap).
    #[allow(dead_code)]
    confidence: u32,
    last_offset: u8,
    delta: i8,
}

/// Compresses a signature and a new delta into the next signature.
#[inline]
fn update_signature(sig: u16, delta: i8) -> u16 {
    let d = (delta as i16 & 0x3f) as u16; // 6-bit two's-complement delta
    ((sig << 3) ^ d) & SIG_MASK
}

/// The Signature Path Prefetcher.
#[derive(Debug)]
pub struct Spp {
    st: Vec<StEntry>,
    pt: Vec<PtSet>,
    ghr: [GhrEntry; GHR_ENTRIES],
    ghr_next: usize,
    stats: PrefetcherStats,
}

impl Spp {
    /// Creates an SPP instance with the Table 7 configuration.
    pub fn new() -> Self {
        Self {
            st: vec![StEntry::default(); ST_ENTRIES],
            pt: vec![PtSet::default(); PT_SETS],
            ghr: [GhrEntry::default(); GHR_ENTRIES],
            ghr_next: 0,
            stats: PrefetcherStats::default(),
        }
    }

    fn st_slot(page: u64) -> (usize, u16) {
        (hash_bits(page, 8), (page & 0xffff) as u16)
    }

    #[inline]
    fn pt_set(sig: u16) -> usize {
        (sig as usize) % PT_SETS
    }

    fn train_pt(&mut self, sig: u16, delta: i8) {
        let set = &mut self.pt[Self::pt_set(sig)];
        // 4-bit counters: when the signature counter saturates, halve
        // everything to preserve the confidence ratios (as in the original
        // SPP design).
        if set.c_sig >= C_MAX {
            set.c_sig /= 2;
            for w in &mut set.ways {
                w.c_delta /= 2;
            }
        }
        set.c_sig += 1;
        if let Some(w) = set
            .ways
            .iter_mut()
            .find(|w| w.delta == delta && w.c_delta > 0)
        {
            w.c_delta = (w.c_delta + 1).min(C_MAX);
            return;
        }
        // Allocate the way with the lowest counter.
        let victim = set
            .ways
            .iter_mut()
            .min_by_key(|w| w.c_delta)
            .expect("PT_WAYS > 0");
        victim.delta = delta;
        victim.c_delta = 1;
    }

    /// Looks up the most likely delta for `sig`, returning
    /// `(delta, confidence_scaled_by_128)`.
    fn predict(&self, sig: u16) -> Option<(i8, u32)> {
        let set = &self.pt[Self::pt_set(sig)];
        if set.c_sig == 0 {
            return None;
        }
        // Require the delta to have been observed at least twice for this
        // signature: one-off correlations must not drive the lookahead.
        let best = set
            .ways
            .iter()
            .filter(|w| w.c_delta >= 2)
            .max_by_key(|w| w.c_delta)?;
        let conf = best.c_delta as u32 * 128 / set.c_sig.max(1) as u32;
        Some((best.delta, conf.min(128)))
    }

    fn ghr_insert(&mut self, signature: u16, confidence: u32, last_offset: u8, delta: i8) {
        self.ghr[self.ghr_next] = GhrEntry {
            valid: true,
            signature,
            confidence,
            last_offset,
            delta,
        };
        self.ghr_next = (self.ghr_next + 1) % GHR_ENTRIES;
    }

    /// On the first access to a page, tries to continue a cross-page stream
    /// recorded in the GHR: an entry whose `last_offset + delta` wrapped to
    /// this access's offset.
    fn ghr_bootstrap(&self, offset: u8) -> Option<u16> {
        self.ghr
            .iter()
            .filter(|e| e.valid)
            .find(|e| {
                let predicted = e.last_offset as i16 + e.delta as i16;
                predicted.rem_euclid(addr::LINES_PER_PAGE as i16) as u8 == offset
            })
            .map(|e| update_signature(e.signature, e.delta))
    }
}

impl Default for Spp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Spp {
    fn name(&self) -> &str {
        "spp"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let page = access.page();
        let offset = access.page_offset() as u8;
        let (idx, tag) = Self::st_slot(page);
        let start = out.len();

        let entry = self.st[idx];
        let current_sig = if entry.valid && entry.tag == tag {
            let delta = offset as i16 - entry.last_offset as i16;
            if delta == 0 {
                // Same line again: no training, keep signature.
                entry.signature
            } else {
                let delta = delta as i8;
                self.train_pt(entry.signature, delta);
                update_signature(entry.signature, delta)
            }
        } else {
            // New page: try to inherit a signature from the GHR.
            self.ghr_bootstrap(offset).unwrap_or(0)
        };
        self.st[idx] = StEntry {
            tag,
            valid: true,
            last_offset: offset,
            signature: current_sig,
        };

        // Lookahead walk.
        let mut sig = current_sig;
        let mut conf: u32 = 128;
        let mut line = access.line;
        for depth in 0..MAX_LOOKAHEAD {
            let Some((delta, step_conf)) = self.predict(sig) else {
                break;
            };
            conf = conf * step_conf / 128;
            if conf < PREFETCH_THRESHOLD {
                break;
            }
            let next = line as i64 + delta as i64;
            if next < 0 {
                break;
            }
            let next = next as u64;
            if addr::page_of_line(next) != addr::page_of_line(access.line) {
                // Crossing the page: record in GHR for the next page's first
                // access and stop.
                let off = addr::page_offset_of_line(line) as u8;
                self.ghr_insert(sig, conf, off, delta);
                break;
            }
            out.push(PrefetchRequest {
                line: next,
                fill_l2: conf >= FILL_THRESHOLD,
            });
            sig = update_signature(sig, delta);
            line = next;
            let _ = depth;
        }
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // ST: tag(16) + valid(1) + last_offset(6) + signature(12)
        let st = ST_ENTRIES as u64 * (16 + 1 + 6 + 12);
        // PT: 128 sets x (4 ways x (delta 7 + c_delta 4) + c_sig 8)
        let pt = PT_SETS as u64 * (PT_WAYS as u64 * (7 + 4) + 8);
        // GHR: 8 x (valid 1 + sig 12 + conf 8 + offset 6 + delta 7)
        let ghr = GHR_ENTRIES as u64 * (1 + 12 + 8 + 6 + 7);
        st + pt + ghr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    fn drive(p: &mut Spp, addrs: &[u64]) -> Vec<Vec<PrefetchRequest>> {
        addrs
            .iter()
            .map(|&a| p.on_demand(&test_access(0x400000, a), &SystemFeedback::idle()))
            .collect()
    }

    #[test]
    fn learns_unit_stride_and_looks_ahead() {
        let mut p = Spp::new();
        // Train across several pages with a +1-line pattern.
        let mut addrs = Vec::new();
        for page in 0..4u64 {
            for i in 0..32u64 {
                addrs.push(page * 4096 + i * 64);
            }
        }
        let results = drive(&mut p, &addrs);
        let last = results.last().unwrap();
        assert!(!last.is_empty(), "trained SPP should prefetch");
        // High confidence after long training -> deep lookahead, multiple
        // sequential lines.
        assert!(
            last.len() >= 2,
            "expected lookahead depth >= 2, got {}",
            last.len()
        );
        let base = pythia_sim::addr::line_of(*addrs.last().unwrap());
        assert_eq!(last[0].line, base + 1);
    }

    #[test]
    fn learns_alternating_delta_pattern() {
        let mut p = Spp::new();
        // Pattern +3, +1, +3, +1 ... within pages.
        let mut addrs = Vec::new();
        for page in 0..6u64 {
            let mut off = 0i64;
            let mut step = 3i64;
            while off < 60 {
                addrs.push(page * 4096 + off as u64 * 64);
                off += step;
                step = if step == 3 { 1 } else { 3 };
            }
        }
        let results = drive(&mut p, &addrs);
        let non_empty = results
            .iter()
            .rev()
            .take(10)
            .filter(|r| !r.is_empty())
            .count();
        assert!(
            non_empty > 5,
            "SPP should track the alternating-delta signature"
        );
    }

    #[test]
    fn irregular_pattern_low_activity() {
        let mut p = Spp::new();
        // Genuinely pseudo-random offsets (LCG state, not a fixed stride):
        // confidence should stay low.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let addrs: Vec<u64> = (0..200u64)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (i % 3) * 4096 + ((x >> 33) % 64) * 64
            })
            .collect();
        let results = drive(&mut p, &addrs);
        let issued: usize = results.iter().map(Vec::len).sum();
        // Some noise is fine; it must be far below one-per-access.
        assert!(issued < addrs.len() / 2, "issued={issued}");
    }

    #[test]
    fn confidence_splits_fill_level() {
        let mut p = Spp::new();
        let mut addrs = Vec::new();
        for page in 0..3u64 {
            for i in 0..60u64 {
                addrs.push(page * 4096 + i * 64);
            }
        }
        let results = drive(&mut p, &addrs);
        let last = results.last().unwrap();
        // The first (closest) prefetch has the highest path confidence.
        assert!(last[0].fill_l2);
        if last.len() > 3 {
            // Deeper prefetches decay in confidence; the deepest may be
            // LLC-only. (Not asserted strictly -- depends on counter state.)
            let _ = last.last().unwrap().fill_l2;
        }
    }

    #[test]
    fn signature_update_is_12_bits() {
        let sig = update_signature(SIG_MASK, -1);
        assert!(sig <= SIG_MASK);
        let sig2 = update_signature(0, 5);
        assert_eq!(sig2, 5);
    }

    #[test]
    fn storage_matches_table7_order() {
        let p = Spp::new();
        let kb = p.storage_bits() as f64 / 8192.0;
        // Table 7 reports 6.2 KB for SPP; our accounting should be within 2x.
        assert!(kb > 1.0 && kb < 12.0, "SPP storage {kb} KB out of range");
    }

    #[test]
    fn ghr_bridges_page_boundary() {
        let mut p = Spp::new();
        // Stream right up to a page boundary...
        let mut addrs: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
        // ...then continue on the next page.
        addrs.extend((0..4u64).map(|i| 4096 + i * 64));
        let results = drive(&mut p, &addrs);
        // First access of page 1 should already prefetch thanks to GHR.
        let first_new_page = &results[64];
        assert!(
            !first_new_page.is_empty(),
            "GHR should bootstrap the new page's signature"
        );
    }
}
