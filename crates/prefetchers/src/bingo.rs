//! Bingo spatial data prefetcher (Bakhshalipour et al., HPCA 2019),
//! configured per Table 7 of the Pythia paper: 2 KB regions, 64-entry filter
//! table, 128-entry accumulation table, 4K-entry pattern history table
//! (~46 KB).
//!
//! Bingo records the footprint (bit-vector of accessed lines) of each
//! spatial region, keyed by the *trigger* access that first touched it. At
//! lookup it tries the most specific event first — `PC+Address` — and falls
//! back to the more general `PC+Offset`, the mechanism the Pythia paper
//! describes as exploiting two program features in one design.

use pythia_sim::addr;
use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::hash_bits;

/// Region size in bytes (Table 7).
pub const REGION_BYTES: u64 = 2048;
/// Lines per region.
pub const REGION_LINES: usize = (REGION_BYTES / addr::LINE_SIZE) as usize;

const FT_ENTRIES: usize = 64;
const AT_ENTRIES: usize = 128;
const PHT_SETS: usize = 256;
const PHT_WAYS: usize = 16;

#[inline]
fn region_of_line(line: u64) -> u64 {
    line / REGION_LINES as u64
}

#[inline]
fn region_offset(line: u64) -> usize {
    (line % REGION_LINES as u64) as usize
}

#[derive(Debug, Clone, Copy, Default)]
struct FtEntry {
    valid: bool,
    region: u64,
    trigger_pc: u64,
    trigger_offset: u8,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct AtEntry {
    valid: bool,
    region: u64,
    trigger_pc: u64,
    trigger_offset: u8,
    footprint: u32,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PhtEntry {
    valid: bool,
    /// Hash of PC+Offset (the short, general event) — used as the set index
    /// companion tag.
    short_tag: u16,
    /// Hash of PC+Address (the long, specific event).
    long_tag: u32,
    footprint: u32,
    /// Recurrence confidence: bumped when a newly committed footprint for
    /// the same short event overlaps the stored one, decayed otherwise.
    /// Short-event (fallback) predictions require `conf >= 2`, i.e. the
    /// footprint must have recurred at least once — this keeps random
    /// co-occurrences from being replayed on irregular workloads.
    conf: u8,
    lru: u64,
}

/// Fraction test: at least 3/4 of `stored`'s bits appear in `new`.
#[inline]
fn recurs(new: u32, stored: u32) -> bool {
    let stored_bits = stored.count_ones().max(1);
    (new & stored).count_ones() * 4 >= stored_bits * 3
}

/// The Bingo prefetcher.
#[derive(Debug)]
pub struct Bingo {
    ft: Vec<FtEntry>,
    at: Vec<AtEntry>,
    pht: Vec<[PhtEntry; PHT_WAYS]>,
    clock: u64,
    stats: PrefetcherStats,
}

impl Bingo {
    /// Creates a Bingo instance with the Table 7 configuration.
    pub fn new() -> Self {
        Self {
            ft: vec![FtEntry::default(); FT_ENTRIES],
            at: vec![AtEntry::default(); AT_ENTRIES],
            pht: vec![[PhtEntry::default(); PHT_WAYS]; PHT_SETS],
            clock: 0,
            stats: PrefetcherStats::default(),
        }
    }

    fn short_event(pc: u64, offset: u8) -> (usize, u16) {
        let key = (pc << 6) ^ offset as u64;
        (hash_bits(key, 8), (key & 0xffff) as u16)
    }

    fn long_event(pc: u64, line: u64) -> u32 {
        let key = pc ^ (line << 20);
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as u32
    }

    /// Commits a finished region's footprint into the PHT.
    fn commit(&mut self, entry: AtEntry) {
        // Anchor the footprint on the trigger offset so it can be replayed
        // relative to the trigger of a future region.
        let (set, short_tag) = Self::short_event(entry.trigger_pc, entry.trigger_offset);
        let long_tag = Self::long_event(
            entry.trigger_pc,
            entry.region * REGION_LINES as u64 + entry.trigger_offset as u64,
        );
        self.clock += 1;
        let ways = &mut self.pht[set];
        // Update an existing long match if present.
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.long_tag == long_tag) {
            w.conf = if recurs(entry.footprint, w.footprint) {
                (w.conf + 1).min(3)
            } else {
                w.conf.saturating_sub(1)
            };
            w.footprint = entry.footprint;
            w.short_tag = short_tag;
            w.lru = self.clock;
            return;
        }
        // Inherit confidence from the most recent same-short-event entry:
        // a footprint that keeps recurring across regions earns trust.
        let inherited = ways
            .iter()
            .filter(|w| w.valid && w.short_tag == short_tag)
            .max_by_key(|w| w.lru)
            .map(|w| {
                if recurs(entry.footprint, w.footprint) {
                    (w.conf + 1).min(3)
                } else {
                    w.conf.saturating_sub(1)
                }
            })
            .unwrap_or(1);
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("PHT_WAYS > 0");
        *victim = PhtEntry {
            valid: true,
            short_tag,
            long_tag,
            footprint: entry.footprint,
            conf: inherited,
            lru: self.clock,
        };
    }

    /// Looks up a predicted footprint for a region triggered by
    /// `(pc, line)`. Tries PC+Address first, then falls back to voting over
    /// PC+Offset matches.
    fn lookup(&mut self, pc: u64, line: u64) -> Option<u32> {
        let offset = region_offset(line) as u8;
        let (set, short_tag) = Self::short_event(pc, offset);
        let long_tag = Self::long_event(pc, line);
        self.clock += 1;
        let clock = self.clock;
        let ways = &mut self.pht[set];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.long_tag == long_tag) {
            w.lru = clock;
            return Some(w.footprint);
        }
        // Fall back to the general event (PC+Offset): use the most recently
        // updated matching entry's footprint, provided it has recurred
        // (conf >= 2). One-off co-occurrences are never replayed.
        ways.iter()
            .filter(|w| w.valid && w.short_tag == short_tag && w.conf >= 2)
            .max_by_key(|w| w.lru)
            .map(|w| w.footprint)
    }

    fn at_record(&mut self, region: u64, offset: usize) -> bool {
        self.clock += 1;
        if let Some(e) = self.at.iter_mut().find(|e| e.valid && e.region == region) {
            e.footprint |= 1 << offset;
            e.lru = self.clock;
            return true;
        }
        false
    }

    fn at_insert(&mut self, entry: AtEntry) {
        let victim_idx = self
            .at
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("AT non-empty");
        let victim = self.at[victim_idx];
        if victim.valid {
            self.commit(victim);
        }
        self.at[victim_idx] = entry;
    }
}

impl Default for Bingo {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Bingo {
    fn name(&self) -> &str {
        "bingo"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let region = region_of_line(access.line);
        let offset = region_offset(access.line);
        let start = out.len();

        // Already accumulating: just record the footprint bit.
        if self.at_record(region, offset) {
            return;
        }

        // Second access to a filtered region promotes it to the AT.
        self.clock += 1;
        let clock = self.clock;
        if let Some(i) = self.ft.iter().position(|e| e.valid && e.region == region) {
            let ft = self.ft[i];
            if ft.trigger_offset as usize != offset {
                self.ft[i].valid = false;
                let footprint = (1u32 << ft.trigger_offset) | (1u32 << offset);
                self.at_insert(AtEntry {
                    valid: true,
                    region,
                    trigger_pc: ft.trigger_pc,
                    trigger_offset: ft.trigger_offset,
                    footprint,
                    lru: clock,
                });
            }
            return;
        }

        // First access to the region: trigger. Predict the footprint and
        // allocate a filter entry.
        if let Some(footprint) = self.lookup(access.pc, access.line) {
            let region_base = region * REGION_LINES as u64;
            for bit in 0..REGION_LINES {
                if footprint & (1 << bit) != 0 && bit != offset {
                    out.push(PrefetchRequest::to_l2(region_base + bit as u64));
                }
            }
        }
        let victim = self
            .ft
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("FT non-empty");
        self.ft[victim] = FtEntry {
            valid: true,
            region,
            trigger_pc: access.pc,
            trigger_offset: offset as u8,
            lru: clock,
        };

        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // FT: region tag(30) + pc(16 hashed) + offset(5) + valid(1) + lru(8)
        let ft = FT_ENTRIES as u64 * (30 + 16 + 5 + 1 + 8);
        // AT: region tag(30) + pc(16) + offset(5) + footprint(32) + v(1) + lru(8)
        let at = AT_ENTRIES as u64 * (30 + 16 + 5 + 32 + 1 + 8);
        // PHT: short tag(16) + long tag(32) + footprint(32) + conf(2) + v(1) + lru(8)
        let pht = (PHT_SETS * PHT_WAYS) as u64 * (16 + 32 + 32 + 2 + 1 + 8);
        ft + at + pht
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    /// Drives Bingo through `reps` repetitions of a fixed footprint pattern
    /// over distinct regions triggered by the same PC+offset.
    fn train_footprint(p: &mut Bingo, reps: u64, offsets: &[usize]) {
        for r in 0..reps {
            let region_base = (1000 + r) * REGION_BYTES;
            for &o in offsets {
                let a = region_base + o as u64 * 64;
                p.on_demand(&test_access(0x400abc, a), &SystemFeedback::idle());
            }
        }
    }

    #[test]
    fn replays_learned_footprint_on_trigger() {
        let mut p = Bingo::new();
        let offsets = [0usize, 3, 7, 12, 20];
        // Train enough regions that earlier ones are committed to the PHT
        // (AT eviction through capacity, 128 entries).
        train_footprint(&mut p, 200, &offsets);
        // A fresh region triggered by the same PC at offset 0 should fetch
        // the rest of the footprint.
        let out = p.on_demand(
            &test_access(0x400abc, 9_000 * REGION_BYTES),
            &SystemFeedback::idle(),
        );
        assert!(!out.is_empty(), "trained Bingo should replay the footprint");
        let base =
            region_of_line(pythia_sim::addr::line_of(9_000 * REGION_BYTES)) * REGION_LINES as u64;
        let lines: Vec<u64> = out.iter().map(|r| r.line).collect();
        for &o in &offsets[1..] {
            assert!(
                lines.contains(&(base + o as u64)),
                "missing footprint line {o}"
            );
        }
    }

    #[test]
    fn single_access_regions_do_not_pollute() {
        let mut p = Bingo::new();
        // Touch many regions exactly once: nothing should be learned or
        // prefetched.
        for r in 0..300u64 {
            let out = p.on_demand(
                &test_access(0x400abc, r * REGION_BYTES),
                &SystemFeedback::idle(),
            );
            assert!(out.is_empty());
        }
    }

    #[test]
    fn dense_region_prefetches_whole_region() {
        let mut p = Bingo::new();
        let all: Vec<usize> = (0..REGION_LINES).collect();
        train_footprint(&mut p, 200, &all);
        let out = p.on_demand(
            &test_access(0x400abc, 7_777 * REGION_BYTES),
            &SystemFeedback::idle(),
        );
        // Streaming workloads: Bingo fetches the full region at once (this
        // is why it wins on libquantum-style streams in the paper).
        assert!(out.len() >= REGION_LINES - 4, "got {}", out.len());
    }

    #[test]
    fn different_pc_uses_fallback_or_stays_quiet() {
        let mut p = Bingo::new();
        train_footprint(&mut p, 200, &[0, 5, 9]);
        // Different PC, same offset: long event misses; short event
        // (PC+Offset) also differs because PC is part of the short key.
        let out = p.on_demand(
            &test_access(0x999999, 8_888 * REGION_BYTES),
            &SystemFeedback::idle(),
        );
        assert!(out.is_empty(), "unrelated PC should not replay footprints");
    }

    #[test]
    fn storage_matches_table7_order() {
        let p = Bingo::new();
        let kb = p.storage_bits() as f64 / 8192.0;
        // Table 7 reports 46 KB.
        assert!(kb > 20.0 && kb < 80.0, "Bingo storage {kb} KB out of range");
    }
}
