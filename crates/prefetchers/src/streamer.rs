//! Next-N-line streamer with direction detection (Chen & Baer-style), the
//! "streamer at L2" of commercial Intel processors referenced in §6.2.4.
//!
//! A small table tracks per-page access direction; once a stream is
//! confirmed, the prefetcher runs `degree` lines ahead of the demand in the
//! detected direction.

use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::push_in_page;

const TABLE_ENTRIES: usize = 64;

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    page: u64,
    valid: bool,
    last_offset: i32,
    direction: i32,
    confidence: u8,
    lru: u64,
}

/// The streamer prefetcher.
#[derive(Debug)]
pub struct Streamer {
    table: Vec<StreamEntry>,
    degree: u32,
    clock: u64,
    stats: PrefetcherStats,
}

impl Streamer {
    /// Creates a streamer with the given prefetch degree (lines ahead).
    pub fn new(degree: u32) -> Self {
        Self {
            table: vec![StreamEntry::default(); TABLE_ENTRIES],
            degree,
            clock: 0,
            stats: PrefetcherStats::default(),
        }
    }
}

impl Default for Streamer {
    fn default() -> Self {
        Self::new(4)
    }
}

impl Prefetcher for Streamer {
    fn name(&self) -> &str {
        "streamer"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.clock += 1;
        let page = access.page();
        let offset = access.page_offset() as i32;
        let start = out.len();

        let pos = self.table.iter().position(|e| e.valid && e.page == page);
        match pos {
            Some(i) => {
                let e = &mut self.table[i];
                e.lru = self.clock;
                let dir = (offset - e.last_offset).signum();
                if dir != 0 {
                    if dir == e.direction {
                        e.confidence = (e.confidence + 1).min(3);
                    } else {
                        e.confidence = e.confidence.saturating_sub(1);
                        if e.confidence == 0 {
                            e.direction = dir;
                        }
                    }
                }
                e.last_offset = offset;
                if e.confidence >= 1 && e.direction != 0 {
                    let direction = e.direction;
                    for d in 1..=self.degree as i32 {
                        push_in_page(out, access.line, direction * d, true);
                    }
                }
            }
            None => {
                let victim = self
                    .table
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("non-empty table");
                self.table[victim] = StreamEntry {
                    page,
                    valid: true,
                    last_offset: offset,
                    direction: 0,
                    confidence: 0,
                    lru: self.clock,
                };
            }
        }
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // page tag(36) + valid(1) + last_offset(6) + dir(2) + conf(2) + lru(8)
        TABLE_ENTRIES as u64 * (36 + 1 + 6 + 2 + 2 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;

    #[test]
    fn ascending_stream_detected() {
        let mut p = Streamer::new(4);
        let mut last = Vec::new();
        for i in 0..6u64 {
            last = p.on_demand(
                &test_access(0x400000, 0x40000 + i * 64),
                &SystemFeedback::idle(),
            );
        }
        assert_eq!(last.len(), 4);
        let base = pythia_sim::addr::line_of(0x40000 + 5 * 64);
        assert_eq!(last[0].line, base + 1);
        assert_eq!(last[3].line, base + 4);
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = Streamer::new(2);
        let mut last = Vec::new();
        for i in 0..6u64 {
            last = p.on_demand(
                &test_access(0x400000, 0x40fc0 - i * 64),
                &SystemFeedback::idle(),
            );
        }
        assert!(!last.is_empty());
        let base = pythia_sim::addr::line_of(0x40fc0 - 5 * 64);
        assert_eq!(last[0].line, base - 1);
    }

    #[test]
    fn first_touch_is_silent() {
        let mut p = Streamer::new(4);
        let out = p.on_demand(&test_access(0x400000, 0x50000), &SystemFeedback::idle());
        assert!(out.is_empty());
    }

    #[test]
    fn table_replacement_evicts_lru_page() {
        let mut p = Streamer::new(4);
        // Touch 65 distinct pages: the first page's entry must be evicted.
        for page in 0..65u64 {
            p.on_demand(&test_access(0x400000, page * 4096), &SystemFeedback::idle());
        }
        // Re-touching page 0 re-allocates (no panic, silent first touch).
        let out = p.on_demand(&test_access(0x400000, 0), &SystemFeedback::idle());
        assert!(out.is_empty());
    }
}
