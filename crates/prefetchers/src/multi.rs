//! Composition of several prefetchers running concurrently, with request
//! deduplication — the `St`, `St+S`, `St+S+B`, `St+S+B+D`, `St+S+B+D+M`
//! ladders of Figs. 9(b) and 10(b) in the Pythia paper.
//!
//! The paper's observation: combining prefetchers adds their coverage but
//! *also adds their overpredictions*, which hurts in bandwidth-constrained
//! systems; Pythia exploits the same features within one agent instead.

use pythia_sim::prefetch::{DemandAccess, FillEvent, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use std::collections::HashSet;

/// Runs multiple prefetchers side by side, deduplicating their requests.
pub struct Multi {
    name: String,
    parts: Vec<Box<dyn Prefetcher>>,
    stats: PrefetcherStats,
    /// Reusable per-component request buffer (cleared per component).
    child_buf: Vec<PrefetchRequest>,
    /// Reusable dedup set (cleared per demand).
    seen: HashSet<u64>,
}

impl std::fmt::Debug for Multi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Multi")
            .field("name", &self.name)
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl Multi {
    /// Composes the given prefetchers. The composite's name joins the part
    /// names with `+`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<Box<dyn Prefetcher>>) -> Self {
        assert!(!parts.is_empty(), "Multi needs at least one component");
        let name = parts.iter().map(|p| p.name()).collect::<Vec<_>>().join("+");
        Self {
            name,
            parts,
            stats: PrefetcherStats::default(),
            child_buf: Vec::new(),
            seen: HashSet::new(),
        }
    }
}

impl Prefetcher for Multi {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let start = out.len();
        let mut child = std::mem::take(&mut self.child_buf);
        self.seen.clear();
        for p in &mut self.parts {
            child.clear();
            p.on_demand_into(access, feedback, &mut child);
            for req in child.drain(..) {
                if self.seen.insert(req.line) {
                    out.push(req);
                } else if req.fill_l2 {
                    // Upgrade an LLC-only duplicate to fill L2.
                    if let Some(existing) = out[start..].iter_mut().find(|r| r.line == req.line) {
                        existing.fill_l2 = true;
                    }
                }
            }
        }
        self.child_buf = child;
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_fill(&mut self, event: &FillEvent) {
        for p in &mut self.parts {
            p.on_fill(event);
        }
    }

    fn on_useful(&mut self, line: u64) {
        self.stats.useful += 1;
        for p in &mut self.parts {
            p.on_useful(line);
        }
    }

    fn on_useless(&mut self, line: u64) {
        self.stats.useless += 1;
        for p in &mut self.parts {
            p.on_useless(line);
        }
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
        for p in &mut self.parts {
            p.reset_stats();
        }
    }

    fn storage_bits(&self) -> u64 {
        self.parts.iter().map(|p| p.storage_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::next_line::NextLine;
    use crate::stride::StridePrefetcher;
    use crate::test_access;

    #[test]
    fn composes_names_and_storage() {
        let m = Multi::new(vec![
            Box::new(StridePrefetcher::default()),
            Box::new(NextLine::default()),
        ]);
        assert_eq!(m.name(), "stride+next_line");
        assert_eq!(
            m.storage_bits(),
            StridePrefetcher::default().storage_bits() + NextLine::default().storage_bits()
        );
    }

    #[test]
    fn deduplicates_overlapping_requests() {
        // Two next-line prefetchers produce identical requests; the
        // composite must emit each line once.
        let mut m = Multi::new(vec![Box::new(NextLine::new(2)), Box::new(NextLine::new(3))]);
        let out = m.on_demand(&test_access(0, 0x1000), &SystemFeedback::idle());
        let mut lines: Vec<u64> = out.iter().map(|r| r.line).collect();
        let before = lines.len();
        lines.dedup();
        assert_eq!(before, lines.len(), "duplicate lines emitted");
        assert_eq!(before, 3, "union of degree-2 and degree-3 is 3 lines");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_composition_rejected() {
        let _ = Multi::new(vec![]);
    }

    #[test]
    fn feedback_propagates_to_parts() {
        let mut m = Multi::new(vec![Box::new(NextLine::new(1))]);
        m.on_demand(&test_access(0, 0x1000), &SystemFeedback::idle());
        m.on_useful(65);
        assert_eq!(m.stats().useful, 1);
    }
}
