//! PC-based stride prefetcher (Fu & Patel, MICRO'92; Jouppi-style table).
//!
//! Each entry tracks the last line touched by a PC and the stride between
//! its last two accesses; two consecutive confirmations arm the entry, after
//! which it prefetches `degree` strides ahead. The paper uses this as the
//! L1-level component of the multi-level configurations (§6.2.4) and as the
//! base rung of the prefetcher-combination ladders (Fig. 9(b)).

use pythia_sim::prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;

use crate::util::push_in_page;

const TABLE_ENTRIES: usize = 256;
const CONF_MAX: u8 = 3;
const CONF_ARM: u8 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u16,
    valid: bool,
    last_line: u64,
    stride: i32,
    confidence: u8,
}

/// The stride prefetcher.
#[derive(Debug)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    degree: u32,
    stats: PrefetcherStats,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with the given prefetch degree.
    pub fn new(degree: u32) -> Self {
        Self {
            table: vec![Entry::default(); TABLE_ENTRIES],
            degree,
            stats: PrefetcherStats::default(),
        }
    }

    fn slot(pc: u64) -> (usize, u16) {
        let idx = (pc >> 2) as usize % TABLE_ENTRIES;
        let tag = ((pc >> 10) & 0xffff) as u16;
        (idx, tag)
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(2)
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "stride"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        _feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let (idx, tag) = Self::slot(access.pc);
        let entry = &mut self.table[idx];
        let start = out.len();

        if !entry.valid || entry.tag != tag {
            *entry = Entry {
                tag,
                valid: true,
                last_line: access.line,
                stride: 0,
                confidence: 0,
            };
            return;
        }

        let observed = access.line as i64 - entry.last_line as i64;
        let observed = observed.clamp(-63, 63) as i32;
        if observed == entry.stride && observed != 0 {
            entry.confidence = (entry.confidence + 1).min(CONF_MAX);
        } else {
            entry.confidence = entry.confidence.saturating_sub(1);
            if entry.confidence == 0 {
                entry.stride = observed;
            }
        }
        entry.last_line = access.line;

        if entry.confidence >= CONF_ARM && entry.stride != 0 {
            for d in 1..=self.degree as i32 {
                push_in_page(out, access.line, entry.stride * d, true);
            }
        }
        self.stats.issued += (out.len() - start) as u64;
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // tag(16) + valid(1) + last_line(32) + stride(7) + confidence(2)
        TABLE_ENTRIES as u64 * (16 + 1 + 32 + 7 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_access;
    use pythia_sim::prefetch::SystemFeedback;

    fn feed(p: &mut StridePrefetcher, pc: u64, addrs: &[u64]) -> Vec<Vec<PrefetchRequest>> {
        addrs
            .iter()
            .map(|&a| p.on_demand(&test_access(pc, a), &SystemFeedback::idle()))
            .collect()
    }

    #[test]
    fn learns_constant_stride() {
        let mut p = StridePrefetcher::new(2);
        // Accesses striding by 2 lines within one page.
        let addrs: Vec<u64> = (0..8).map(|i| 0x10000 + i * 128).collect();
        let results = feed(&mut p, 0x400100, &addrs);
        // After warmup the prefetcher must emit stride-2 requests.
        let last = results.last().unwrap();
        assert!(!last.is_empty(), "armed entry should prefetch");
        let base = pythia_sim::addr::line_of(*addrs.last().unwrap());
        assert_eq!(last[0].line, base + 2);
        assert_eq!(last[1].line, base + 4);
    }

    #[test]
    fn negative_strides_supported() {
        let mut p = StridePrefetcher::new(1);
        let addrs: Vec<u64> = (0..8).map(|i| 0x1f000 - i * 64).collect();
        let results = feed(&mut p, 0x400200, &addrs);
        let last = results.last().unwrap();
        assert!(!last.is_empty());
        let base = pythia_sim::addr::line_of(*addrs.last().unwrap());
        assert_eq!(last[0].line, base - 1);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = StridePrefetcher::new(2);
        let addrs = [0x10000, 0x10340, 0x10080, 0x10800, 0x10140, 0x10a00];
        let results = feed(&mut p, 0x400300, &addrs);
        let total: usize = results.iter().map(Vec::len).sum();
        assert_eq!(total, 0, "irregular pattern must not trigger prefetches");
    }

    #[test]
    fn pc_aliasing_resets_entry() {
        let mut p = StridePrefetcher::new(2);
        feed(&mut p, 0x400100, &[0x10000, 0x10040, 0x10080]);
        // Different PC mapping to a different slot must not inherit state.
        let out = feed(&mut p, 0x99999c, &[0x20000]);
        assert!(out[0].is_empty());
    }

    #[test]
    fn stats_track_issued() {
        let mut p = StridePrefetcher::new(2);
        let addrs: Vec<u64> = (0..10).map(|i| 0x10000 + i * 64).collect();
        feed(&mut p, 0x400100, &addrs);
        assert!(p.stats().issued > 0);
        p.reset_stats();
        assert_eq!(p.stats().issued, 0);
    }

    #[test]
    fn storage_is_kilobytes_scale() {
        let p = StridePrefetcher::default();
        let kb = p.storage_bits() as f64 / 8192.0;
        assert!(kb < 4.0, "stride prefetcher should be tiny: {kb} KB");
    }
}
