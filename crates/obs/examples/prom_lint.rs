//! Lints a Prometheus text-exposition file with [`pythia_obs::prom::lint`].
//!
//! CI fetches `GET /metrics?format=prom` from a live service and runs
//! this over the capture:
//!
//! ```console
//! $ cargo run -p pythia-obs --example prom_lint -- metrics.prom
//! ```
//!
//! Exits nonzero and prints every finding when the exposition is
//! malformed.

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: prom_lint <file.prom>");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let errors = pythia_obs::prom::lint(&text);
    if errors.is_empty() {
        println!("{path}: clean ({} lines)", text.lines().count());
        return;
    }
    for e in &errors {
        eprintln!("{path}: {e}");
    }
    std::process::exit(1);
}
