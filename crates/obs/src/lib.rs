//! # pythia-obs
//!
//! The workspace's telemetry core: hand-rolled and dependency-free so any
//! crate can use it without cycles (this crate depends on nothing, not
//! even the vendored shims).
//!
//! The pieces, and who uses them:
//!
//! * [`metrics`] — monotonic [`metrics::Counter`]s, [`metrics::Gauge`]s,
//!   and log2-bucketed [`metrics::Histogram`]s with p50/p95/p99
//!   summaries, grouped under an explicit [`metrics::Registry`] that is
//!   *threaded through call sites* — there are no globals anywhere in
//!   this crate. `pythia-serve` registers per-route request latency,
//!   cell queue-wait/execution, and journal fsync instruments here.
//! * [`spans`] — hierarchical span timers behind the [`spans::Sectioner`]
//!   trait. The hot path is generic over the sectioner, and the
//!   [`spans::NoopSectioner`] compiles to nothing, so instrumented code
//!   pays zero cost when sections are off. `pythia-core` sections its
//!   agent step with it; `pythia-cli bench --sections` reports the
//!   breakdown.
//! * [`window`] — a windowed time-series recorder: fixed-width windows
//!   along a monotonic position axis (e.g. retired instructions), each
//!   emitting one row of named samples. `pythia-sim` drives one per core
//!   for `pythia-cli run --telemetry-json`.
//! * [`logger`] — a leveled structured logger emitting one JSON object
//!   per line (`ts`, `level`, `target`, `msg`, then fields).
//!   `pythia-serve` routes its diagnostics through it.
//! * [`prom`] — Prometheus text exposition: a renderer over a
//!   [`metrics::Registry`] (plus ad-hoc families) and a [`prom::lint`]
//!   checker used by tests and CI to validate `GET /metrics?format=prom`.
//! * [`host`] — cheap host provenance (hostname, detected CPU features)
//!   stamped into benchmark reports so saved baselines are
//!   self-describing.
//!
//! Telemetry is strictly observational: nothing in this crate feeds back
//! into simulation state, and the workspace pins `SimReport`s
//! byte-identical with telemetry on vs. off.

pub mod host;
pub mod logger;
pub mod metrics;
pub mod prom;
pub mod spans;
pub mod window;

pub use logger::{Level, Logger};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use spans::{NoopSectioner, Sectioner, SpanTimer};
pub use window::{WindowRecorder, WindowRow};
