//! Cheap host provenance: hostname and detected CPU features.
//!
//! Wall-clock benchmark baselines are host-sensitive, so
//! `BenchReport`s stamp this into their JSON — a cross-host
//! `bench --compare` can then warn instead of silently comparing
//! apples to oranges. Everything here is best-effort and cheap: no
//! subprocesses, no parsing of `/proc/cpuinfo`.

/// Host identity relevant to interpreting wall-clock measurements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HostInfo {
    /// Machine hostname (`"unknown"` when unavailable).
    pub hostname: String,
    /// Detected CPU features relevant to the workspace's dispatch
    /// decisions (e.g. `avx2` gates the QVStore argmax path), sorted.
    pub cpu_features: Vec<String>,
}

impl HostInfo {
    /// The feature list joined with `+` (empty string when none).
    pub fn features_label(&self) -> String {
        self.cpu_features.join("+")
    }
}

/// Reads the hostname: `/proc/sys/kernel/hostname` on Linux, the
/// `HOSTNAME` environment variable otherwise, `"unknown"` as the
/// fallback.
pub fn hostname() -> String {
    if let Ok(name) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let name = name.trim();
        if !name.is_empty() {
            return name.to_string();
        }
    }
    match std::env::var("HOSTNAME") {
        Ok(name) if !name.trim().is_empty() => name.trim().to_string(),
        _ => "unknown".to_string(),
    }
}

/// Runtime-detected CPU features the workspace's hot paths dispatch on
/// (the same detection `QvStore::new` performs for its AVX2 argmax).
/// Empty on non-x86 targets.
pub fn cpu_features() -> Vec<String> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if std::arch::is_x86_feature_detected!("sse4.2") {
            features.push("sse4.2".to_string());
        }
        if std::arch::is_x86_feature_detected!("avx") {
            features.push("avx".to_string());
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2".to_string());
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma".to_string());
        }
        features
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

/// The full provenance snapshot.
pub fn host_info() -> HostInfo {
    HostInfo {
        hostname: hostname(),
        cpu_features: cpu_features(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_info_is_nonempty_and_cheap() {
        let info = host_info();
        assert!(!info.hostname.is_empty());
        // Feature detection must agree with itself.
        assert_eq!(info.cpu_features, cpu_features());
        #[cfg(target_arch = "x86_64")]
        {
            let label = info.features_label();
            for f in &info.cpu_features {
                assert!(label.contains(f.as_str()));
            }
        }
    }
}
