//! Prometheus text exposition: a renderer over [`Registry`] snapshots
//! (plus ad-hoc families) and a [`lint`] checker for the output.
//!
//! The renderer emits the version-0.0.4 text format: `# HELP` / `# TYPE`
//! once per family, then one sample per line, histograms expanded into
//! cumulative `_bucket{le=...}` series plus `_sum` / `_count`. The
//! linter is what CI and the serve tests run against
//! `GET /metrics?format=prom` — it validates structure (HELP/TYPE
//! pairs, no duplicate families or samples, samples only under declared
//! families, cumulative buckets) and that every sample value is finite.

use crate::logger::json_escape;
use crate::metrics::{Family, Histogram, Instrument, Kind, Registry};

/// An incremental builder for Prometheus text exposition.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn format_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a family: one `# HELP` + `# TYPE` pair. `kind` is a
    /// Prometheus type string (`counter`, `gauge`, `histogram`).
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emits one sample line under the most recently declared family.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(&format!(
            "{name}{} {}\n",
            format_labels(labels),
            format_value(value)
        ));
    }

    /// Emits a histogram's cumulative `_bucket` series plus `_sum` and
    /// `_count` under the family `name`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let counts = h.bucket_counts();
        let mut cumulative = 0u64;
        let with_le = |le: &str, cumulative: u64, out: &mut String| {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("le", le));
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                format_labels(&all)
            ));
        };
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if i < counts.len() - 1 {
                with_le(
                    &Histogram::bucket_bound(i).to_string(),
                    cumulative,
                    &mut self.out,
                );
            } else {
                with_le("+Inf", cumulative, &mut self.out);
            }
        }
        self.out.push_str(&format!(
            "{name}_sum{} {}\n",
            format_labels(labels),
            h.sum()
        ));
        self.out.push_str(&format!(
            "{name}_count{} {}\n",
            format_labels(labels),
            h.count()
        ));
    }

    /// Appends every family of a registry snapshot.
    pub fn registry(&mut self, registry: &Registry) {
        for family in registry.snapshot() {
            self.render_family(&family);
        }
    }

    fn render_family(&mut self, family: &Family) {
        let kind = match family.kind {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        };
        self.family(&family.name, &family.help, kind);
        for sample in &family.samples {
            let labels: Vec<(&str, &str)> = sample
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match &sample.instrument {
                Instrument::Counter(c) => self.sample(&family.name, &labels, c.get() as f64),
                Instrument::Gauge(g) => self.sample(&family.name, &labels, g.get() as f64),
                Instrument::Histogram(h) => self.histogram(&family.name, &labels, h),
            }
        }
    }

    /// The rendered exposition.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders a registry snapshot as Prometheus text.
pub fn render(registry: &Registry) -> String {
    let mut text = PromText::new();
    text.registry(registry);
    text.finish()
}

/// Validates Prometheus text exposition. Returns every violation found
/// (empty = clean): duplicate family declarations, missing HELP/TYPE
/// pairs, invalid types, samples without a declared family, duplicate
/// samples, non-finite or unparseable values, and non-cumulative or
/// incomplete histogram bucket series.
pub fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    // name -> (has_help, has_type, type)
    let mut families: Vec<(String, bool, bool, String)> = Vec::new();
    let mut samples_seen: Vec<String> = Vec::new();
    // (series key without le) -> (last cumulative, saw +Inf, inf value)
    let mut buckets: Vec<(String, u64, bool, u64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();

    let family_entry = |families: &mut Vec<(String, bool, bool, String)>, name: &str| -> usize {
        match families.iter().position(|(n, ..)| n == name) {
            Some(i) => i,
            None => {
                families.push((name.to_string(), false, false, String::new()));
                families.len() - 1
            }
        }
    };

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            let i = family_entry(&mut families, name);
            if families[i].1 {
                errors.push(format!("line {lineno}: duplicate HELP for {name}"));
            }
            families[i].1 = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                errors.push(format!("line {lineno}: invalid TYPE {kind:?} for {name}"));
            }
            let i = family_entry(&mut families, name);
            if families[i].2 {
                errors.push(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            families[i].2 = true;
            families[i].3 = kind.to_string();
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => {
                errors.push(format!("line {lineno}: malformed sample {line:?}"));
                continue;
            }
        };
        let name = series.split('{').next().unwrap_or("").trim();
        match value.parse::<f64>() {
            Ok(v) if v.is_finite() => {
                // Histogram structural checks keyed by the series minus
                // its le label.
                let family = families.iter().find(|(n, ..)| {
                    n == name
                        || (name.ends_with("_bucket") && *n == name[..name.len() - 7])
                        || (name.ends_with("_sum") && *n == name[..name.len() - 4])
                        || (name.ends_with("_count") && *n == name[..name.len() - 6])
                });
                match family {
                    None => errors.push(format!(
                        "line {lineno}: sample {name} has no HELP/TYPE declaration"
                    )),
                    Some((fname, _, _, ftype)) => {
                        let suffixed = *fname != name;
                        if suffixed && ftype != "histogram" && ftype != "summary" {
                            errors.push(format!(
                                "line {lineno}: sample {name} has no HELP/TYPE declaration"
                            ));
                        }
                        if ftype == "histogram" && name.ends_with("_bucket") {
                            let le = series
                                .split("le=\"")
                                .nth(1)
                                .and_then(|s| s.split('"').next())
                                .unwrap_or("");
                            // Canonical series key: the le pair stripped,
                            // dangling separators and empty label sets
                            // cleaned up, so `h_bucket{route="x",le="1"}`
                            // and `h_count{route="x"}` key identically.
                            let key = series
                                .replace(&format!("le=\"{le}\""), "")
                                .replace(",}", "}")
                                .replace("{,", "{")
                                .replace("{}", "");
                            let c = v as u64;
                            match buckets.iter_mut().find(|(k, ..)| *k == key) {
                                Some(entry) => {
                                    if c < entry.1 {
                                        errors.push(format!(
                                            "line {lineno}: bucket series {name} is not cumulative"
                                        ));
                                    }
                                    entry.1 = c;
                                    if le == "+Inf" {
                                        entry.2 = true;
                                        entry.3 = c;
                                    }
                                }
                                None => buckets.push((key, c, le == "+Inf", c)),
                            }
                        }
                        if ftype == "histogram" && name.ends_with("_count") {
                            counts.push((series.to_string(), v as u64));
                        }
                    }
                }
            }
            Ok(v) => errors.push(format!("line {lineno}: non-finite sample value {v}")),
            Err(_) => errors.push(format!("line {lineno}: unparseable sample value {value:?}")),
        }
        if samples_seen.iter().any(|s| s == series) {
            errors.push(format!("line {lineno}: duplicate sample {series}"));
        }
        samples_seen.push(series.to_string());
    }

    for (name, has_help, has_type, _) in &families {
        if !has_help {
            errors.push(format!("family {name} has TYPE but no HELP"));
        }
        if !has_type {
            errors.push(format!("family {name} has HELP but no TYPE"));
        }
    }
    for (key, _, saw_inf, _) in &buckets {
        if !saw_inf {
            errors.push(format!("bucket series {key} has no le=\"+Inf\" bucket"));
        }
    }
    for (key, _, saw_inf, inf) in &buckets {
        // The +Inf bucket must agree with the exact matching _count
        // series (same label set minus le).
        if !saw_inf {
            continue;
        }
        let count_key = key.replace("_bucket", "_count");
        if let Some((_, c)) = counts.iter().find(|(k, _)| *k == count_key) {
            if inf != c {
                errors.push(format!(
                    "series {key}: le=\"+Inf\" bucket {inf} != _count {c}"
                ));
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_counters_gauges_histograms_cleanly() {
        let r = Registry::new();
        r.counter_with(
            "http_requests_total",
            "Requests served.",
            &[("route", "metrics")],
        )
        .add(3);
        r.gauge("queue_depth", "Jobs queued.").set(2);
        let h = r.histogram("request_ns", "Request latency (ns).");
        for v in [10u64, 2000, 90_000] {
            h.record(v);
        }
        let text = render(&r);
        assert!(text.contains("# HELP http_requests_total Requests served.\n"));
        assert!(text.contains("# TYPE http_requests_total counter\n"));
        assert!(text.contains("http_requests_total{route=\"metrics\"} 3\n"));
        assert!(text.contains("queue_depth 2\n"));
        assert!(text.contains("request_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("request_ns_count 3\n"));
        assert!(text.contains("request_ns_sum 92010\n"));
        let errors = lint(&text);
        assert!(
            errors.is_empty(),
            "linter must pass the renderer: {errors:?}"
        );
    }

    #[test]
    fn lint_catches_duplicate_families() {
        let text = "# HELP x a\n# TYPE x counter\n# HELP x again\n# TYPE x counter\nx 1\n";
        let errors = lint(text);
        assert!(
            errors.iter().any(|e| e.contains("duplicate HELP")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("duplicate TYPE")),
            "{errors:?}"
        );
    }

    #[test]
    fn lint_catches_missing_pairs_and_undeclared_samples() {
        let errors = lint("# HELP lonely no type\nundeclared 4\n");
        assert!(
            errors.iter().any(|e| e.contains("has HELP but no TYPE")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("no HELP/TYPE declaration")),
            "{errors:?}"
        );
    }

    #[test]
    fn lint_catches_bad_values_and_duplicates() {
        let text = "# HELP x a\n# TYPE x gauge\nx NaN\nx 1\nx 1\n";
        let errors = lint(text);
        assert!(
            errors.iter().any(|e| e.contains("non-finite")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("duplicate sample")),
            "{errors:?}"
        );
    }

    #[test]
    fn lint_catches_non_cumulative_buckets() {
        let text = "# HELP h a\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\nh_count 5\n";
        let errors = lint(text);
        assert!(
            errors.iter().any(|e| e.contains("not cumulative")),
            "{errors:?}"
        );
    }

    #[test]
    fn lint_requires_inf_bucket() {
        let text = "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 5\nh_count 5\n";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.contains("+Inf")), "{errors:?}");
    }
}
