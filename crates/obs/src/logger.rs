//! A leveled structured logger: one JSON object per line.
//!
//! Every line carries `ts` (unix seconds, millisecond precision),
//! `level`, `target` (the emitting subsystem), `msg`, then any
//! call-site fields — machine-parseable with the same tools that read
//! the rest of the repo's JSONL artifacts. There is no global logger:
//! whoever constructs one threads the `Arc` through call sites, exactly
//! like [`crate::metrics::Registry`].

use std::io::Write;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was not recovered.
    Error,
    /// Something was dropped, skipped, or degraded, but service continues.
    Warn,
    /// Normal lifecycle events.
    Info,
    /// High-volume diagnostic detail.
    Debug,
}

impl Level {
    /// The lowercase name used on the wire and on the CLI.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a CLI level name.
    pub fn parse(name: &str) -> Option<Level> {
        match name {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Escapes a string for inclusion inside JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A leveled JSONL logger writing to an owned sink (stderr by default).
pub struct Logger {
    level: Level,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level)
            .finish()
    }
}

impl Logger {
    /// A logger emitting to stderr, keeping lines at or above `level`.
    pub fn stderr(level: Level) -> Logger {
        Logger::to_writer(level, Box::new(std::io::stderr()))
    }

    /// A logger emitting to an arbitrary sink (used by tests).
    pub fn to_writer(level: Level, sink: Box<dyn Write + Send>) -> Logger {
        Logger {
            level,
            sink: Mutex::new(sink),
        }
    }

    /// The configured threshold.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether a line at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Emits one line: `{"ts":...,"level":...,"target":...,"msg":...,
    /// <fields>...}`. Write failures are swallowed — logging must never
    /// take the service down.
    pub fn log(&self, level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
        if !self.enabled(level) {
            return;
        }
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as f64 / 1000.0)
            .unwrap_or(0.0);
        let mut line = format!(
            "{{\"ts\":{ts:.3},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            level.as_str(),
            json_escape(target),
            json_escape(msg),
        );
        for (key, value) in fields {
            line.push_str(&format!(
                ",\"{}\":\"{}\"",
                json_escape(key),
                json_escape(value)
            ));
        }
        line.push_str("}\n");
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.write_all(line.as_bytes());
            let _ = sink.flush();
        }
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, target: &str, msg: &str, fields: &[(&str, String)]) {
        self.log(Level::Error, target, msg, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, target: &str, msg: &str, fields: &[(&str, String)]) {
        self.log(Level::Warn, target, msg, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, target: &str, msg: &str, fields: &[(&str, String)]) {
        self.log(Level::Info, target, msg, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, target: &str, msg: &str, fields: &[(&str, String)]) {
        self.log(Level::Debug, target, msg, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink the test can read back.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_are_jsonl_with_fields() {
        let cap = Capture::default();
        let logger = Logger::to_writer(Level::Info, Box::new(cap.clone()));
        logger.warn(
            "scheduler",
            "dropping job",
            &[
                ("digest", "abc123".to_string()),
                ("error", "bad \"spec\"".to_string()),
            ],
        );
        let bytes = cap.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        assert!(line.ends_with('}') || line.ends_with("}\n"), "{line:?}");
        assert!(line.contains("\"level\":\"warn\""), "{line:?}");
        assert!(line.contains("\"target\":\"scheduler\""), "{line:?}");
        assert!(line.contains("\"msg\":\"dropping job\""), "{line:?}");
        assert!(line.contains("\"digest\":\"abc123\""), "{line:?}");
        assert!(
            line.contains("bad \\\"spec\\\""),
            "escaped quotes: {line:?}"
        );
        assert!(line.contains("\"ts\":"), "{line:?}");
    }

    #[test]
    fn threshold_filters_lines() {
        let cap = Capture::default();
        let logger = Logger::to_writer(Level::Warn, Box::new(cap.clone()));
        logger.info("x", "suppressed", &[]);
        logger.debug("x", "suppressed", &[]);
        assert!(cap.0.lock().unwrap().is_empty());
        logger.error("x", "kept", &[]);
        assert!(!cap.0.lock().unwrap().is_empty());
        assert!(logger.enabled(Level::Error));
        assert!(!logger.enabled(Level::Debug));
    }

    #[test]
    fn level_parse_round_trips() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("trace"), None);
    }
}
