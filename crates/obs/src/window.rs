//! A windowed time-series recorder: fixed-width windows along a
//! monotonic position axis, each closing with one row of named samples.
//!
//! The position axis is whatever the caller counts — `pythia-sim` uses
//! retired instructions per core — and the recorder only decides *when*
//! a window closes; the caller computes the row's fields (typically
//! deltas of its own counters since the previous row). The recorder
//! never feeds anything back, so wiring it up cannot perturb the
//! measured system.

/// One closed window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Zero-based window index.
    pub index: u64,
    /// Position (on the caller's axis) at which the window closed.
    pub at: u64,
    /// Named samples for the window, in a caller-fixed order.
    pub fields: Vec<(&'static str, f64)>,
}

/// Tracks window boundaries and collects closed rows.
#[derive(Debug)]
pub struct WindowRecorder {
    width: u64,
    next: u64,
    rows: Vec<WindowRow>,
}

impl WindowRecorder {
    /// A recorder with `width`-sized windows starting at position 0
    /// (`width` is clamped to at least 1).
    pub fn new(width: u64) -> Self {
        let width = width.max(1);
        WindowRecorder {
            width,
            next: width,
            rows: Vec::new(),
        }
    }

    /// The configured window width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Whether `position` has reached or passed the current window's
    /// end — a single compare, cheap enough for a per-step check.
    #[inline]
    pub fn due(&self, position: u64) -> bool {
        position >= self.next
    }

    /// Closes the current window at `position` with `fields` and opens
    /// the next one. Call when [`WindowRecorder::due`] reports true, or
    /// once at end-of-run to flush a final partial window.
    pub fn close(&mut self, position: u64, fields: Vec<(&'static str, f64)>) {
        self.rows.push(WindowRow {
            index: self.rows.len() as u64,
            at: position,
            fields,
        });
        // Windows stay aligned to multiples of the width even when a
        // position jumps several windows at once.
        while self.next <= position {
            self.next += self.width;
        }
    }

    /// The rows closed so far.
    pub fn rows(&self) -> &[WindowRow] {
        &self.rows
    }

    /// Consumes the recorder, returning its rows.
    pub fn into_rows(self) -> Vec<WindowRow> {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_on_width_boundaries() {
        let mut r = WindowRecorder::new(100);
        assert!(!r.due(99));
        assert!(r.due(100));
        r.close(100, vec![("x", 1.0)]);
        assert!(!r.due(150));
        assert!(r.due(200));
        r.close(205, vec![("x", 2.0)]);
        // A position past several boundaries advances past all of them.
        assert!(!r.due(299));
        assert!(r.due(300));
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].index, 0);
        assert_eq!(rows[0].at, 100);
        assert_eq!(rows[1].index, 1);
        assert_eq!(rows[1].at, 205);
    }

    #[test]
    fn zero_width_is_clamped() {
        let r = WindowRecorder::new(0);
        assert_eq!(r.width(), 1);
    }
}
