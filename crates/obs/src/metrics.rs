//! Counters, gauges, log2-bucketed histograms, and the [`Registry`] that
//! groups them for exposition.
//!
//! All instruments are lock-free (`Relaxed` atomics — these are
//! monotonic statistics, not synchronization), cheap enough for hot
//! paths, and handed out as `Arc`s by the registry so call sites keep a
//! direct handle instead of doing name lookups per observation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of finite histogram buckets: upper bounds `2^0 ..= 2^39`
/// (1 ns to ~18 min when recording nanoseconds), plus one overflow
/// bucket above them.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram over `u64` samples with fixed boundaries.
///
/// Bucket `i` (for `i < HISTOGRAM_BUCKETS`) counts samples `v` with
/// `v <= 2^i`; one overflow bucket catches the rest. Fixed power-of-two
/// boundaries mean merging two histograms is exact (bucket-wise adds)
/// and a percentile estimate is always within one bucket — at most 2× —
/// of the true order statistic.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Estimated 50th percentile (upper bucket bound).
    pub p50: u64,
    /// Estimated 95th percentile (upper bucket bound).
    pub p95: u64,
    /// Estimated 99th percentile (upper bucket bound).
    pub p99: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a sample lands in: the smallest `i` with
    /// `v <= 2^i`, clamped to the overflow bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // ceil(log2(v)) for v >= 2.
        let idx = 64 - (v - 1).leading_zeros() as usize;
        idx.min(HISTOGRAM_BUCKETS)
    }

    /// The inclusive upper bound of finite bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Folds another histogram into this one (exact: boundaries are
    /// fixed and shared).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimated `p`-th percentile (`0.0 < p <= 1.0`): the upper bound
    /// of the first bucket whose cumulative count reaches `ceil(p * n)`,
    /// clamped to the observed maximum. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts = self.bucket_counts();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == HISTOGRAM_BUCKETS {
                    return self.max();
                }
                return Self::bucket_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// The p50/p95/p99 summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max(),
        }
    }
}

/// What kind of instrument a registered family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log2 histogram.
    Histogram,
}

/// One registered instrument plus its label set.
#[derive(Debug, Clone)]
pub enum Instrument {
    /// A counter sample.
    Counter(Arc<Counter>),
    /// A gauge sample.
    Gauge(Arc<Gauge>),
    /// A histogram sample.
    Histogram(Arc<Histogram>),
}

/// A labeled sample inside a family.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label pairs, in registration order (may be empty).
    pub labels: Vec<(String, String)>,
    /// The live instrument.
    pub instrument: Instrument,
}

/// A metric family: one name/help/kind plus its labeled samples.
#[derive(Debug, Clone)]
pub struct Family {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// One-line help string.
    pub help: String,
    /// Instrument kind shared by every sample of the family.
    pub kind: Kind,
    /// The labeled samples.
    pub samples: Vec<Sample>,
}

/// An explicit, thread-safe collection of instruments.
///
/// There are no global registries: whoever owns one threads it (or the
/// `Arc` handles it returns) through call sites. Registering the same
/// `(name, labels)` twice returns the existing instrument, so handles
/// can be re-derived anywhere the registry is visible.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn labels_of(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn register<T, F, G>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: F,
        as_arc: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> (Arc<T>, Instrument),
        G: Fn(&Instrument) -> Option<Arc<T>>,
    {
        let labels = Self::labels_of(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                family.kind == kind,
                "metric {name:?} registered with two kinds"
            );
            if let Some(sample) = family.samples.iter().find(|s| s.labels == labels) {
                return as_arc(&sample.instrument)
                    .expect("family kind matches, so the instrument must");
            }
            let (handle, instrument) = make();
            family.samples.push(Sample { labels, instrument });
            return handle;
        }
        let (handle, instrument) = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: vec![Sample { labels, instrument }],
        });
        handle
    }

    /// Registers (or re-fetches) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-fetches) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            Kind::Counter,
            labels,
            || {
                let c = Arc::new(Counter::new());
                (c.clone(), Instrument::Counter(c))
            },
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or re-fetches) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            Kind::Gauge,
            labels,
            || {
                let g = Arc::new(Gauge::new());
                (g.clone(), Instrument::Gauge(g))
            },
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-fetches) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or re-fetches) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            Kind::Histogram,
            labels,
            || {
                let h = Arc::new(Histogram::new());
                (h.clone(), Instrument::Histogram(h))
            },
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// A point-in-time clone of every family (for rendering).
    pub fn snapshot(&self) -> Vec<Family> {
        self.families.lock().expect("registry poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference percentile a log2 histogram approximates: the
    /// `ceil(p*n)`-th smallest sample of the sorted vector.
    fn reference_percentile(sorted: &[u64], p: f64) -> u64 {
        assert!(!sorted.is_empty());
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // Each boundary value lands in its own bucket; one past it lands
        // in the next.
        for i in 0..HISTOGRAM_BUCKETS {
            let bound = Histogram::bucket_bound(i);
            assert_eq!(Histogram::bucket_index(bound), i, "value {bound}");
            assert_eq!(
                Histogram::bucket_index(bound + 1),
                i + 1,
                "value {}",
                bound + 1
            );
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn percentiles_track_sorted_vec_reference_within_one_bucket() {
        // A deterministic LCG spread over several decades of magnitude.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut samples = Vec::new();
        let h = Histogram::new();
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 40) % (1 << (1 + (i % 24))) + 1;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for p in [0.50, 0.90, 0.95, 0.99, 1.0] {
            let truth = reference_percentile(&samples, p);
            let est = h.percentile(p);
            assert!(
                est >= truth && est <= truth.saturating_mul(2),
                "p{p}: estimate {est} not within one log2 bucket of true {truth}"
            );
        }
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.99), 0, "empty histogram");
        h.record(7);
        assert_eq!(h.percentile(0.5), 7, "single sample clamps to max");
        assert_eq!(h.summary().max, 7);
        assert_eq!(h.summary().count, 1);
        assert_eq!(h.summary().sum, 7);
    }

    #[test]
    fn merge_is_bucketwise_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1u64, 3, 9, 100, 5000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 70, 900, 1 << 20] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), all.bucket_counts());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn registry_dedups_instruments_by_name_and_labels() {
        let r = Registry::new();
        let c1 = r.counter_with("hits", "hits", &[("route", "a")]);
        let c2 = r.counter_with("hits", "hits", &[("route", "a")]);
        let c3 = r.counter_with("hits", "hits", &[("route", "b")]);
        c1.inc();
        assert_eq!(c2.get(), 1, "same (name, labels) shares the instrument");
        assert_eq!(c3.get(), 0, "different labels are a different sample");
        let families = r.snapshot();
        assert_eq!(families.len(), 1);
        assert_eq!(families[0].samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn registry_rejects_kind_conflicts() {
        let r = Registry::new();
        let _ = r.counter("x", "x");
        let _ = r.gauge("x", "x");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }
}
