//! Hierarchical span timers behind a zero-cost [`Sectioner`] trait.
//!
//! Hot paths that want optional per-phase timing take a generic
//! `&mut impl Sectioner` instead of timing unconditionally: the
//! [`NoopSectioner`]'s empty inlined methods vanish at compile time, so
//! the uninstrumented call has the exact cost of the bare code, while a
//! [`SpanTimer`] accumulates inclusive wall time per section name. This
//! formalizes the throwaway rdtsc sectioning used for earlier
//! bottleneck hunts: `pythia-core` sections its agent step, and
//! `pythia-cli bench --sections` reports the breakdown.

use std::time::Instant;

/// A sink for enter/exit section events on a hot path.
///
/// `enter`/`exit` calls must nest (LIFO); section names are `'static`
/// so implementations can key on pointer-cheap comparisons.
pub trait Sectioner {
    /// Marks the start of `section`.
    fn enter(&mut self, section: &'static str);
    /// Marks the end of `section` (the most recently entered one).
    fn exit(&mut self, section: &'static str);
}

/// The do-nothing sectioner: both methods inline to nothing, so generic
/// code instantiated with it pays zero overhead.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSectioner;

impl Sectioner for NoopSectioner {
    #[inline(always)]
    fn enter(&mut self, _section: &'static str) {}
    #[inline(always)]
    fn exit(&mut self, _section: &'static str) {}
}

/// Accumulated totals for one section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTotal {
    /// Section name.
    pub name: &'static str,
    /// Times the section was entered.
    pub calls: u64,
    /// Total inclusive wall time spent inside, in nanoseconds (nested
    /// sections also count toward their parents).
    pub total_ns: u64,
}

/// A [`Sectioner`] that accumulates inclusive wall time per section.
///
/// Sections may nest: time inside a child counts toward both the child
/// and its enclosing parents (inclusive semantics), which keeps the
/// timer allocation-free on the hot path and lets a flat report still
/// show where an outer phase's time went.
#[derive(Debug, Default)]
pub struct SpanTimer {
    stack: Vec<(&'static str, Instant)>,
    totals: Vec<SpanTotal>,
}

impl SpanTimer {
    /// An empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated totals, in first-completed order (for sequential,
    /// non-nested sections this equals first-entered order).
    pub fn report(&self) -> &[SpanTotal] {
        &self.totals
    }

    /// Sum of top-level section time (nested time not double-counted):
    /// the denominator for percentage breakdowns.
    ///
    /// Uses the first-entered section set; callers that nest the same
    /// name at multiple depths should prefer [`SpanTimer::report`].
    pub fn grand_total_ns(&self) -> u64 {
        self.totals.iter().map(|t| t.total_ns).sum()
    }
}

impl Sectioner for SpanTimer {
    fn enter(&mut self, section: &'static str) {
        self.stack.push((section, Instant::now()));
    }

    fn exit(&mut self, section: &'static str) {
        let (name, started) = self
            .stack
            .pop()
            .expect("SpanTimer::exit without a matching enter");
        debug_assert_eq!(name, section, "sections must nest LIFO");
        let ns = started.elapsed().as_nanos() as u64;
        match self.totals.iter_mut().find(|t| t.name == name) {
            Some(t) => {
                t.calls += 1;
                t.total_ns += ns;
            }
            None => self.totals.push(SpanTotal {
                name,
                calls: 1,
                total_ns: ns,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sectioner_is_callable_everywhere() {
        let mut s = NoopSectioner;
        s.enter("a");
        s.exit("a");
    }

    #[test]
    fn span_timer_accumulates_per_section() {
        let mut t = SpanTimer::new();
        for _ in 0..3 {
            t.enter("outer");
            t.enter("inner");
            std::hint::black_box(0u64);
            t.exit("inner");
            t.exit("outer");
        }
        let report = t.report();
        assert_eq!(report.len(), 2);
        // First-completed order: the nested section exits first.
        assert_eq!(report[0].name, "inner");
        assert_eq!(report[0].calls, 3);
        assert_eq!(report[1].name, "outer");
        assert_eq!(report[1].calls, 3);
        // Inclusive semantics: the outer section contains the inner one.
        assert!(report[1].total_ns >= report[0].total_ns);
    }

    #[test]
    #[should_panic(expected = "without a matching enter")]
    fn unbalanced_exit_panics() {
        SpanTimer::new().exit("never-entered");
    }
}
