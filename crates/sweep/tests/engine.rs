//! Integration tests pinning the sweep engine's contract: parallel
//! execution is byte-identical to serial, cell order is independent of the
//! thread count, and the JSON/CSV emitters round-trip the markdown numbers.

use pythia_sim::config::SystemConfig;
use pythia_stats::json;
use pythia_sweep::{ConfigPoint, Key, SweepSpec, Value, WorkUnit};
use pythia_workloads::all_suites;

fn workload(name: &str) -> pythia_workloads::Workload {
    all_suites()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("unknown workload {name:?}"))
}

/// A small but non-trivial grid: 2 workloads × 2 prefetchers × 2 configs.
fn small_spec() -> SweepSpec {
    SweepSpec::new("test-grid")
        .with_workloads([workload("429.mcf-184B"), workload("462.libquantum-714B")])
        .with_prefetchers(&["stride", "spp"])
        .with_config(ConfigPoint::single_core("short", 1_000, 4_000))
        .with_config(ConfigPoint::single_core("long", 2_000, 6_000))
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let spec = small_spec();
    let mut serial = pythia_sweep::run(&spec, 1).expect("serial run");
    let mut parallel = pythia_sweep::run(&spec, 4).expect("parallel run");
    assert_eq!(serial, parallel, "typed results must match exactly");
    // Wall-clock throughput is telemetry, not payload: it is excluded
    // from equality above, and stripped here so the rendered artifacts
    // can be compared byte-for-byte.
    serial.throughput = None;
    parallel.throughput = None;
    assert_eq!(
        serial.to_markdown(),
        parallel.to_markdown(),
        "rendered artifacts must be byte-identical"
    );
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn throughput_telemetry_is_populated_and_rendered() {
    let result = pythia_sweep::run(&small_spec(), 4).expect("run");
    let t = result.throughput.expect("engine records throughput");
    // 4 baselines + 8 cells, budgets 5 K and 8 K instructions per config.
    assert_eq!(t.instructions, 2 * (5_000 + 8_000) + 4 * (5_000 + 8_000));
    assert!(t.wall_seconds > 0.0);
    assert!(result.to_markdown().contains("throughput:"));
    let json = result.to_json().render_pretty();
    let parsed = json::parse(&json).expect("valid json");
    let tp = parsed.get("throughput").expect("throughput key");
    assert_eq!(
        tp.get("instructions").and_then(json::Json::as_f64),
        Some(t.instructions as f64)
    );
}

#[test]
fn cell_order_is_independent_of_thread_count() {
    let spec = small_spec();
    let two = pythia_sweep::run(&spec, 2).expect("2 threads");
    let three = pythia_sweep::run(&spec, 3).expect("3 threads");
    let seven = pythia_sweep::run(&spec, 7).expect("more threads than jobs");
    assert_eq!(two, three);
    assert_eq!(two, seven);
    // Grid order: unit-major, then config, then prefetcher.
    let coords: Vec<(String, String, String)> = two
        .cells
        .iter()
        .map(|c| (c.unit.clone(), c.config.clone(), c.prefetcher.clone()))
        .collect();
    assert_eq!(coords[0].0, "429.mcf-184B");
    assert_eq!(coords[0].1, "short");
    assert_eq!(coords[0].2, "stride");
    assert_eq!(coords[1].2, "spp");
    assert_eq!(coords[2].1, "long");
    assert_eq!(coords[4].0, "462.libquantum-714B");
    assert_eq!(two.cells.len(), 8);
    assert_eq!(two.baselines.len(), 4, "one baseline per unit × config");
}

#[test]
fn json_and_csv_round_trip_the_markdown_numbers() {
    let result = pythia_sweep::run(&small_spec(), 4).expect("run");

    // Markdown: pull every data row's speedup/ipc/coverage columns.
    let md = result.long_table().to_markdown();
    let md_rows: Vec<Vec<String>> = md
        .lines()
        .skip(2) // header + separator
        .map(|l| {
            l.trim_matches('|')
                .split('|')
                .map(|c| c.trim().to_string())
                .collect()
        })
        .collect();

    // CSV: same rows, same formatting.
    let csv_rows: Vec<Vec<String>> = result
        .to_csv()
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    assert_eq!(
        md_rows, csv_rows,
        "markdown and CSV must agree cell-for-cell"
    );

    // JSON: parse and re-format each metric with the table's precision; it
    // must reproduce the markdown string exactly.
    let parsed = json::parse(&result.to_json().render_pretty()).expect("emitted JSON parses");
    let mut json_cells: Vec<&json::Json> = Vec::new();
    for key in ["baselines", "cells"] {
        json_cells.extend(parsed.get(key).and_then(json::Json::as_arr).unwrap());
    }
    assert_eq!(json_cells.len(), md_rows.len());
    for (row, cell) in md_rows.iter().zip(&json_cells) {
        assert_eq!(
            cell.get("unit").and_then(json::Json::as_str),
            Some(row[1].as_str())
        );
        let metrics = cell.get("metrics").expect("metrics object");
        for (col, field) in [
            (6, "speedup"),
            (7, "ipc"),
            (8, "coverage"),
            (9, "overprediction"),
            (10, "accuracy"),
            (11, "baseline_mpki"),
        ] {
            let value = metrics.get(field).and_then(json::Json::as_f64).unwrap();
            assert_eq!(
                format!("{value:.6}"),
                row[col],
                "{field} must round-trip between JSON and markdown"
            );
        }
    }
}

#[test]
fn baselines_are_self_comparisons_and_shared() {
    let result = pythia_sweep::run(&small_spec(), 4).expect("run");
    for b in &result.baselines {
        assert_eq!(b.prefetcher, "none");
        assert!((b.metrics.speedup - 1.0).abs() < 1e-12);
        assert_eq!(b.metrics.coverage, 0.0);
    }
    // Cells compare against the matching baseline: identical prefetcher
    // and budget would give speedup 1; a real prefetcher yields a
    // different (finite, positive) ratio.
    for c in &result.cells {
        assert!(c.metrics.speedup.is_finite() && c.metrics.speedup > 0.0);
    }
}

#[test]
fn multi_core_mix_units_run_through_the_engine() {
    let w = workload("462.libquantum-714B");
    let spec = SweepSpec::new("mix-grid")
        .with_units([WorkUnit::homogeneous(&w, 2, 7919)])
        .with_prefetchers(&["stride"])
        .with_config(ConfigPoint::new(
            "2c",
            SystemConfig::with_cores(2),
            1_000,
            4_000,
        ));
    let serial = pythia_sweep::run(&spec, 1).expect("serial");
    let parallel = pythia_sweep::run(&spec, 4).expect("parallel");
    assert_eq!(serial, parallel);
    assert_eq!(serial.cells.len(), 1);
    assert!(serial.cells[0].unit.starts_with("homo-"));
}

#[test]
fn multi_core_grid_is_byte_identical_across_thread_counts() {
    // The full multi-core determinism pin: a grid of heterogeneous and
    // homogeneous 4-core mixes × 2 prefetchers × seeds, executed at
    // --threads 1/2/8, must render byte-identical artifacts. (The
    // single-config pin above leaves multi-core scheduling unexercised;
    // this closes that gap for the parallel runner.)
    let mix = WorkUnit::mix(
        "hetero-4c",
        "mix",
        vec![
            workload("429.mcf-184B"),
            workload("462.libquantum-714B"),
            workload("401.gcc-13B"),
            workload("470.lbm-164B"),
        ],
    );
    let spec = SweepSpec::new("mt-grid")
        .with_units([
            mix,
            WorkUnit::homogeneous(&workload("462.libquantum-714B"), 4, 7919),
        ])
        .with_prefetchers(&["stride", "pythia"])
        .with_seeds(&[0, 13])
        .with_config(ConfigPoint::new(
            "4c",
            SystemConfig::with_cores(4),
            1_000,
            4_000,
        ));
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let mut r = pythia_sweep::run(&spec, threads).expect("run");
            r.throughput = None; // wall-clock telemetry, not payload
            r
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[0], runs[2], "1 vs 8 threads");
    assert_eq!(runs[0].to_json().render(), runs[2].to_json().render());
    assert_eq!(runs[0].to_csv(), runs[2].to_csv());
    assert_eq!(
        runs[0].cells.len(),
        2 * 2 * 2,
        "units x prefetchers x seeds"
    );
}

#[test]
fn seed_axis_replicates_cells_deterministically() {
    let spec = SweepSpec::new("seeded")
        .with_workloads([workload("429.mcf-184B")])
        .with_prefetchers(&["stride"])
        .with_config(ConfigPoint::single_core("base", 1_000, 4_000))
        .with_seeds(&[0, 1]);
    let a = pythia_sweep::run(&spec, 2).expect("run a");
    let b = pythia_sweep::run(&spec, 3).expect("run b");
    assert_eq!(a, b, "replications are deterministic");
    assert_eq!(a.cells.len(), 2);
    assert_eq!(a.cells[0].seed, 0);
    assert_eq!(a.cells[1].seed, 1);
    assert_ne!(
        a.cells[0].raw, a.cells[1].raw,
        "different seed offsets perturb the trace"
    );
}

#[test]
fn baseline_cache_reuses_reports_without_changing_results() {
    let spec = small_spec();
    let uncached = pythia_sweep::run(&spec, 2).expect("uncached");

    let mut cache = pythia_sweep::BaselineCache::new();
    let first = pythia_sweep::run_cached(&spec, 2, &mut cache).expect("first");
    assert_eq!(first, uncached);
    assert_eq!(cache.len(), 4, "one entry per unit × config × seed");

    // A second campaign over the same grid hits the cache for every
    // baseline and still produces bit-identical output.
    let second = pythia_sweep::run_cached(&spec, 2, &mut cache).expect("second");
    assert_eq!(second, uncached);
    assert_eq!(cache.len(), 4, "no new entries on a full hit");

    // A different-budget config is a different baseline coordinate.
    let other = SweepSpec::new("other")
        .with_workloads([workload("429.mcf-184B")])
        .with_prefetchers(&["stride"])
        .with_config(ConfigPoint::single_core("tiny", 1_000, 5_000));
    pythia_sweep::run_cached(&other, 2, &mut cache).expect("other");
    assert_eq!(cache.len(), 5);
}

#[test]
fn run_all_shares_baselines_across_overlapping_panels() {
    let panel = |name: &str, pf: &str| {
        SweepSpec::new(name)
            .with_workloads([workload("429.mcf-184B")])
            .with_prefetchers(&[pf])
            .with_config(ConfigPoint::single_core("base", 1_000, 4_000))
    };
    let merged =
        pythia_sweep::engine::run_all("pair", &[panel("a", "stride"), panel("b", "spp")], 2)
            .expect("run_all");
    // Each panel still reports its own baseline row, and both rows come
    // from the same underlying simulation.
    assert_eq!(merged.baselines.len(), 2);
    assert_eq!(merged.baselines[0].raw, merged.baselines[1].raw);
    assert_eq!(merged.cells.len(), 2);
}

#[test]
fn aggregation_matches_manual_geomean() {
    let result = pythia_sweep::run(&small_spec(), 4).expect("run");
    let agg = result.aggregate(Key::Prefetcher, Value::Speedup);
    assert_eq!(agg.len(), 2);
    for (label, geo) in &agg {
        let speeds: Vec<f64> = result
            .cells
            .iter()
            .filter(|c| &c.prefetcher == label)
            .map(|c| c.metrics.speedup)
            .collect();
        let manual = pythia_stats::geomean(&speeds);
        assert!((geo - manual).abs() < 1e-12);
    }
}
