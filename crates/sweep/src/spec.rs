//! The declarative side of the engine: [`SweepSpec`] and its axes.

use pythia::runner::{build_prefetcher, RunSpec};
use pythia_core::PythiaConfig;
use pythia_sim::config::SystemConfig;
use pythia_workloads::{suite, Suite, Workload};

/// One unit of work: a single workload (single-core cell) or an `n`-core
/// multi-programmed mix (one workload per core).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkUnit {
    /// Display label (the workload name, or a mix label like `"homo-mcf"`).
    pub label: String,
    /// Grouping key used by aggregations: the suite label for single
    /// workloads, or a category like `"crypto"` for the unseen traces.
    pub group: String,
    /// The workloads, one per core.
    pub workloads: Vec<Workload>,
}

impl WorkUnit {
    /// A single-core unit for one workload (group = its suite label).
    pub fn single(w: Workload) -> Self {
        Self {
            label: w.name.clone(),
            group: w.suite.label().to_string(),
            workloads: vec![w],
        }
    }

    /// An explicit mix with a label and group.
    pub fn mix(label: &str, group: &str, workloads: Vec<Workload>) -> Self {
        Self {
            label: label.to_string(),
            group: group.to_string(),
            workloads,
        }
    }

    /// A homogeneous `n`-copy mix of one workload, de-correlating the
    /// copies by stepping each copy's trace seed by `seed_stride` (the §5.1
    /// homogeneous-mix construction).
    pub fn homogeneous(w: &Workload, n: usize, seed_stride: u64) -> Self {
        let copies: Vec<Workload> = (0..n)
            .map(|i| {
                let mut c = w.clone();
                c.spec.seed = c.spec.seed.wrapping_add(i as u64 * seed_stride);
                c
            })
            .collect();
        Self {
            label: format!("homo-{}", w.name),
            group: w.suite.label().to_string(),
            workloads: copies,
        }
    }

    /// Number of cores this unit needs.
    pub fn cores(&self) -> usize {
        self.workloads.len()
    }
}

/// How a cell's prefetcher is built.
#[derive(Debug, Clone, PartialEq)]
pub enum PrefetcherKind {
    /// A name resolvable by [`pythia::runner::build_prefetcher`] (registry
    /// baselines plus the `pythia*` runner variants).
    Named(String),
    /// An inline Pythia configuration — the ablation / DSE / customization
    /// axis (§4.3, §6.6), one agent instance per core.
    Pythia(PythiaConfig),
}

/// A labelled prefetcher axis entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetcherSpec {
    /// Display label (the name, or an ablation label like `"1 plane"`).
    pub label: String,
    /// Build recipe.
    pub kind: PrefetcherKind,
}

impl PrefetcherSpec {
    /// A registry prefetcher, labelled by its name.
    pub fn named(name: &str) -> Self {
        Self {
            label: name.to_string(),
            kind: PrefetcherKind::Named(name.to_string()),
        }
    }

    /// An inline Pythia variant.
    pub fn pythia(label: &str, config: PythiaConfig) -> Self {
        Self {
            label: label.to_string(),
            kind: PrefetcherKind::Pythia(config),
        }
    }
}

/// A labelled system configuration plus instruction budgets — one point on
/// the swept system axis (core count, DRAM MTPS, LLC size, warmup length).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigPoint {
    /// Display label (e.g. `"600 MTPS"`, `"4 cores"`, `"base"`).
    pub label: String,
    /// The simulated system.
    pub system: SystemConfig,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub measure: u64,
}

impl ConfigPoint {
    /// A labelled point from explicit parts.
    pub fn new(label: &str, system: SystemConfig, warmup: u64, measure: u64) -> Self {
        Self {
            label: label.to_string(),
            system,
            warmup,
            measure,
        }
    }

    /// A single-core point with the default system.
    pub fn single_core(label: &str, warmup: u64, measure: u64) -> Self {
        Self::new(label, SystemConfig::single_core(), warmup, measure)
    }

    /// A labelled point from a [`RunSpec`].
    pub fn from_run_spec(label: &str, spec: &RunSpec) -> Self {
        Self::new(label, spec.system, spec.warmup, spec.measure)
    }

    /// The equivalent [`RunSpec`].
    pub fn run_spec(&self) -> RunSpec {
        RunSpec {
            system: self.system,
            warmup: self.warmup,
            measure: self.measure,
        }
    }
}

/// A declarative experiment campaign: the full grid of
/// *(units × configs × prefetchers × seeds)* cells, plus the baseline every
/// cell's metrics are computed against.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Campaign name (becomes the `sweep` column of every cell).
    pub name: String,
    /// Work units (workloads or mixes).
    pub units: Vec<WorkUnit>,
    /// Prefetcher axis.
    pub prefetchers: Vec<PrefetcherSpec>,
    /// System-configuration axis.
    pub configs: Vec<ConfigPoint>,
    /// The baseline prefetcher (usually `"none"`; Fig. 11 uses `"pythia"`).
    pub baseline: PrefetcherSpec,
    /// Seed offsets added to every workload's trace seed — a replication
    /// axis for variance studies. `[0]` (the default) runs each cell once
    /// with the workload's canonical seed.
    pub seeds: Vec<u64>,
}

impl SweepSpec {
    /// An empty spec with baseline `"none"` and the single canonical seed.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            units: Vec::new(),
            prefetchers: Vec::new(),
            configs: Vec::new(),
            baseline: PrefetcherSpec::named("none"),
            seeds: vec![0],
        }
    }

    /// Adds every workload of the given suites as single-core units.
    pub fn with_suites(mut self, suites: &[Suite]) -> Self {
        for s in suites {
            self.units
                .extend(suite(*s).into_iter().map(WorkUnit::single));
        }
        self
    }

    /// Adds single-core units from an iterator of workloads.
    pub fn with_workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.units
            .extend(workloads.into_iter().map(WorkUnit::single));
        self
    }

    /// Adds pre-built units (mixes or singles).
    pub fn with_units(mut self, units: impl IntoIterator<Item = WorkUnit>) -> Self {
        self.units.extend(units);
        self
    }

    /// Adds named prefetchers.
    pub fn with_prefetchers(mut self, names: &[&str]) -> Self {
        self.prefetchers
            .extend(names.iter().map(|n| PrefetcherSpec::named(n)));
        self
    }

    /// Adds one inline Pythia variant.
    pub fn with_pythia_variant(mut self, label: &str, config: PythiaConfig) -> Self {
        self.prefetchers.push(PrefetcherSpec::pythia(label, config));
        self
    }

    /// Adds one configuration point.
    pub fn with_config(mut self, config: ConfigPoint) -> Self {
        self.configs.push(config);
        self
    }

    /// Adds several configuration points.
    pub fn with_configs(mut self, configs: impl IntoIterator<Item = ConfigPoint>) -> Self {
        self.configs.extend(configs);
        self
    }

    /// Overrides the baseline prefetcher (by name).
    pub fn with_baseline(mut self, name: &str) -> Self {
        self.baseline = PrefetcherSpec::named(name);
        self
    }

    /// Overrides the seed-offset axis.
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Number of measured grid cells.
    pub fn cell_count(&self) -> usize {
        self.units.len() * self.prefetchers.len() * self.configs.len() * self.seeds.len()
    }

    /// Number of simulations the engine will run (cells + baselines).
    pub fn job_count(&self) -> usize {
        self.cell_count() + self.units.len() * self.configs.len() * self.seeds.len()
    }

    /// Validates the grid before execution.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: an empty axis, a core
    /// count mismatch between a unit and a config, an unresolvable
    /// prefetcher name, or a duplicated prefetcher label.
    pub fn validate(&self) -> Result<(), String> {
        if self.units.is_empty() {
            return Err(format!("sweep {:?}: no work units", self.name));
        }
        if self.prefetchers.is_empty() {
            return Err(format!("sweep {:?}: no prefetchers", self.name));
        }
        if self.configs.is_empty() {
            return Err(format!("sweep {:?}: no config points", self.name));
        }
        if self.seeds.is_empty() {
            return Err(format!("sweep {:?}: no seeds", self.name));
        }
        for cp in &self.configs {
            for u in &self.units {
                if u.cores() != cp.system.cores {
                    return Err(format!(
                        "sweep {:?}: unit {:?} has {} workload(s) but config {:?} simulates {} core(s)",
                        self.name,
                        u.label,
                        u.cores(),
                        cp.label,
                        cp.system.cores
                    ));
                }
            }
        }
        let mut labels = std::collections::BTreeSet::new();
        for p in self
            .prefetchers
            .iter()
            .chain(std::iter::once(&self.baseline))
        {
            if !labels.insert(p.label.as_str()) {
                return Err(format!(
                    "sweep {:?}: duplicate prefetcher label {:?}",
                    self.name, p.label
                ));
            }
            if let PrefetcherKind::Named(name) = &p.kind {
                if build_prefetcher(name, 0).is_none() {
                    return Err(format!(
                        "sweep {:?}: unknown prefetcher {name:?}",
                        self.name
                    ));
                }
            }
            if let PrefetcherKind::Pythia(cfg) = &p.kind {
                cfg.validate()
                    .map_err(|e| format!("sweep {:?}: variant {:?}: {e}", self.name, p.label))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_workloads::all_suites;

    fn one_workload() -> Workload {
        all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload")
    }

    #[test]
    fn builder_produces_a_valid_grid() {
        let spec = SweepSpec::new("t")
            .with_workloads([one_workload()])
            .with_prefetchers(&["stride", "spp"])
            .with_config(ConfigPoint::single_core("base", 1_000, 4_000));
        assert!(spec.validate().is_ok());
        assert_eq!(spec.cell_count(), 2);
        assert_eq!(spec.job_count(), 3, "one shared baseline run");
    }

    #[test]
    fn validation_rejects_empty_axes_and_bad_names() {
        let empty = SweepSpec::new("t");
        assert!(empty.validate().unwrap_err().contains("no work units"));

        let spec = SweepSpec::new("t")
            .with_workloads([one_workload()])
            .with_prefetchers(&["no-such-prefetcher"])
            .with_config(ConfigPoint::single_core("base", 1_000, 4_000));
        assert!(spec.validate().unwrap_err().contains("unknown prefetcher"));
    }

    #[test]
    fn validation_rejects_core_count_mismatch() {
        let w = one_workload();
        let spec = SweepSpec::new("t")
            .with_units([WorkUnit::homogeneous(&w, 4, 7919)])
            .with_prefetchers(&["stride"])
            .with_config(ConfigPoint::single_core("base", 1_000, 4_000));
        let err = spec.validate().unwrap_err();
        assert!(err.contains("4 workload(s)"), "{err}");
    }

    #[test]
    fn validation_rejects_duplicate_labels() {
        let spec = SweepSpec::new("t")
            .with_workloads([one_workload()])
            .with_prefetchers(&["stride", "stride"])
            .with_config(ConfigPoint::single_core("base", 1_000, 4_000));
        assert!(spec.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn homogeneous_mixes_decorrelate_seeds() {
        let w = one_workload();
        let unit = WorkUnit::homogeneous(&w, 4, 7919);
        assert_eq!(unit.cores(), 4);
        let seeds: Vec<u64> = unit.workloads.iter().map(|w| w.spec.seed).collect();
        assert_eq!(seeds[1] - seeds[0], 7919);
        assert!(unit.label.starts_with("homo-"));
    }
}
