//! Aggregation combinators: the shared geomean / pivot / weighted-coverage
//! logic the 22 figure harnesses used to hand-roll.

use pythia_stats::metrics::geomean;
use pythia_stats::report::Table;

use crate::result::{CellResult, SweepResult};

/// A cell coordinate usable as an aggregation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// The owning sweep (panel) name.
    Sweep,
    /// The work-unit label (workload / mix name).
    Unit,
    /// The work-unit group (suite or category).
    Group,
    /// The prefetcher label.
    Prefetcher,
    /// The configuration-point label.
    Config,
    /// The seed offset.
    Seed,
}

impl Key {
    /// The value of this key for one cell.
    pub fn of<'a>(&self, cell: &'a CellResult) -> std::borrow::Cow<'a, str> {
        use std::borrow::Cow;
        match self {
            Key::Sweep => Cow::Borrowed(cell.sweep.as_str()),
            Key::Unit => Cow::Borrowed(cell.unit.as_str()),
            Key::Group => Cow::Borrowed(cell.group.as_str()),
            Key::Prefetcher => Cow::Borrowed(cell.prefetcher.as_str()),
            Key::Config => Cow::Borrowed(cell.config.as_str()),
            Key::Seed => Cow::Owned(cell.seed.to_string()),
        }
    }

    /// The column header used for this key in pivot tables.
    pub fn header(&self) -> &'static str {
        match self {
            Key::Sweep => "sweep",
            Key::Unit => "workload",
            Key::Group => "suite",
            Key::Prefetcher => "prefetcher",
            Key::Config => "config",
            Key::Seed => "seed",
        }
    }
}

/// A metric extractable from a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// IPC speedup over the baseline.
    Speedup,
    /// Prefetch coverage.
    Coverage,
    /// Overprediction.
    Overprediction,
    /// Prefetcher accuracy.
    Accuracy,
    /// Absolute geomean IPC of the cell's run.
    Ipc,
}

impl Value {
    /// Extracts this metric from one cell.
    pub fn of(&self, cell: &CellResult) -> f64 {
        match self {
            Value::Speedup => cell.metrics.speedup,
            Value::Coverage => cell.metrics.coverage,
            Value::Overprediction => cell.metrics.overprediction,
            Value::Accuracy => cell.metrics.accuracy,
            Value::Ipc => cell.metrics.ipc,
        }
    }
}

/// First-appearance-ordered distinct values of a key (keeps spec order,
/// unlike a sorted set).
fn distinct(cells: &[CellResult], key: Key) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for c in cells {
        let v = key.of(c);
        if !out.iter().any(|x| x.as_str() == v.as_ref()) {
            out.push(v.into_owned());
        }
    }
    out
}

impl SweepResult {
    /// First-appearance-ordered distinct values of a key over the measured
    /// cells (i.e. spec order — the row/column order of [`SweepResult::pivot`]).
    pub fn distinct(&self, key: Key) -> Vec<String> {
        distinct(&self.cells, key)
    }

    /// Restricts the result to cells (and baselines) matching a predicate.
    pub fn filter(&self, keep: impl Fn(&CellResult) -> bool) -> SweepResult {
        SweepResult {
            name: self.name.clone(),
            baselines: self.baselines.iter().filter(|c| keep(c)).cloned().collect(),
            cells: self.cells.iter().filter(|c| keep(c)).cloned().collect(),
            // The whole-run wall-clock telemetry does not describe the
            // restricted subset; carrying it over would overstate the
            // subset's throughput (and double-count under merge).
            throughput: None,
        }
    }

    /// Geometric mean of `value` for every distinct value of `key`, in
    /// first-appearance order — the Fig. 9(b)-style one-axis aggregation.
    pub fn aggregate(&self, key: Key, value: Value) -> Vec<(String, f64)> {
        distinct(&self.cells, key)
            .into_iter()
            .map(|k| {
                let vs: Vec<f64> = self
                    .cells
                    .iter()
                    .filter(|c| key.of(c) == k.as_str())
                    .map(|c| value.of(c))
                    .collect();
                (k, geomean(&vs))
            })
            .collect()
    }

    /// Pivot table: one row per distinct `row` key, one column per distinct
    /// `col` key, each cell the geomean of `value` over matching cells.
    /// Row/column order follows first appearance (i.e. spec order).
    pub fn pivot(&self, row: Key, col: Key, value: Value) -> Table {
        self.pivot_with_total(row, col, value, None)
    }

    /// [`SweepResult::pivot`] plus an optional final row aggregating every
    /// cell per column (the `GEOMEAN` row of Figs. 9/10/12).
    pub fn pivot_with_total(
        &self,
        row: Key,
        col: Key,
        value: Value,
        total_label: Option<&str>,
    ) -> Table {
        let rows = distinct(&self.cells, row);
        let cols = distinct(&self.cells, col);
        let mut headers = vec![row.header()];
        headers.extend(cols.iter().map(String::as_str));
        let mut t = Table::new(&headers);
        let geo_for = |rk: Option<&str>, ck: &str| -> f64 {
            let vs: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| col.of(c) == ck && rk.is_none_or(|rk| row.of(c) == rk))
                .map(|c| value.of(c))
                .collect();
            geomean(&vs)
        };
        for rk in &rows {
            let mut cells_out = vec![rk.clone()];
            for ck in &cols {
                cells_out.push(format!("{:.3}", geo_for(Some(rk), ck)));
            }
            t.row(&cells_out);
        }
        if let Some(label) = total_label {
            let mut cells_out = vec![label.to_string()];
            for ck in &cols {
                cells_out.push(format!("{:.3}", geo_for(None, ck)));
            }
            t.row(&cells_out);
        }
        t
    }

    /// Robustness scoreboard: one row per prefetcher, scoring every
    /// non-reference group as the delta of its speedup / coverage /
    /// overprediction geomeans against the `reference` group (the
    /// `robust01`–`robust03` aggregation; reference is normally the
    /// `expected` profile). A robust prefetcher keeps speedup and coverage
    /// deltas near zero on hostile groups without an overprediction blowup;
    /// a fragile one shows large negative speedup/coverage deltas or a
    /// large positive overprediction delta.
    pub fn robustness(&self, reference: &str) -> Table {
        let groups: Vec<String> = distinct(&self.cells, Key::Group)
            .into_iter()
            .filter(|g| g != reference)
            .collect();
        let metrics = [
            ("speedup", Value::Speedup),
            ("coverage", Value::Coverage),
            ("overpred", Value::Overprediction),
        ];
        let mut headers: Vec<String> = vec!["prefetcher".into()];
        for (name, _) in &metrics {
            headers.push(format!("{name}@{reference}"));
            for g in &groups {
                headers.push(format!("Δ{name}@{g}"));
            }
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        let geo_for = |pf: &str, group: &str, value: Value| -> f64 {
            let vs: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| c.prefetcher == pf && c.group == group)
                .map(|c| value.of(c))
                .collect();
            geomean(&vs)
        };
        for pf in distinct(&self.cells, Key::Prefetcher) {
            let mut row = vec![pf.clone()];
            for (_, value) in &metrics {
                let base = geo_for(&pf, reference, *value);
                row.push(format!("{base:.3}"));
                for g in &groups {
                    row.push(format!("{:+.3}", geo_for(&pf, g, *value) - base));
                }
            }
            t.row(&row);
        }
        t
    }

    /// Baseline-MPKI-weighted average coverage and overprediction of one
    /// prefetcher across the result's cells (the Fig. 7 aggregation:
    /// baseline MPKI proxies the baseline miss count each workload
    /// contributes).
    pub fn weighted_coverage(&self, prefetcher: &str) -> (f64, f64) {
        let mut cov_num = 0.0;
        let mut over_num = 0.0;
        let mut denom = 0.0;
        for c in self.cells.iter().filter(|c| c.prefetcher == prefetcher) {
            let w = c.metrics.baseline_mpki;
            cov_num += c.metrics.coverage * w;
            over_num += c.metrics.overprediction * w;
            denom += w;
        }
        if denom == 0.0 {
            (0.0, 0.0)
        } else {
            (cov_num / denom, over_num / denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::RawSummary;
    use pythia_stats::metrics::Metrics;

    fn cell(unit: &str, group: &str, pf: &str, speedup: f64, mpki: f64, cov: f64) -> CellResult {
        CellResult {
            sweep: "t".into(),
            unit: unit.into(),
            group: group.into(),
            prefetcher: pf.into(),
            config: "base".into(),
            seed: 0,
            metrics: Metrics {
                speedup,
                coverage: cov,
                overprediction: 0.1,
                ipc: 1.0,
                baseline_mpki: mpki,
                accuracy: 0.9,
            },
            raw: RawSummary {
                ipc: 1.0,
                llc_mpki: mpki,
                prefetches_issued: 0,
                bw_bucket_windows: [0; 4],
            },
        }
    }

    fn result() -> SweepResult {
        SweepResult {
            name: "t".into(),
            baselines: vec![],
            cells: vec![
                cell("w1", "A", "spp", 2.0, 10.0, 0.8),
                cell("w1", "A", "pythia", 4.0, 10.0, 0.9),
                cell("w2", "B", "spp", 8.0, 30.0, 0.4),
                cell("w2", "B", "pythia", 16.0, 30.0, 0.5),
            ],
            throughput: None,
        }
    }

    #[test]
    fn aggregate_takes_geomeans_in_spec_order() {
        let agg = result().aggregate(Key::Prefetcher, Value::Speedup);
        assert_eq!(agg[0].0, "spp");
        assert!((agg[0].1 - 4.0).abs() < 1e-12, "geomean(2, 8) = 4");
        assert!((agg[1].1 - 8.0).abs() < 1e-12, "geomean(4, 16) = 8");
    }

    #[test]
    fn pivot_groups_rows_and_columns() {
        let t = result().pivot(Key::Group, Key::Prefetcher, Value::Speedup);
        let md = t.to_markdown();
        assert!(md.starts_with("| suite"));
        assert!(md.contains("| A"));
        assert!(md.contains("2.000"));
        assert!(md.contains("16.000"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pivot_total_row_aggregates_everything() {
        let t = result().pivot_with_total(Key::Group, Key::Prefetcher, Value::Speedup, Some("GEO"));
        assert_eq!(t.len(), 3);
        let md = t.to_markdown();
        assert!(md.contains("GEO"));
        assert!(md.contains("4.000"), "geomean(2, 8) over all spp cells");
    }

    #[test]
    fn weighted_coverage_weights_by_baseline_mpki() {
        let (cov, over) = result().weighted_coverage("spp");
        // (0.8*10 + 0.4*30) / 40 = 0.5
        assert!((cov - 0.5).abs() < 1e-12);
        assert!((over - 0.1).abs() < 1e-12);
    }

    #[test]
    fn robustness_scores_deltas_vs_reference_group() {
        let t = result().robustness("A");
        let md = t.to_markdown();
        assert!(md.contains("speedup@A"));
        assert!(md.contains("Δspeedup@B"));
        // spp: speedup geomean 2.0 on A, 8.0 on B -> delta +6.0.
        assert!(md.contains("2.000"));
        assert!(md.contains("+6.000"));
        // pythia: 4.0 on A, 16.0 on B -> delta +12.0.
        assert!(md.contains("+12.000"));
        assert_eq!(t.len(), 2, "one row per prefetcher");
    }

    #[test]
    fn filter_restricts_cells() {
        let only_a = result().filter(|c| c.group == "A");
        assert_eq!(only_a.cells.len(), 2);
        let agg = only_a.aggregate(Key::Prefetcher, Value::Coverage);
        assert!((agg[0].1 - 0.8).abs() < 1e-12);
    }
}
