//! Canonical spec codec + content digest.
//!
//! A [`SweepSpec`] (and a multi-panel [`Campaign`] of them) has exactly one
//! canonical serialized form: a [`Json`] tree with fixed key order, rendered
//! compactly. Identical campaigns therefore hash identically, which makes
//! campaign results content-addressable — the foundation of the
//! `pythia-serve` result cache and the one-shot `--cache-dir` path.
//!
//! Invariants the tests pin:
//!
//! * **Fixed point** — `encode → parse → encode` reproduces the same bytes,
//!   and the decoded spec equals the original (`PartialEq`).
//! * **Injectivity in practice** — every figure-registry campaign digests
//!   to a distinct value.
//!
//! Numbers ride the [`Json::Num`] `f64` carrier, which is exact for
//! integers up to 2^53; the few `u64` fields that can exceed that (seeds)
//! are encoded as decimal strings beyond 2^53, and the
//! decoder accepts both forms.

use pythia_core::{ControlFlow, DataFlow, Feature, PythiaConfig, RewardLevels, VaultCombine};
use pythia_sim::cache::ReplacementKind;
use pythia_sim::config::{CacheConfig, CoreConfig, DramConfig, SystemConfig};
use pythia_stats::json::{parse, Json};
use pythia_workloads::{PatternKind, Suite, TraceSpec, Workload};

use crate::spec::{ConfigPoint, PrefetcherKind, PrefetcherSpec, SweepSpec, WorkUnit};

/// FNV-1a 64-bit hash (the repo's standard content digest, shared with the
/// golden-report pins).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Largest integer `f64` carries exactly (2^53).
const MAX_EXACT: u64 = 1 << 53;

/// Encodes a `u64` losslessly: as a number while `f64`-exact, as a decimal
/// string beyond that (seeds are the only fields that get near the limit).
/// Shared with the result emitter so artifacts round-trip for any seed.
pub(crate) fn u64_json(n: u64) -> Json {
    if n <= MAX_EXACT {
        Json::Num(n as f64)
    } else {
        Json::Str(n.to_string())
    }
}

/// Decodes a [`u64_json`]-encoded value (exact number or decimal string).
pub(crate) fn u64_value(v: &Json) -> Result<u64, String> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT as f64 => Ok(*n as u64),
        Json::Str(s) => s.parse().map_err(|_| format!("bad integer string {s:?}")),
        _ => Err("expected a non-negative integer".into()),
    }
}

fn get<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn str_of(j: &Json, key: &str) -> Result<String, String> {
    get(j, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("key {key:?}: expected a string"))
}

fn f64_of(j: &Json, key: &str) -> Result<f64, String> {
    get(j, key)?
        .as_f64()
        .ok_or_else(|| format!("key {key:?}: expected a number"))
}

fn u64_of(j: &Json, key: &str) -> Result<u64, String> {
    u64_value(get(j, key)?).map_err(|e| format!("key {key:?}: {e}"))
}

fn usize_of(j: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(u64_of(j, key)?).map_err(|_| format!("key {key:?}: out of range"))
}

fn u8_of(j: &Json, key: &str) -> Result<u8, String> {
    u8::try_from(u64_of(j, key)?).map_err(|_| format!("key {key:?}: out of u8 range"))
}

fn u32_of(j: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(u64_of(j, key)?).map_err(|_| format!("key {key:?}: out of u32 range"))
}

fn i64_of(j: &Json, key: &str) -> Result<i64, String> {
    let n = f64_of(j, key)?;
    if n.fract() != 0.0 || n.abs() > MAX_EXACT as f64 {
        return Err(format!("key {key:?}: expected an integer"));
    }
    Ok(n as i64)
}

fn bool_of(j: &Json, key: &str) -> Result<bool, String> {
    get(j, key)?
        .as_bool()
        .ok_or_else(|| format!("key {key:?}: expected a bool"))
}

fn arr_of<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    get(j, key)?
        .as_arr()
        .ok_or_else(|| format!("key {key:?}: expected an array"))
}

// ---------------------------------------------------------------------------
// PatternKind / TraceSpec / Workload / WorkUnit
// ---------------------------------------------------------------------------

fn pattern_json(kind: &PatternKind) -> Json {
    let byte_arr = |v: &[u8]| Json::Arr(v.iter().map(|&b| u64::from(b).into()).collect());
    match kind {
        PatternKind::Stream { store_every } => Json::obj()
            .set("t", "stream")
            .set("store_every", u64::from(*store_every)),
        PatternKind::Stride { lines } => Json::obj()
            .set("t", "stride")
            .set("lines", Json::Num(f64::from(*lines))),
        PatternKind::PageVisit { offsets } => Json::obj()
            .set("t", "page-visit")
            .set("offsets", byte_arr(offsets)),
        PatternKind::SpatialFootprint {
            patterns,
            noise_pct,
        } => Json::obj()
            .set("t", "spatial-footprint")
            .set(
                "patterns",
                Json::Arr(patterns.iter().map(|p| byte_arr(p)).collect()),
            )
            .set("noise_pct", u64::from(*noise_pct)),
        PatternKind::DeltaChain { deltas } => Json::obj().set("t", "delta-chain").set(
            "deltas",
            Json::Arr(deltas.iter().map(|&d| Json::Num(f64::from(d))).collect()),
        ),
        PatternKind::IrregularGraph {
            vertices,
            avg_degree,
        } => Json::obj()
            .set("t", "irregular-graph")
            .set("vertices", u64_json(*vertices))
            .set("avg_degree", u64::from(*avg_degree)),
        PatternKind::PointerChase => Json::obj().set("t", "pointer-chase"),
        PatternKind::CloudMix { hot_pct } => Json::obj()
            .set("t", "cloud-mix")
            .set("hot_pct", u64::from(*hot_pct)),
        PatternKind::Phased { phases, phase_len } => Json::obj()
            .set("t", "phased")
            .set(
                "phases",
                Json::Arr(phases.iter().map(pattern_json).collect()),
            )
            .set("phase_len", u64::from(*phase_len)),
    }
}

fn bytes_from(j: &Json, key: &str) -> Result<Vec<u8>, String> {
    bytes_values(arr_of(j, key)?).map_err(|e| format!("key {key:?}: {e}"))
}

fn bytes_values(items: &[Json]) -> Result<Vec<u8>, String> {
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0 && *n <= 255.0)
                .map(|n| n as u8)
                .ok_or_else(|| "expected byte values".to_string())
        })
        .collect()
}

fn pattern_from(j: &Json) -> Result<PatternKind, String> {
    let tag = str_of(j, "t")?;
    Ok(match tag.as_str() {
        "stream" => PatternKind::Stream {
            store_every: u32_of(j, "store_every")?,
        },
        "stride" => PatternKind::Stride {
            lines: i32::try_from(i64_of(j, "lines")?).map_err(|_| "stride out of range")?,
        },
        "page-visit" => PatternKind::PageVisit {
            offsets: bytes_from(j, "offsets")?,
        },
        "spatial-footprint" => PatternKind::SpatialFootprint {
            patterns: arr_of(j, "patterns")?
                .iter()
                .map(|p| {
                    p.as_arr()
                        .ok_or_else(|| "patterns: expected arrays".to_string())
                        .and_then(bytes_values)
                })
                .collect::<Result<_, _>>()?,
            noise_pct: u8_of(j, "noise_pct")?,
        },
        "delta-chain" => PatternKind::DeltaChain {
            deltas: arr_of(j, "deltas")?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|n| n.fract() == 0.0 && (-128.0..=127.0).contains(n))
                        .map(|n| n as i8)
                        .ok_or_else(|| "deltas: expected i8 values".to_string())
                })
                .collect::<Result<_, _>>()?,
        },
        "irregular-graph" => PatternKind::IrregularGraph {
            vertices: u64_of(j, "vertices")?,
            avg_degree: u32_of(j, "avg_degree")?,
        },
        "pointer-chase" => PatternKind::PointerChase,
        "cloud-mix" => PatternKind::CloudMix {
            hot_pct: u8_of(j, "hot_pct")?,
        },
        "phased" => PatternKind::Phased {
            phases: arr_of(j, "phases")?
                .iter()
                .map(pattern_from)
                .collect::<Result<_, _>>()?,
            phase_len: u32_of(j, "phase_len")?,
        },
        other => return Err(format!("unknown pattern kind {other:?}")),
    })
}

fn trace_spec_json(s: &TraceSpec) -> Json {
    Json::obj()
        .set("name", s.name.as_str())
        .set("kind", pattern_json(&s.kind))
        .set("instructions", s.instructions)
        .set("mem_pct", u64::from(s.mem_pct))
        .set("footprint_pages", u64_json(s.footprint_pages))
        .set("branch_pct", u64::from(s.branch_pct))
        .set("mispredict_pct", u64::from(s.mispredict_pct))
        .set("accesses_per_line", u64::from(s.accesses_per_line))
        .set("seed", u64_json(s.seed))
}

fn trace_spec_from(j: &Json) -> Result<TraceSpec, String> {
    Ok(TraceSpec {
        name: str_of(j, "name")?,
        kind: pattern_from(get(j, "kind")?)?,
        instructions: usize_of(j, "instructions")?,
        mem_pct: u8_of(j, "mem_pct")?,
        footprint_pages: u64_of(j, "footprint_pages")?,
        branch_pct: u8_of(j, "branch_pct")?,
        mispredict_pct: u8_of(j, "mispredict_pct")?,
        accesses_per_line: u8_of(j, "accesses_per_line")?,
        seed: u64_of(j, "seed")?,
    })
}

fn suite_label(s: Suite) -> &'static str {
    s.label()
}

fn suite_from(label: &str) -> Result<Suite, String> {
    Ok(match label {
        "SPEC06" => Suite::Spec06,
        "SPEC17" => Suite::Spec17,
        "PARSEC" => Suite::Parsec,
        "Ligra" => Suite::Ligra,
        "Cloudsuite" => Suite::Cloudsuite,
        "CVP-unseen" => Suite::CvpUnseen,
        other => return Err(format!("unknown suite {other:?}")),
    })
}

fn workload_json(w: &Workload) -> Json {
    Json::obj()
        .set("name", w.name.as_str())
        .set("suite", suite_label(w.suite))
        .set("spec", trace_spec_json(&w.spec))
}

fn workload_from(j: &Json) -> Result<Workload, String> {
    Ok(Workload {
        name: str_of(j, "name")?,
        suite: suite_from(&str_of(j, "suite")?)?,
        spec: trace_spec_from(get(j, "spec")?)?,
    })
}

fn unit_json(u: &WorkUnit) -> Json {
    Json::obj()
        .set("label", u.label.as_str())
        .set("group", u.group.as_str())
        .set(
            "workloads",
            Json::Arr(u.workloads.iter().map(workload_json).collect()),
        )
}

fn unit_from(j: &Json) -> Result<WorkUnit, String> {
    Ok(WorkUnit {
        label: str_of(j, "label")?,
        group: str_of(j, "group")?,
        workloads: arr_of(j, "workloads")?
            .iter()
            .map(workload_from)
            .collect::<Result<_, _>>()?,
    })
}

// ---------------------------------------------------------------------------
// PythiaConfig / PrefetcherSpec
// ---------------------------------------------------------------------------

fn control_label(c: ControlFlow) -> &'static str {
    match c {
        ControlFlow::Pc => "pc",
        ControlFlow::PcPath => "pc-path",
        ControlFlow::PcXorBranchPc => "pc-xor-branch-pc",
        ControlFlow::None => "none",
    }
}

fn control_from(s: &str) -> Result<ControlFlow, String> {
    Ok(match s {
        "pc" => ControlFlow::Pc,
        "pc-path" => ControlFlow::PcPath,
        "pc-xor-branch-pc" => ControlFlow::PcXorBranchPc,
        "none" => ControlFlow::None,
        other => return Err(format!("unknown control flow {other:?}")),
    })
}

fn data_label(d: DataFlow) -> &'static str {
    match d {
        DataFlow::CachelineAddress => "cacheline-address",
        DataFlow::PageNumber => "page-number",
        DataFlow::PageOffset => "page-offset",
        DataFlow::Delta => "delta",
        DataFlow::LastFourOffsets => "last-four-offsets",
        DataFlow::LastFourDeltas => "last-four-deltas",
        DataFlow::OffsetXorDelta => "offset-xor-delta",
        DataFlow::None => "none",
    }
}

fn data_from(s: &str) -> Result<DataFlow, String> {
    Ok(match s {
        "cacheline-address" => DataFlow::CachelineAddress,
        "page-number" => DataFlow::PageNumber,
        "page-offset" => DataFlow::PageOffset,
        "delta" => DataFlow::Delta,
        "last-four-offsets" => DataFlow::LastFourOffsets,
        "last-four-deltas" => DataFlow::LastFourDeltas,
        "offset-xor-delta" => DataFlow::OffsetXorDelta,
        "none" => DataFlow::None,
        other => return Err(format!("unknown data flow {other:?}")),
    })
}

fn pythia_config_json(c: &PythiaConfig) -> Json {
    Json::obj()
        .set(
            "features",
            Json::Arr(
                c.features
                    .iter()
                    .map(|f| {
                        Json::obj()
                            .set("control", control_label(f.control))
                            .set("data", data_label(f.data))
                    })
                    .collect(),
            ),
        )
        .set(
            "actions",
            Json::Arr(c.actions.iter().map(|&a| Json::Num(f64::from(a))).collect()),
        )
        .set(
            "rewards",
            Json::obj()
                .set("accurate_timely", f64::from(c.rewards.accurate_timely))
                .set("accurate_late", f64::from(c.rewards.accurate_late))
                .set("coverage_loss", f64::from(c.rewards.coverage_loss))
                .set(
                    "inaccurate_high_bw",
                    f64::from(c.rewards.inaccurate_high_bw),
                )
                .set("inaccurate_low_bw", f64::from(c.rewards.inaccurate_low_bw))
                .set(
                    "no_prefetch_high_bw",
                    f64::from(c.rewards.no_prefetch_high_bw),
                )
                .set(
                    "no_prefetch_low_bw",
                    f64::from(c.rewards.no_prefetch_low_bw),
                ),
        )
        .set("alpha", f64::from(c.alpha))
        .set("gamma", f64::from(c.gamma))
        .set("epsilon", f64::from(c.epsilon))
        .set("eq_size", c.eq_size)
        .set("planes", c.planes)
        .set("plane_index_bits", u64::from(c.plane_index_bits))
        .set(
            "vault_combine",
            match c.vault_combine {
                VaultCombine::Max => "max",
                VaultCombine::Mean => "mean",
            },
        )
        .set(
            "q_init_override",
            match c.q_init_override {
                Some(q) => Json::Num(f64::from(q)),
                None => Json::Null,
            },
        )
        .set("graded_timeliness", c.graded_timeliness)
        .set("seed", u64_json(c.seed))
}

fn i16_of(j: &Json, key: &str) -> Result<i16, String> {
    i16::try_from(i64_of(j, key)?).map_err(|_| format!("key {key:?}: out of i16 range"))
}

/// `f32` carried through JSON: the `f64` payload must be an exact `f32`
/// widening, so the narrowing cast is lossless.
fn f32_of(j: &Json, key: &str) -> Result<f32, String> {
    let wide = f64_of(j, key)?;
    let narrow = wide as f32;
    if f64::from(narrow) != wide {
        return Err(format!("key {key:?}: {wide} is not an exact f32"));
    }
    Ok(narrow)
}

fn pythia_config_from(j: &Json) -> Result<PythiaConfig, String> {
    let rewards = get(j, "rewards")?;
    Ok(PythiaConfig {
        features: arr_of(j, "features")?
            .iter()
            .map(|f| {
                Ok(Feature {
                    control: control_from(&str_of(f, "control")?)?,
                    data: data_from(&str_of(f, "data")?)?,
                })
            })
            .collect::<Result<_, String>>()?,
        actions: arr_of(j, "actions")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .filter(|n| n.fract() == 0.0 && n.abs() <= f64::from(i32::MAX))
                    .map(|n| n as i32)
                    .ok_or_else(|| "actions: expected i32 values".to_string())
            })
            .collect::<Result<_, _>>()?,
        rewards: RewardLevels {
            accurate_timely: i16_of(rewards, "accurate_timely")?,
            accurate_late: i16_of(rewards, "accurate_late")?,
            coverage_loss: i16_of(rewards, "coverage_loss")?,
            inaccurate_high_bw: i16_of(rewards, "inaccurate_high_bw")?,
            inaccurate_low_bw: i16_of(rewards, "inaccurate_low_bw")?,
            no_prefetch_high_bw: i16_of(rewards, "no_prefetch_high_bw")?,
            no_prefetch_low_bw: i16_of(rewards, "no_prefetch_low_bw")?,
        },
        alpha: f32_of(j, "alpha")?,
        gamma: f32_of(j, "gamma")?,
        epsilon: f32_of(j, "epsilon")?,
        eq_size: usize_of(j, "eq_size")?,
        planes: usize_of(j, "planes")?,
        plane_index_bits: u32_of(j, "plane_index_bits")?,
        vault_combine: match str_of(j, "vault_combine")?.as_str() {
            "max" => VaultCombine::Max,
            "mean" => VaultCombine::Mean,
            other => return Err(format!("unknown vault_combine {other:?}")),
        },
        q_init_override: match get(j, "q_init_override")? {
            Json::Null => None,
            _ => Some(f32_of(j, "q_init_override")?),
        },
        graded_timeliness: bool_of(j, "graded_timeliness")?,
        seed: u64_of(j, "seed")?,
    })
}

fn prefetcher_json(p: &PrefetcherSpec) -> Json {
    let out = Json::obj().set("label", p.label.as_str());
    match &p.kind {
        PrefetcherKind::Named(name) => out.set("named", name.as_str()),
        PrefetcherKind::Pythia(cfg) => out.set("pythia", pythia_config_json(cfg)),
    }
}

fn prefetcher_from(j: &Json) -> Result<PrefetcherSpec, String> {
    let label = str_of(j, "label")?;
    let kind = match (j.get("named"), j.get("pythia")) {
        (Some(n), None) => PrefetcherKind::Named(
            n.as_str()
                .ok_or("key \"named\": expected a string")?
                .to_string(),
        ),
        (None, Some(cfg)) => PrefetcherKind::Pythia(pythia_config_from(cfg)?),
        _ => {
            return Err(format!(
                "prefetcher {label:?}: exactly one of \"named\"/\"pythia\" required"
            ))
        }
    };
    Ok(PrefetcherSpec { label, kind })
}

// ---------------------------------------------------------------------------
// SystemConfig / ConfigPoint
// ---------------------------------------------------------------------------

fn cache_json(c: &CacheConfig) -> Json {
    Json::obj()
        .set("size_bytes", u64_json(c.size_bytes))
        .set("ways", c.ways)
        .set("latency", u64_json(c.latency))
        .set("mshrs", c.mshrs)
        .set(
            "replacement",
            match c.replacement {
                ReplacementKind::Lru => "lru",
                ReplacementKind::Ship => "ship",
            },
        )
}

fn cache_from(j: &Json) -> Result<CacheConfig, String> {
    Ok(CacheConfig {
        size_bytes: u64_of(j, "size_bytes")?,
        ways: usize_of(j, "ways")?,
        latency: u64_of(j, "latency")?,
        mshrs: usize_of(j, "mshrs")?,
        replacement: match str_of(j, "replacement")?.as_str() {
            "lru" => ReplacementKind::Lru,
            "ship" => ReplacementKind::Ship,
            other => return Err(format!("unknown replacement {other:?}")),
        },
    })
}

fn system_json(s: &SystemConfig) -> Json {
    Json::obj()
        .set("cores", s.cores)
        .set(
            "core",
            Json::obj()
                .set("width", u64::from(s.core.width))
                .set("rob_entries", s.core.rob_entries)
                .set("lq_entries", s.core.lq_entries)
                .set("sq_entries", s.core.sq_entries)
                .set("mispredict_penalty", u64_json(s.core.mispredict_penalty)),
        )
        .set("l1d", cache_json(&s.l1d))
        .set("l2", cache_json(&s.l2))
        .set("llc", cache_json(&s.llc))
        .set(
            "dram",
            Json::obj()
                .set("channels", s.dram.channels)
                .set("ranks_per_channel", s.dram.ranks_per_channel)
                .set("banks_per_rank", s.dram.banks_per_rank)
                .set("row_buffer_bytes", u64_json(s.dram.row_buffer_bytes))
                .set("mtps", u64_json(s.dram.mtps))
                .set("bus_bytes", u64_json(s.dram.bus_bytes))
                .set("t_rcd_tenth_ns", u64_json(s.dram.t_rcd_tenth_ns))
                .set("t_rp_tenth_ns", u64_json(s.dram.t_rp_tenth_ns))
                .set("t_cas_tenth_ns", u64_json(s.dram.t_cas_tenth_ns)),
        )
        .set(
            "bandwidth_window_cycles",
            u64_json(s.bandwidth_window_cycles),
        )
        .set("bandwidth_high_pct", u64::from(s.bandwidth_high_pct))
}

fn system_from(j: &Json) -> Result<SystemConfig, String> {
    let core = get(j, "core")?;
    let dram = get(j, "dram")?;
    Ok(SystemConfig {
        cores: usize_of(j, "cores")?,
        core: CoreConfig {
            width: u32_of(core, "width")?,
            rob_entries: usize_of(core, "rob_entries")?,
            lq_entries: usize_of(core, "lq_entries")?,
            sq_entries: usize_of(core, "sq_entries")?,
            mispredict_penalty: u64_of(core, "mispredict_penalty")?,
        },
        l1d: cache_from(get(j, "l1d")?)?,
        l2: cache_from(get(j, "l2")?)?,
        llc: cache_from(get(j, "llc")?)?,
        dram: DramConfig {
            channels: usize_of(dram, "channels")?,
            ranks_per_channel: usize_of(dram, "ranks_per_channel")?,
            banks_per_rank: usize_of(dram, "banks_per_rank")?,
            row_buffer_bytes: u64_of(dram, "row_buffer_bytes")?,
            mtps: u64_of(dram, "mtps")?,
            bus_bytes: u64_of(dram, "bus_bytes")?,
            t_rcd_tenth_ns: u64_of(dram, "t_rcd_tenth_ns")?,
            t_rp_tenth_ns: u64_of(dram, "t_rp_tenth_ns")?,
            t_cas_tenth_ns: u64_of(dram, "t_cas_tenth_ns")?,
        },
        bandwidth_window_cycles: u64_of(j, "bandwidth_window_cycles")?,
        bandwidth_high_pct: u8_of(j, "bandwidth_high_pct")?,
    })
}

fn config_point_json(c: &ConfigPoint) -> Json {
    Json::obj()
        .set("label", c.label.as_str())
        .set("system", system_json(&c.system))
        .set("warmup", u64_json(c.warmup))
        .set("measure", u64_json(c.measure))
}

fn config_point_from(j: &Json) -> Result<ConfigPoint, String> {
    Ok(ConfigPoint {
        label: str_of(j, "label")?,
        system: system_from(get(j, "system")?)?,
        warmup: u64_of(j, "warmup")?,
        measure: u64_of(j, "measure")?,
    })
}

// ---------------------------------------------------------------------------
// SweepSpec / Campaign
// ---------------------------------------------------------------------------

/// Canonical JSON encoding of a [`SweepSpec`].
pub fn spec_json(s: &SweepSpec) -> Json {
    Json::obj()
        .set("name", s.name.as_str())
        .set("units", Json::Arr(s.units.iter().map(unit_json).collect()))
        .set(
            "prefetchers",
            Json::Arr(s.prefetchers.iter().map(prefetcher_json).collect()),
        )
        .set(
            "configs",
            Json::Arr(s.configs.iter().map(config_point_json).collect()),
        )
        .set("baseline", prefetcher_json(&s.baseline))
        .set(
            "seeds",
            Json::Arr(s.seeds.iter().map(|&s| u64_json(s)).collect()),
        )
}

/// Decodes a [`SweepSpec`] from its canonical JSON form.
///
/// # Errors
///
/// Returns a message naming the first missing or ill-typed key.
pub fn spec_from_json(j: &Json) -> Result<SweepSpec, String> {
    Ok(SweepSpec {
        name: str_of(j, "name")?,
        units: arr_of(j, "units")?
            .iter()
            .map(unit_from)
            .collect::<Result<_, _>>()?,
        prefetchers: arr_of(j, "prefetchers")?
            .iter()
            .map(prefetcher_from)
            .collect::<Result<_, _>>()?,
        configs: arr_of(j, "configs")?
            .iter()
            .map(config_point_from)
            .collect::<Result<_, _>>()?,
        baseline: prefetcher_from(get(j, "baseline")?)?,
        seeds: {
            let arr = arr_of(j, "seeds")?;
            let mut out = Vec::with_capacity(arr.len());
            for (i, v) in arr.iter().enumerate() {
                out.push(u64_value(v).map_err(|e| format!("seeds[{i}]: {e}"))?);
            }
            out
        },
    })
}

/// A named, content-addressable campaign: one or more [`SweepSpec`] panels
/// executed together and merged under `name` (exactly what
/// [`crate::engine::run_all`] runs for a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Merge name of the combined result (figure id, or the panel name).
    pub name: String,
    /// The panels, in execution order.
    pub panels: Vec<SweepSpec>,
}

impl Campaign {
    /// A one-panel campaign named after its spec.
    pub fn single(spec: SweepSpec) -> Self {
        Self {
            name: spec.name.clone(),
            panels: vec![spec],
        }
    }

    /// A multi-panel campaign (a registry figure).
    pub fn new(name: &str, panels: Vec<SweepSpec>) -> Self {
        Self {
            name: name.to_string(),
            panels,
        }
    }

    /// Canonical JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::obj().set("name", self.name.as_str()).set(
            "panels",
            Json::Arr(self.panels.iter().map(spec_json).collect()),
        )
    }

    /// Decodes a campaign from its canonical JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed key.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(Self {
            name: str_of(j, "name")?,
            panels: arr_of(j, "panels")?
                .iter()
                .map(spec_from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// The canonical serialized form: the compact rendering of
    /// [`Campaign::to_json`]. Equal campaigns produce equal bytes.
    pub fn canonical(&self) -> String {
        self.to_json().render()
    }

    /// Content digest: FNV-1a-64 of [`Campaign::canonical`], as 16 lowercase
    /// hex digits. This is the cache key and service job id.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a_64(self.canonical().as_bytes()))
    }

    /// Parses a campaign from serialized canonical text.
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first decode error.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&parse(text)?)
    }

    /// Validates every panel.
    ///
    /// # Errors
    ///
    /// Returns the first [`SweepSpec::validate`] error.
    pub fn validate(&self) -> Result<(), String> {
        if self.panels.is_empty() {
            return Err(format!("campaign {:?}: no panels", self.name));
        }
        for p in &self.panels {
            p.validate()?;
        }
        Ok(())
    }

    /// Total measured grid cells across panels.
    pub fn cell_count(&self) -> usize {
        self.panels.iter().map(SweepSpec::cell_count).sum()
    }
}

/// Is `s` a well-formed campaign digest (16 lowercase hex digits)?
pub fn is_digest(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_workloads::all_suites;

    fn sample_spec() -> SweepSpec {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        SweepSpec::new("codec-sample")
            .with_workloads([w])
            .with_prefetchers(&["stride", "spp"])
            .with_pythia_variant("variant", PythiaConfig::tuned())
            .with_config(ConfigPoint::single_core("base", 1_000, 4_000))
            .with_seeds(&[0, 7, u64::MAX])
    }

    #[test]
    fn encode_parse_encode_is_a_fixed_point() {
        let spec = sample_spec();
        let first = spec_json(&spec).render();
        let parsed = spec_from_json(&parse(&first).expect("valid json")).expect("decodes");
        assert_eq!(parsed, spec, "decode reproduces the value");
        assert_eq!(
            spec_json(&parsed).render(),
            first,
            "re-encode is byte-stable"
        );
    }

    #[test]
    fn campaign_digest_is_stable_and_sensitive() {
        let c = Campaign::single(sample_spec());
        let d1 = c.digest();
        assert_eq!(d1, Campaign::single(sample_spec()).digest());
        assert!(is_digest(&d1), "{d1:?}");

        let mut other = sample_spec();
        other.seeds = vec![1];
        assert_ne!(d1, Campaign::single(other).digest());

        let mut renamed = sample_spec();
        renamed.name = "codec-sample-2".into();
        assert_ne!(d1, Campaign::single(renamed).digest());
    }

    #[test]
    fn campaign_round_trips_through_text() {
        let c = Campaign::new("pair", vec![sample_spec(), sample_spec()]);
        let text = c.canonical();
        let back = Campaign::parse(&text).expect("parses");
        assert_eq!(back, c);
        assert_eq!(back.canonical(), text);
        assert_eq!(back.cell_count(), 2 * c.panels[0].cell_count());
    }

    #[test]
    fn seeds_beyond_f64_precision_survive() {
        let mut spec = sample_spec();
        spec.seeds = vec![u64::MAX, (1 << 53) + 1, 12];
        let text = spec_json(&spec).render();
        let back = spec_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.seeds, spec.seeds);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(spec_from_json(&Json::obj()).is_err());
        let no_kind = Json::obj().set("label", "x").set("group", "g");
        assert!(unit_from(&no_kind).is_err());
        let both = Json::obj()
            .set("label", "x")
            .set("named", "spp")
            .set("pythia", pythia_config_json(&PythiaConfig::basic()));
        assert!(prefetcher_from(&both).is_err());
        assert!(pattern_from(&Json::obj().set("t", "nope")).is_err());
    }

    #[test]
    fn digest_format_guard() {
        assert!(is_digest("0123456789abcdef"));
        assert!(!is_digest("0123456789ABCDEF"));
        assert!(!is_digest("0123"));
        assert!(!is_digest("0123456789abcdeg"));
    }
}
