//! Typed sweep artifacts: [`CellResult`] / [`SweepResult`] and the
//! markdown / JSON / CSV emitters.

use pythia_sim::stats::{SimReport, Throughput};
use pythia_stats::json::{metrics_json, Json};
use pythia_stats::metrics::Metrics;
use pythia_stats::report::Table;

/// A small raw-counter summary kept per cell (and per baseline), for
/// figures that need more than the Appendix A.6 ratios — e.g. the Fig. 14
/// bandwidth-bucket residency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawSummary {
    /// Geometric-mean IPC across cores.
    pub ipc: f64,
    /// LLC demand-load MPKI.
    pub llc_mpki: f64,
    /// Prefetches issued across cores.
    pub prefetches_issued: u64,
    /// DRAM bandwidth-utilization bucket residency (Fig. 14 windows).
    pub bw_bucket_windows: [u64; 4],
}

impl RawSummary {
    /// Extracts the summary from a full report.
    pub fn of(report: &SimReport) -> Self {
        Self {
            ipc: report.geomean_ipc(),
            llc_mpki: report.llc_mpki(),
            prefetches_issued: report.prefetches_issued(),
            bw_bucket_windows: report.dram.bw_bucket_windows,
        }
    }
}

/// The result of one grid cell: its coordinates plus the derived metrics
/// against the sweep's baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Name of the sweep this cell belongs to (distinguishes panels after
    /// [`SweepResult::merge`]).
    pub sweep: String,
    /// Work-unit label (workload or mix name).
    pub unit: String,
    /// Work-unit group (suite label or category).
    pub group: String,
    /// Prefetcher label.
    pub prefetcher: String,
    /// Configuration-point label.
    pub config: String,
    /// Seed offset of the replication axis.
    pub seed: u64,
    /// Appendix A.6 metrics vs. the sweep baseline.
    pub metrics: Metrics,
    /// Raw-counter summary of this cell's own run.
    pub raw: RawSummary,
}

impl CellResult {
    fn json(&self) -> Json {
        Json::obj()
            .set("sweep", self.sweep.as_str())
            .set("unit", self.unit.as_str())
            .set("group", self.group.as_str())
            .set("prefetcher", self.prefetcher.as_str())
            .set("config", self.config.as_str())
            // Seeds share the canonical codec's lossless u64 encoding
            // (decimal string beyond 2^53), unchanged for ordinary seeds.
            .set("seed", crate::codec::u64_json(self.seed))
            .set("metrics", metrics_json(&self.metrics))
            .set(
                "raw",
                Json::obj()
                    .set("ipc", self.raw.ipc)
                    .set("llc_mpki", self.raw.llc_mpki)
                    .set("prefetches_issued", self.raw.prefetches_issued)
                    .set(
                        "bw_bucket_windows",
                        Json::Arr(
                            self.raw
                                .bw_bucket_windows
                                .iter()
                                .map(|w| (*w).into())
                                .collect(),
                        ),
                    ),
            )
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let str_of = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell: missing string {key:?}"))
        };
        let metrics = j.get("metrics").ok_or("cell: missing metrics")?;
        let mf = |key: &str| -> Result<f64, String> {
            metrics
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cell metrics: missing {key:?}"))
        };
        let raw = j.get("raw").ok_or("cell: missing raw")?;
        let rf = |key: &str| -> Result<f64, String> {
            raw.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cell raw: missing {key:?}"))
        };
        let buckets = raw
            .get("bw_bucket_windows")
            .and_then(Json::as_arr)
            .ok_or("cell raw: missing bw_bucket_windows")?;
        if buckets.len() != 4 {
            return Err("cell raw: bw_bucket_windows must have 4 entries".into());
        }
        let mut bw_bucket_windows = [0u64; 4];
        for (slot, b) in bw_bucket_windows.iter_mut().zip(buckets) {
            *slot = b.as_u64().ok_or("cell raw: bad bucket value")?;
        }
        Ok(Self {
            sweep: str_of("sweep")?,
            unit: str_of("unit")?,
            group: str_of("group")?,
            prefetcher: str_of("prefetcher")?,
            config: str_of("config")?,
            seed: crate::codec::u64_value(j.get("seed").ok_or("cell: missing seed")?)
                .map_err(|e| format!("cell seed: {e}"))?,
            metrics: Metrics {
                speedup: mf("speedup")?,
                coverage: mf("coverage")?,
                overprediction: mf("overprediction")?,
                ipc: mf("ipc")?,
                baseline_mpki: mf("baseline_mpki")?,
                accuracy: mf("accuracy")?,
            },
            raw: RawSummary {
                ipc: rf("ipc")?,
                llc_mpki: rf("llc_mpki")?,
                prefetches_issued: raw
                    .get("prefetches_issued")
                    .and_then(Json::as_u64)
                    .ok_or("cell raw: missing prefetches_issued")?,
                bw_bucket_windows,
            },
        })
    }

    fn table_row(&self) -> Vec<String> {
        vec![
            self.sweep.clone(),
            self.unit.clone(),
            self.group.clone(),
            self.prefetcher.clone(),
            self.config.clone(),
            self.seed.to_string(),
            format!("{:.6}", self.metrics.speedup),
            format!("{:.6}", self.metrics.ipc),
            format!("{:.6}", self.metrics.coverage),
            format!("{:.6}", self.metrics.overprediction),
            format!("{:.6}", self.metrics.accuracy),
            format!("{:.6}", self.metrics.baseline_mpki),
        ]
    }
}

/// Column headers of the long-format table emitted by
/// [`SweepResult::long_table`] (shared by the markdown and CSV formats).
pub const LONG_HEADERS: [&str; 12] = [
    "sweep",
    "unit",
    "group",
    "prefetcher",
    "config",
    "seed",
    "speedup",
    "ipc",
    "coverage",
    "overprediction",
    "accuracy",
    "baseline_mpki",
];

/// The full, typed result of one sweep (or of several merged panels):
/// baseline rows first, then every measured cell in deterministic grid
/// order — independent of how many worker threads executed the grid.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Sweep (campaign) name.
    pub name: String,
    /// Baseline runs, one per (unit × config × seed). Their metrics are
    /// self-comparisons (speedup 1.0); their [`RawSummary`] carries the raw
    /// counters figures like Fig. 14 read.
    pub baselines: Vec<CellResult>,
    /// Measured cells, in grid order (unit-major, then config, then
    /// prefetcher, then seed).
    pub cells: Vec<CellResult>,
    /// Wall-clock throughput of the simulations freshly executed for this
    /// result (None for hand-built results). Telemetry only: excluded
    /// from equality — wall time varies run to run while the cells are
    /// bit-deterministic.
    pub throughput: Option<Throughput>,
}

/// Equality covers the deterministic payload (name, baselines, cells);
/// the wall-clock [`SweepResult::throughput`] telemetry is excluded so
/// the engine's parallel == serial guarantee stays byte-exact.
impl PartialEq for SweepResult {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.baselines == other.baselines && self.cells == other.cells
    }
}

impl SweepResult {
    /// Concatenates several sweeps (e.g. the per-core-count panels of
    /// Fig. 8(a)) under one name. Cells keep their original `sweep` field.
    pub fn merge(name: &str, parts: impl IntoIterator<Item = SweepResult>) -> Self {
        let mut out = Self {
            name: name.to_string(),
            baselines: Vec::new(),
            cells: Vec::new(),
            throughput: None,
        };
        for p in parts {
            out.baselines.extend(p.baselines);
            out.cells.extend(p.cells);
            out.throughput = match (out.throughput, p.throughput) {
                (Some(a), Some(b)) => Some(a.merged(b)),
                (a, b) => a.or(b),
            };
        }
        out
    }

    /// The long-format table (baseline rows first, then cells).
    pub fn long_table(&self) -> Table {
        let mut t = Table::new(&LONG_HEADERS);
        for c in self.baselines.iter().chain(&self.cells) {
            t.row(&c.table_row());
        }
        t
    }

    /// Renders the long-format table as markdown, with a throughput
    /// footer when telemetry is present.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# sweep {}\n\n{}",
            self.name,
            self.long_table().to_markdown()
        );
        if let Some(t) = self.throughput {
            out.push_str(&format!(
                "\nthroughput: {:.2} Minst/s ({} simulated instructions in {:.2} s wall)\n",
                t.minst_per_sec(),
                t.instructions,
                t.wall_seconds
            ));
        }
        out
    }

    /// Renders the long-format table as CSV.
    pub fn to_csv(&self) -> String {
        self.long_table().to_csv()
    }

    /// Serializes the whole result as JSON — the `BENCH_*.json` data
    /// source. Numbers are emitted exactly (shortest round-trippable form).
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj()
            .set("name", self.name.as_str())
            .set(
                "baselines",
                Json::Arr(self.baselines.iter().map(CellResult::json).collect()),
            )
            .set(
                "cells",
                Json::Arr(self.cells.iter().map(CellResult::json).collect()),
            );
        if let Some(t) = self.throughput {
            out = out.set(
                "throughput",
                Json::obj()
                    .set("instructions", t.instructions)
                    .set("wall_seconds", t.wall_seconds)
                    .set("minst_per_sec", t.minst_per_sec()),
            );
        }
        out
    }

    /// Drops the wall-clock [`SweepResult::throughput`] telemetry, leaving
    /// only the deterministic payload — the form the content-addressed
    /// result store persists and the service serves.
    pub fn stripped(mut self) -> Self {
        self.throughput = None;
        self
    }

    /// Decodes a result from the JSON produced by [`SweepResult::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed key.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let cells_of = |key: &str| -> Result<Vec<CellResult>, String> {
            j.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing array {key:?}"))?
                .iter()
                .map(CellResult::from_json)
                .collect()
        };
        let throughput = match j.get("throughput") {
            None => None,
            Some(t) => Some(Throughput::new(
                t.get("instructions")
                    .and_then(Json::as_u64)
                    .ok_or("throughput: missing instructions")?,
                t.get("wall_seconds")
                    .and_then(Json::as_f64)
                    .ok_or("throughput: missing wall_seconds")?,
            )),
        };
        Ok(Self {
            name: j
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing name")?
                .to_string(),
            baselines: cells_of("baselines")?,
            cells: cells_of("cells")?,
            throughput,
        })
    }

    /// Renders in the named format: `"md"`, `"json"` or `"csv"`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the unknown format.
    pub fn render(&self, format: &str) -> Result<String, String> {
        match format {
            "md" | "markdown" => Ok(self.to_markdown()),
            "json" => Ok(self.to_json().render_pretty()),
            "csv" => Ok(self.to_csv()),
            other => Err(format!("unknown format {other:?} (want md, json or csv)")),
        }
    }

    /// The baseline row for a given (unit, config, seed) coordinate.
    pub fn baseline_of(&self, unit: &str, config: &str, seed: u64) -> Option<&CellResult> {
        self.baselines
            .iter()
            .find(|b| b.unit == unit && b.config == config && b.seed == seed)
    }

    /// The measured cell at a given (unit, prefetcher, config) coordinate
    /// (first seed wins).
    pub fn cell(&self, unit: &str, prefetcher: &str, config: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.unit == unit && c.prefetcher == prefetcher && c.config == config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(unit: &str, pf: &str, speedup: f64) -> CellResult {
        CellResult {
            sweep: "t".into(),
            unit: unit.into(),
            group: "g".into(),
            prefetcher: pf.into(),
            config: "base".into(),
            seed: 0,
            metrics: Metrics {
                speedup,
                coverage: 0.5,
                overprediction: 0.1,
                ipc: 1.0,
                baseline_mpki: 12.0,
                accuracy: 0.9,
            },
            raw: RawSummary {
                ipc: 1.0,
                llc_mpki: 3.0,
                prefetches_issued: 42,
                bw_bucket_windows: [1, 2, 3, 4],
            },
        }
    }

    fn result() -> SweepResult {
        SweepResult {
            name: "t".into(),
            baselines: vec![cell("w", "none", 1.0)],
            cells: vec![cell("w", "spp", 1.25), cell("w", "pythia", 1.5)],
            throughput: None,
        }
    }

    #[test]
    fn emitters_agree_on_rows() {
        let r = result();
        let md = r.to_markdown();
        let csv = r.to_csv();
        assert_eq!(md.lines().count(), 2 + 2 + 3, "title + header/sep + rows");
        assert_eq!(csv.lines().count(), 1 + 3);
        assert!(md.contains("1.250000"));
        assert!(csv.contains("1.250000"));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let r = result();
        let rendered = r.to_json().render_pretty();
        let parsed = pythia_stats::json::parse(&rendered).expect("valid json");
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("t"));
        let cells = parsed.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 2);
        let speedup = cells[1]
            .get("metrics")
            .and_then(|m| m.get("speedup"))
            .and_then(Json::as_f64);
        assert_eq!(speedup, Some(1.5));
    }

    #[test]
    fn decoded_result_reproduces_the_artifact_even_with_huge_seeds() {
        // Seeds beyond f64's exact range must survive the artifact
        // round-trip (the spec codec supports them, so results must too).
        let mut r = result();
        r.cells[0].seed = u64::MAX;
        r.baselines[0].seed = (1 << 53) + 1;
        let rendered = r.to_json().render_pretty();
        let parsed = pythia_stats::json::parse(&rendered).expect("valid json");
        let back = SweepResult::from_json(&parsed).expect("decodes");
        assert_eq!(back.cells[0].seed, u64::MAX);
        assert_eq!(back.baselines[0].seed, (1 << 53) + 1);
        assert_eq!(back.to_json().render_pretty(), rendered, "byte-stable");
    }

    #[test]
    fn merge_concatenates_panels() {
        let merged = SweepResult::merge("both", [result(), result()]);
        assert_eq!(merged.cells.len(), 4);
        assert_eq!(merged.baselines.len(), 2);
        assert_eq!(merged.name, "both");
        assert_eq!(merged.cells[0].sweep, "t", "panel identity preserved");
    }

    #[test]
    fn lookup_helpers() {
        let r = result();
        assert!(r.baseline_of("w", "base", 0).is_some());
        assert!(r.baseline_of("w", "base", 1).is_none());
        assert_eq!(r.cell("w", "spp", "base").unwrap().metrics.speedup, 1.25);
    }

    #[test]
    fn render_rejects_unknown_format() {
        assert!(result().render("xml").is_err());
        assert!(result().render("md").is_ok());
        assert!(result().render("json").is_ok());
        assert!(result().render("csv").is_ok());
    }
}
