//! # pythia-sweep
//!
//! The declarative experiment-campaign engine behind every figure/table
//! harness of the Pythia reproduction.
//!
//! The paper's evaluation is ~20 figures and tables, each a grid of
//! *(workloads × prefetchers × system configurations × seeds)* simulations
//! followed by an aggregation (geomeans per suite, pivots per bandwidth
//! point, ...). Instead of 22 hand-rolled serial loops, a harness describes
//! its grid once as a [`SweepSpec`]:
//!
//! * [`WorkUnit`] — a single workload or an `n`-core mix,
//! * [`PrefetcherSpec`] — a registry prefetcher name or an inline
//!   [`pythia_core::PythiaConfig`] variant (for ablations and DSE),
//! * [`ConfigPoint`] — a labelled system configuration plus warmup/measure
//!   budgets (the swept axis of the Fig. 8 sensitivity studies),
//! * a baseline prefetcher every cell is compared against (Appendix A.6).
//!
//! [`run`] expands the grid into independent simulation jobs, executes them
//! across the [`pythia::runner::run_parallel`] worker pool — the in-process
//! stand-in for the paper's slurm fan-out (§A.5) — and returns a
//! [`SweepResult`]: one typed [`CellResult`] per grid cell, in a
//! deterministic grid order that is **independent of the worker thread
//! count** (the determinism tests pin parallel == serial, byte for byte).
//!
//! Results render as markdown ([`SweepResult::to_markdown`]), JSON
//! ([`SweepResult::to_json`] — the `BENCH_*.json` data source) and CSV
//! ([`SweepResult::to_csv`]), and aggregate through the combinators in
//! [`agg`] ([`SweepResult::pivot`], [`SweepResult::aggregate`],
//! [`SweepResult::weighted_coverage`]).
//!
//! # Example
//!
//! ```rust
//! use pythia_sweep::{ConfigPoint, Key, SweepSpec, Value};
//! use pythia_workloads::all_suites;
//!
//! let pool = all_suites();
//! let spec = SweepSpec::new("demo")
//!     .with_workloads(pool.iter().filter(|w| w.name.contains("mcf")).cloned())
//!     .with_prefetchers(&["stride"])
//!     .with_config(ConfigPoint::single_core("base", 1_000, 4_000));
//! let result = pythia_sweep::run(&spec, 2).expect("valid spec");
//! let table = result.pivot(Key::Unit, Key::Prefetcher, Value::Speedup);
//! assert!(!table.is_empty());
//! ```

//!
//! Campaigns are **content-addressable**: [`codec`] gives every spec one
//! canonical serialized form plus an FNV-1a digest, and [`store`] maps
//! digests to on-disk result artifacts, so identical campaigns cost one
//! simulation — the engine under `pythia-serve` and the one-shot
//! `pythia-cli sweep --cache-dir` path.

pub mod agg;
pub mod codec;
pub mod engine;
pub mod result;
pub mod spec;
pub mod store;

pub use agg::{Key, Value};
pub use codec::Campaign;
pub use engine::{plan_campaign, run, run_cached, BaselineCache, CampaignPlan, CellId, CellJob};
pub use result::{CellResult, RawSummary, SweepResult};
pub use spec::{ConfigPoint, PrefetcherKind, PrefetcherSpec, SweepSpec, WorkUnit};
pub use store::{run_campaign, ResultStore, StoreStats};
