//! Content-addressed on-disk result store with an optional byte budget.
//!
//! Maps a campaign digest ([`crate::codec::Campaign::digest`]) to the
//! stripped [`SweepResult`] JSON artifact. Because simulations are
//! bit-deterministic and specs are canonically encoded, a stored artifact
//! is byte-identical to what a fresh run of the same campaign would
//! produce (minus the wall-clock throughput telemetry, which is stripped
//! before storage) — so a hit can be served without simulating anything.
//!
//! Writes are atomic: the artifact is rendered into a hidden temp file in
//! the same directory and `rename`d into place, so readers (other serve
//! workers, concurrent one-shot CLI runs) never observe a torn file.
//!
//! When opened with a byte budget ([`ResultStore::open_bounded`]), the
//! store keeps an in-memory LRU index of artifact sizes and evicts the
//! least-recently-used artifacts whenever a write would push the total
//! over budget. Loads count as uses. The index is seeded from a directory
//! scan at open time (ordered by file mtime), so a restart inherits a
//! sensible recency order. Hit/miss/eviction counts are exposed through
//! [`StoreStats`] for the service `/metrics` endpoint.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pythia_stats::json::Json;

use crate::codec::{is_digest, Campaign};
use crate::engine::run_all;
use crate::result::SweepResult;

/// Monotonic store counters, readable without any lock.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Loads that found and decoded an artifact.
    pub hits: AtomicU64,
    /// Loads that found nothing (or a corrupt artifact).
    pub misses: AtomicU64,
    /// Artifacts written.
    pub stored: AtomicU64,
    /// Artifacts evicted to stay under the byte budget.
    pub evicted: AtomicU64,
}

impl StoreStats {
    /// Snapshot as a JSON object (the `store` key of `/metrics`).
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Json::obj()
            .set("hits", get(&self.hits))
            .set("misses", get(&self.misses))
            .set("stored", get(&self.stored))
            .set("evicted", get(&self.evicted))
    }
}

/// One indexed artifact: its size and its last-use stamp (a logical
/// clock, not wall time — higher means more recently used).
#[derive(Debug, Clone, Copy)]
struct Entry {
    bytes: u64,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Index {
    entries: HashMap<String, Entry>,
    total_bytes: u64,
    clock: u64,
}

impl Index {
    fn touch(&mut self, digest: &str, bytes: u64) {
        self.clock += 1;
        let stamp = self.clock;
        match self.entries.get_mut(digest) {
            Some(entry) => {
                self.total_bytes = self.total_bytes - entry.bytes + bytes;
                entry.bytes = bytes;
                entry.stamp = stamp;
            }
            None => {
                self.entries
                    .insert(digest.to_string(), Entry { bytes, stamp });
                self.total_bytes += bytes;
            }
        }
    }

    fn remove(&mut self, digest: &str) {
        if let Some(entry) = self.entries.remove(digest) {
            self.total_bytes -= entry.bytes;
        }
    }

    /// The least-recently-used digest, excluding `keep`.
    fn lru_victim(&self, keep: Option<&str>) -> Option<String> {
        self.entries
            .iter()
            .filter(|(digest, _)| Some(digest.as_str()) != keep)
            .min_by_key(|(_, entry)| entry.stamp)
            .map(|(digest, _)| digest.clone())
    }
}

#[derive(Debug)]
struct StoreInner {
    dir: PathBuf,
    max_bytes: Option<u64>,
    index: Mutex<Index>,
    stats: StoreStats,
}

/// A directory of `<digest>.json` result artifacts. Clones share one
/// index and one set of counters.
#[derive(Debug, Clone)]
pub struct ResultStore {
    inner: Arc<StoreInner>,
}

impl ResultStore {
    /// Opens (creating if needed) an unbounded store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns a message if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        Self::open_bounded(dir, None)
    }

    /// Opens (creating if needed) a store rooted at `dir` with an optional
    /// byte budget. Existing artifacts are indexed by mtime order; if they
    /// already exceed the budget, the oldest are evicted immediately.
    ///
    /// # Errors
    ///
    /// Returns a message if the directory cannot be created or scanned.
    pub fn open_bounded(dir: impl Into<PathBuf>, max_bytes: Option<u64>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut index = Index::default();
        // Seed the index from disk: digest-named .json files only, so temp
        // files and unrelated neighbors (a journal, say) are untouched.
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if !is_digest(stem) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            found.push((stem.to_string(), meta.len(), mtime));
        }
        found.sort_by_key(|(_, _, mtime)| *mtime);
        for (digest, bytes, _) in found {
            index.touch(&digest, bytes);
        }
        let store = Self {
            inner: Arc::new(StoreInner {
                dir,
                max_bytes,
                index: Mutex::new(index),
                stats: StoreStats::default(),
            }),
        };
        {
            let mut index = store.inner.index.lock().expect("store index lock");
            store.evict_over_budget(&mut index, None);
        }
        Ok(store)
    }

    /// The artifact path for a digest.
    pub fn path(&self, digest: &str) -> PathBuf {
        self.inner.dir.join(format!("{digest}.json"))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The configured byte budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.inner.max_bytes
    }

    /// Total bytes currently indexed.
    pub fn bytes_used(&self) -> u64 {
        self.inner
            .index
            .lock()
            .expect("store index lock")
            .total_bytes
    }

    /// The store counters.
    pub fn stats(&self) -> &StoreStats {
        &self.inner.stats
    }

    /// Whether an artifact exists for `digest`.
    pub fn contains(&self, digest: &str) -> bool {
        is_digest(digest) && self.path(digest).is_file()
    }

    /// Loads the result stored under `digest`, if any. A successful load
    /// marks the artifact as recently used for eviction purposes.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed digest or an unreadable/corrupt
    /// artifact (a missing artifact is `Ok(None)`).
    pub fn load(&self, digest: &str) -> Result<Option<SweepResult>, String> {
        if !is_digest(digest) {
            return Err(format!("malformed digest {digest:?}"));
        }
        let path = self.path(digest);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
                // Drop any stale index entry (someone removed the file).
                self.inner
                    .index
                    .lock()
                    .expect("store index lock")
                    .remove(digest);
                return Ok(None);
            }
            Err(e) => {
                self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
                return Err(format!("{}: {e}", path.display()));
            }
        };
        let decoded = pythia_stats::json::parse(&text)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|json| {
                SweepResult::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
            });
        match decoded {
            Ok(result) => {
                self.inner.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .index
                    .lock()
                    .expect("store index lock")
                    .touch(digest, text.len() as u64);
                Ok(Some(result))
            }
            Err(e) => {
                self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Stores `result` under `digest`, stripping the wall-clock telemetry
    /// so the artifact is deterministic. The write is atomic
    /// (temp-file + rename); concurrent writers of the same digest race
    /// benignly because they write identical bytes. Under a byte budget,
    /// least-recently-used artifacts are evicted until the new artifact
    /// fits.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed digest, an io failure, or an
    /// artifact that alone exceeds the whole budget.
    pub fn store(&self, digest: &str, result: &SweepResult) -> Result<(), String> {
        if !is_digest(digest) {
            return Err(format!("malformed digest {digest:?}"));
        }
        let rendered = result.clone().stripped().to_json().render_pretty();
        let bytes = rendered.len() as u64;
        if let Some(budget) = self.inner.max_bytes {
            if bytes > budget {
                return Err(format!(
                    "artifact for {digest} is {bytes} bytes, over the {budget}-byte store budget"
                ));
            }
        }
        let tmp = self.inner.dir.join(format!(
            ".tmp-{digest}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&tmp, rendered).map_err(|e| format!("{}: {e}", tmp.display()))?;
        let path = self.path(digest);
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("{}: {e}", path.display())
        })?;
        self.inner.stats.stored.fetch_add(1, Ordering::Relaxed);
        let mut index = self.inner.index.lock().expect("store index lock");
        index.touch(digest, bytes);
        self.evict_over_budget(&mut index, Some(digest));
        Ok(())
    }

    /// Evicts LRU artifacts until `total_bytes` fits the budget. `keep`
    /// protects the just-written digest from evicting itself.
    fn evict_over_budget(&self, index: &mut Index, keep: Option<&str>) {
        let Some(budget) = self.inner.max_bytes else {
            return;
        };
        while index.total_bytes > budget {
            let Some(victim) = index.lru_victim(keep) else {
                break;
            };
            index.remove(&victim);
            if let Err(e) = std::fs::remove_file(self.path(&victim)) {
                if e.kind() != std::io::ErrorKind::NotFound {
                    eprintln!("store: failed to evict {victim}: {e}");
                }
            }
            self.inner.stats.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs a campaign through an optional [`ResultStore`]: on a digest hit the
/// stored artifact is returned without simulating; on a miss the campaign
/// runs ([`run_all`] semantics) and the stripped result is persisted.
///
/// Returns `(result, cached)` where `cached` reports whether the result
/// came from the store. The returned result is always stripped of
/// throughput telemetry so hit and miss render identically.
///
/// # Errors
///
/// Returns validation errors, simulation-spec errors, or store io errors.
pub fn run_campaign(
    campaign: &Campaign,
    threads: usize,
    store: Option<&ResultStore>,
) -> Result<(SweepResult, bool), String> {
    campaign.validate()?;
    let digest = campaign.digest();
    if let Some(store) = store {
        if let Some(hit) = store.load(&digest)? {
            return Ok((hit, true));
        }
    }
    let result = run_all(&campaign.name, &campaign.panels, threads)?.stripped();
    if let Some(store) = store {
        store.store(&digest, &result)?;
    }
    Ok((result, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfigPoint, SweepSpec};
    use pythia_workloads::all_suites;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pythia-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_campaign() -> Campaign {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        Campaign::single(
            SweepSpec::new("store-test")
                .with_workloads([w])
                .with_prefetchers(&["stride"])
                .with_config(ConfigPoint::single_core("base", 1_000, 4_000)),
        )
    }

    /// A fabricated empty result: every test artifact renders to the same
    /// byte count, which makes budget arithmetic exact.
    fn empty_result(name: &str) -> SweepResult {
        SweepResult {
            name: name.to_string(),
            baselines: Vec::new(),
            cells: Vec::new(),
            throughput: None,
        }
    }

    /// Fabricated but well-formed digests (16 lowercase hex chars).
    fn fake_digest(i: u64) -> String {
        format!("{i:016x}")
    }

    #[test]
    fn miss_runs_and_hit_is_byte_identical() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).expect("store opens");
        let campaign = tiny_campaign();
        let digest = campaign.digest();
        assert!(!store.contains(&digest));

        let (fresh, cached) = run_campaign(&campaign, 1, Some(&store)).expect("runs");
        assert!(!cached);
        assert!(store.contains(&digest));

        let (hit, cached) = run_campaign(&campaign, 1, Some(&store)).expect("loads");
        assert!(cached);
        assert_eq!(
            hit.to_json().render_pretty(),
            fresh.to_json().render_pretty(),
            "cache hit is byte-identical to the fresh run"
        );
        // And byte-identical to the on-disk artifact itself.
        let on_disk = std::fs::read_to_string(store.path(&digest)).expect("artifact");
        assert_eq!(on_disk, fresh.to_json().render_pretty());
        assert_eq!(store.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().stored.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_digests_are_rejected() {
        let dir = tmp_dir("malformed");
        let store = ResultStore::open(&dir).expect("store opens");
        assert!(store.load("../../etc/passwd").is_err());
        assert!(store.load("ABCD").is_err());
        assert!(!store.contains("not-a-digest"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_error_instead_of_panicking() {
        let dir = tmp_dir("corrupt");
        let store = ResultStore::open(&dir).expect("store opens");
        let digest = "0123456789abcdef";
        std::fs::write(store.path(digest), "{ not json").expect("write");
        assert!(store.load(digest).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let dir = tmp_dir("lru");
        // Size one artifact, then budget for exactly two.
        let probe = ResultStore::open(&dir).expect("probe opens");
        probe
            .store(&fake_digest(0), &empty_result("x"))
            .expect("probe write");
        let artifact_bytes = std::fs::metadata(probe.path(&fake_digest(0)))
            .expect("meta")
            .len();
        std::fs::remove_file(probe.path(&fake_digest(0))).expect("cleanup probe");
        drop(probe);

        let budget = artifact_bytes * 2;
        let store = ResultStore::open_bounded(&dir, Some(budget)).expect("store opens");
        store.store(&fake_digest(1), &empty_result("a")).expect("a");
        store.store(&fake_digest(2), &empty_result("b")).expect("b");
        assert!(store.bytes_used() <= budget);
        assert_eq!(store.stats().evicted.load(Ordering::Relaxed), 0);

        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.load(&fake_digest(1)).expect("load").is_some());
        store.store(&fake_digest(3), &empty_result("c")).expect("c");
        assert!(store.bytes_used() <= budget, "never exceeds the budget");
        assert_eq!(store.stats().evicted.load(Ordering::Relaxed), 1);
        assert!(!store.contains(&fake_digest(2)), "LRU artifact evicted");
        assert!(store.contains(&fake_digest(1)), "recently-used survives");
        assert!(store.contains(&fake_digest(3)), "new artifact present");

        // An artifact bigger than the whole budget is refused outright.
        let tiny = ResultStore::open_bounded(tmp_dir("lru-tiny"), Some(4)).expect("opens");
        let err = tiny
            .store(&fake_digest(9), &empty_result("big"))
            .unwrap_err();
        assert!(err.contains("budget"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(tmp_dir("lru-tiny"));
    }

    #[test]
    fn open_bounded_inherits_and_trims_existing_artifacts() {
        let dir = tmp_dir("inherit");
        {
            let store = ResultStore::open(&dir).expect("unbounded opens");
            for i in 1..=3u64 {
                store
                    .store(&fake_digest(i), &empty_result("x"))
                    .expect("write");
            }
        }
        let artifact_bytes = std::fs::metadata(
            ResultStore::open(&dir)
                .expect("probe")
                .path(&fake_digest(1)),
        )
        .expect("meta")
        .len();
        // Budget for two: reopening must immediately evict down to fit.
        let store =
            ResultStore::open_bounded(&dir, Some(artifact_bytes * 2)).expect("bounded opens");
        assert!(store.bytes_used() <= artifact_bytes * 2);
        assert_eq!(store.stats().evicted.load(Ordering::Relaxed), 1);
        let survivors = (1..=3u64)
            .filter(|i| store.contains(&fake_digest(*i)))
            .count();
        assert_eq!(survivors, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
