//! Content-addressed on-disk result store.
//!
//! Maps a campaign digest ([`crate::codec::Campaign::digest`]) to the
//! stripped [`SweepResult`] JSON artifact. Because simulations are
//! bit-deterministic and specs are canonically encoded, a stored artifact
//! is byte-identical to what a fresh run of the same campaign would
//! produce (minus the wall-clock throughput telemetry, which is stripped
//! before storage) — so a hit can be served without simulating anything.
//!
//! Writes are atomic: the artifact is rendered into a hidden temp file in
//! the same directory and `rename`d into place, so readers (other serve
//! workers, concurrent one-shot CLI runs) never observe a torn file.

use std::path::{Path, PathBuf};

use crate::codec::{is_digest, Campaign};
use crate::engine::run_all;
use crate::result::SweepResult;

/// A directory of `<digest>.json` result artifacts.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns a message if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        Ok(Self { dir })
    }

    /// The artifact path for a digest.
    pub fn path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether an artifact exists for `digest`.
    pub fn contains(&self, digest: &str) -> bool {
        is_digest(digest) && self.path(digest).is_file()
    }

    /// Loads the result stored under `digest`, if any.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed digest or an unreadable/corrupt
    /// artifact (a missing artifact is `Ok(None)`).
    pub fn load(&self, digest: &str) -> Result<Option<SweepResult>, String> {
        if !is_digest(digest) {
            return Err(format!("malformed digest {digest:?}"));
        }
        let path = self.path(digest);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let json =
            pythia_stats::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        SweepResult::from_json(&json)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Stores `result` under `digest`, stripping the wall-clock telemetry
    /// so the artifact is deterministic. The write is atomic
    /// (temp-file + rename); concurrent writers of the same digest race
    /// benignly because they write identical bytes.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed digest or an io failure.
    pub fn store(&self, digest: &str, result: &SweepResult) -> Result<(), String> {
        if !is_digest(digest) {
            return Err(format!("malformed digest {digest:?}"));
        }
        let rendered = result.clone().stripped().to_json().render_pretty();
        let tmp = self.dir.join(format!(
            ".tmp-{digest}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&tmp, rendered).map_err(|e| format!("{}: {e}", tmp.display()))?;
        let path = self.path(digest);
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("{}: {e}", path.display())
        })
    }
}

/// Runs a campaign through an optional [`ResultStore`]: on a digest hit the
/// stored artifact is returned without simulating; on a miss the campaign
/// runs ([`run_all`] semantics) and the stripped result is persisted.
///
/// Returns `(result, cached)` where `cached` reports whether the result
/// came from the store. The returned result is always stripped of
/// throughput telemetry so hit and miss render identically.
///
/// # Errors
///
/// Returns validation errors, simulation-spec errors, or store io errors.
pub fn run_campaign(
    campaign: &Campaign,
    threads: usize,
    store: Option<&ResultStore>,
) -> Result<(SweepResult, bool), String> {
    campaign.validate()?;
    let digest = campaign.digest();
    if let Some(store) = store {
        if let Some(hit) = store.load(&digest)? {
            return Ok((hit, true));
        }
    }
    let result = run_all(&campaign.name, &campaign.panels, threads)?.stripped();
    if let Some(store) = store {
        store.store(&digest, &result)?;
    }
    Ok((result, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfigPoint, SweepSpec};
    use pythia_workloads::all_suites;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pythia-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_campaign() -> Campaign {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        Campaign::single(
            SweepSpec::new("store-test")
                .with_workloads([w])
                .with_prefetchers(&["stride"])
                .with_config(ConfigPoint::single_core("base", 1_000, 4_000)),
        )
    }

    #[test]
    fn miss_runs_and_hit_is_byte_identical() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).expect("store opens");
        let campaign = tiny_campaign();
        let digest = campaign.digest();
        assert!(!store.contains(&digest));

        let (fresh, cached) = run_campaign(&campaign, 1, Some(&store)).expect("runs");
        assert!(!cached);
        assert!(store.contains(&digest));

        let (hit, cached) = run_campaign(&campaign, 1, Some(&store)).expect("loads");
        assert!(cached);
        assert_eq!(
            hit.to_json().render_pretty(),
            fresh.to_json().render_pretty(),
            "cache hit is byte-identical to the fresh run"
        );
        // And byte-identical to the on-disk artifact itself.
        let on_disk = std::fs::read_to_string(store.path(&digest)).expect("artifact");
        assert_eq!(on_disk, fresh.to_json().render_pretty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_digests_are_rejected() {
        let dir = tmp_dir("malformed");
        let store = ResultStore::open(&dir).expect("store opens");
        assert!(store.load("../../etc/passwd").is_err());
        assert!(store.load("ABCD").is_err());
        assert!(!store.contains("not-a-digest"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_error_instead_of_panicking() {
        let dir = tmp_dir("corrupt");
        let store = ResultStore::open(&dir).expect("store opens");
        let digest = "0123456789abcdef";
        std::fs::write(store.path(digest), "{ not json").expect("write");
        assert!(store.load(digest).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
