//! Grid expansion and parallel execution.
//!
//! Jobs carry *lazy* trace-source factories: a job closure owns only the
//! (cheap) workload specs and opens streaming [`TraceSource`]s inside the
//! worker, so neither the queue nor any worker ever holds a materialized
//! trace and per-job peak memory is independent of trace length.

use pythia::runner::{build_pythia_with, run_parallel, run_sources, run_sources_with};
use pythia_sim::stats::{SimReport, Throughput};
use pythia_sim::trace::TraceSource;
use pythia_stats::metrics;

use crate::result::{CellResult, RawSummary, SweepResult};
use crate::spec::{ConfigPoint, PrefetcherKind, SweepSpec, WorkUnit};

/// Memoizes baseline simulations across campaigns.
///
/// Two places re-run identical baselines otherwise: multi-panel figures
/// whose panels share units and configs (e.g. Fig. 9's per-suite and
/// ladder panels both cover the Table 6 pool), and the §4.3 DSE
/// procedures, which call the engine once per objective evaluation with
/// the same workload cross-section every time. Keys cover everything that
/// determines a baseline run — workload specs, system config, budgets,
/// seed offset and the baseline prefetcher — so a hit is bit-identical to
/// a fresh simulation (simulations are deterministic).
#[derive(Debug, Default)]
pub struct BaselineCache {
    map: std::collections::HashMap<String, SimReport>,
}

impl BaselineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized baseline reports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn key(unit: &WorkUnit, kind: &PrefetcherKind, config: &ConfigPoint, seed: u64) -> String {
        format!(
            "{:?}|{kind:?}|{:?}|{}|{}|{seed}",
            unit.workloads.iter().map(|w| &w.spec).collect::<Vec<_>>(),
            config.system,
            config.warmup,
            config.measure
        )
    }
}

/// Runs one simulation for a grid coordinate, streaming every trace.
fn simulate(unit: &WorkUnit, kind: &PrefetcherKind, config: &ConfigPoint, seed: u64) -> SimReport {
    let spec = config.run_spec();
    let len = (config.warmup + config.measure) as usize;
    let sources: Vec<Box<dyn TraceSource>> = unit
        .workloads
        .iter()
        .map(|w| {
            let mut w = w.clone();
            w.spec.seed = w.spec.seed.wrapping_add(seed);
            w.source(len)
        })
        .collect();
    match kind {
        PrefetcherKind::Named(name) => run_sources(sources, name, &spec),
        PrefetcherKind::Pythia(cfg) => {
            let cfg = cfg.clone();
            run_sources_with(sources, &spec, move |_core| build_pythia_with(cfg.clone()))
        }
    }
}

/// Executes a sweep across `threads` worker threads and returns its typed
/// result.
///
/// Every simulation in the grid — baselines included — is an independent
/// job on the shared [`run_parallel`] pool; results come back in grid order
/// regardless of scheduling, so the output is byte-identical for any thread
/// count (including 1).
///
/// # Errors
///
/// Returns the first [`SweepSpec::validate`] error; never fails after
/// validation passes.
pub fn run(spec: &SweepSpec, threads: usize) -> Result<SweepResult, String> {
    run_cached(spec, threads, &mut BaselineCache::new())
}

/// [`run`] with a [`BaselineCache`]: baseline coordinates already in the
/// cache are served from memory instead of re-simulated, and fresh
/// baseline reports are inserted for later campaigns. Results are
/// bit-identical to an uncached [`run`].
///
/// # Errors
///
/// Returns the first [`SweepSpec::validate`] error.
pub fn run_cached(
    spec: &SweepSpec,
    threads: usize,
    cache: &mut BaselineCache,
) -> Result<SweepResult, String> {
    spec.validate()?;
    let threads = threads.max(1);

    // Expand the grid. Uncached baseline jobs first (one per unit × config
    // × seed), then every measured cell, all in one batch so baselines
    // don't serialize ahead of the cells.
    let mut baseline_keys: Vec<String> = Vec::new();
    let mut jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = Vec::new();
    // Simulated instructions scheduled this run (freshly executed jobs
    // only — cache hits cost no wall time), for the throughput telemetry.
    let mut planned_instructions = 0u64;
    for u in &spec.units {
        for cp in &spec.configs {
            for &seed in &spec.seeds {
                let key = BaselineCache::key(u, &spec.baseline.kind, cp, seed);
                if !cache.map.contains_key(&key) && !baseline_keys.contains(&key) {
                    let (u, k, cp) = (u.clone(), spec.baseline.kind.clone(), cp.clone());
                    planned_instructions += (cp.warmup + cp.measure) * u.cores() as u64;
                    jobs.push(Box::new(move || simulate(&u, &k, &cp, seed)));
                    baseline_keys.push(key.clone());
                }
            }
        }
    }
    for u in &spec.units {
        for cp in &spec.configs {
            for p in &spec.prefetchers {
                for &seed in &spec.seeds {
                    let (u, k, cp) = (u.clone(), p.kind.clone(), cp.clone());
                    planned_instructions += (cp.warmup + cp.measure) * u.cores() as u64;
                    jobs.push(Box::new(move || simulate(&u, &k, &cp, seed)));
                }
            }
        }
    }

    let started = std::time::Instant::now();
    let mut reports = run_parallel(jobs, threads).into_iter();
    let throughput = Throughput::new(planned_instructions, started.elapsed().as_secs_f64());
    for (key, report) in baseline_keys.into_iter().zip(reports.by_ref()) {
        cache.map.insert(key, report);
    }
    let baseline_reports: Vec<SimReport> = {
        let mut out = Vec::new();
        for u in &spec.units {
            for cp in &spec.configs {
                for &seed in &spec.seeds {
                    let key = BaselineCache::key(u, &spec.baseline.kind, cp, seed);
                    out.push(cache.map[&key].clone());
                }
            }
        }
        out
    };

    // Index baselines in the same (unit, config, seed) expansion order.
    let baseline_index =
        |ui: usize, ci: usize, si: usize| (ui * spec.configs.len() + ci) * spec.seeds.len() + si;

    let mut baselines = Vec::with_capacity(baseline_reports.len());
    for (ui, u) in spec.units.iter().enumerate() {
        for (ci, cp) in spec.configs.iter().enumerate() {
            for (si, &seed) in spec.seeds.iter().enumerate() {
                let report = &baseline_reports[baseline_index(ui, ci, si)];
                baselines.push(CellResult {
                    sweep: spec.name.clone(),
                    unit: u.label.clone(),
                    group: u.group.clone(),
                    prefetcher: spec.baseline.label.clone(),
                    config: cp.label.clone(),
                    seed,
                    metrics: metrics::compare(report, report),
                    raw: RawSummary::of(report),
                });
            }
        }
    }

    let mut cells = Vec::with_capacity(spec.cell_count());
    for (ui, u) in spec.units.iter().enumerate() {
        for (ci, cp) in spec.configs.iter().enumerate() {
            for p in &spec.prefetchers {
                for (si, &seed) in spec.seeds.iter().enumerate() {
                    let report = reports.next().expect("one report per cell job");
                    let baseline = &baseline_reports[baseline_index(ui, ci, si)];
                    cells.push(CellResult {
                        sweep: spec.name.clone(),
                        unit: u.label.clone(),
                        group: u.group.clone(),
                        prefetcher: p.label.clone(),
                        config: cp.label.clone(),
                        seed,
                        metrics: metrics::compare(baseline, &report),
                        raw: RawSummary::of(&report),
                    });
                }
            }
        }
    }

    Ok(SweepResult {
        name: spec.name.clone(),
        baselines,
        cells,
        throughput: Some(throughput),
    })
}

/// Runs several sweeps (e.g. the panels of one figure) and merges them
/// under `name`. Each panel still fans out over `threads` workers, and a
/// shared [`BaselineCache`] keeps panels with overlapping (units ×
/// configs × seeds) from re-simulating each other's baselines — Fig. 9's
/// two panels cover the same 50-workload pool, for example.
///
/// # Errors
///
/// Returns the first validation error among the specs.
pub fn run_all(name: &str, specs: &[SweepSpec], threads: usize) -> Result<SweepResult, String> {
    let mut cache = BaselineCache::new();
    let mut parts = Vec::with_capacity(specs.len());
    for s in specs {
        parts.push(run_cached(s, threads, &mut cache)?);
    }
    Ok(SweepResult::merge(name, parts))
}
