//! Grid expansion and parallel execution.
//!
//! Jobs carry *lazy* trace-source factories: a job closure owns only the
//! (cheap) workload specs and opens streaming [`TraceSource`]s inside the
//! worker, so neither the queue nor any worker ever holds a materialized
//! trace and per-job peak memory is independent of trace length.

use pythia::runner::{build_pythia_with, run_parallel, run_sources, run_sources_with};
use pythia_sim::stats::{SimReport, Throughput};
use pythia_sim::trace::TraceSource;
use pythia_stats::metrics;

use crate::result::{CellResult, RawSummary, SweepResult};
use crate::spec::{ConfigPoint, PrefetcherKind, SweepSpec, WorkUnit};

/// Memoizes baseline simulations across campaigns.
///
/// Two places re-run identical baselines otherwise: multi-panel figures
/// whose panels share units and configs (e.g. Fig. 9's per-suite and
/// ladder panels both cover the Table 6 pool), and the §4.3 DSE
/// procedures, which call the engine once per objective evaluation with
/// the same workload cross-section every time. Keys cover everything that
/// determines a baseline run — workload specs, system config, budgets,
/// seed offset and the baseline prefetcher — so a hit is bit-identical to
/// a fresh simulation (simulations are deterministic).
#[derive(Debug, Default)]
pub struct BaselineCache {
    map: std::collections::HashMap<String, SimReport>,
}

impl BaselineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized baseline reports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn key(unit: &WorkUnit, kind: &PrefetcherKind, config: &ConfigPoint, seed: u64) -> String {
        format!(
            "{:?}|{kind:?}|{:?}|{}|{}|{seed}",
            unit.workloads.iter().map(|w| &w.spec).collect::<Vec<_>>(),
            config.system,
            config.warmup,
            config.measure
        )
    }
}

/// Runs one simulation for a grid coordinate, streaming every trace.
fn simulate(unit: &WorkUnit, kind: &PrefetcherKind, config: &ConfigPoint, seed: u64) -> SimReport {
    let spec = config.run_spec();
    let len = (config.warmup + config.measure) as usize;
    let sources: Vec<Box<dyn TraceSource>> = unit
        .workloads
        .iter()
        .map(|w| {
            let mut w = w.clone();
            w.spec.seed = w.spec.seed.wrapping_add(seed);
            w.source(len)
        })
        .collect();
    match kind {
        PrefetcherKind::Named(name) => run_sources(sources, name, &spec),
        PrefetcherKind::Pythia(cfg) => {
            let cfg = cfg.clone();
            run_sources_with(sources, &spec, move |_core| build_pythia_with(cfg.clone()))
        }
    }
}

/// Executes a sweep across `threads` worker threads and returns its typed
/// result.
///
/// Every simulation in the grid — baselines included — is an independent
/// job on the shared [`run_parallel`] pool; results come back in grid order
/// regardless of scheduling, so the output is byte-identical for any thread
/// count (including 1).
///
/// # Errors
///
/// Returns the first [`SweepSpec::validate`] error; never fails after
/// validation passes.
pub fn run(spec: &SweepSpec, threads: usize) -> Result<SweepResult, String> {
    run_cached(spec, threads, &mut BaselineCache::new())
}

/// [`run`] with a [`BaselineCache`]: baseline coordinates already in the
/// cache are served from memory instead of re-simulated, and fresh
/// baseline reports are inserted for later campaigns. Results are
/// bit-identical to an uncached [`run`].
///
/// # Errors
///
/// Returns the first [`SweepSpec::validate`] error.
pub fn run_cached(
    spec: &SweepSpec,
    threads: usize,
    cache: &mut BaselineCache,
) -> Result<SweepResult, String> {
    spec.validate()?;
    let threads = threads.max(1);

    // Expand the grid. Uncached baseline jobs first (one per unit × config
    // × seed), then every measured cell, all in one batch so baselines
    // don't serialize ahead of the cells.
    let mut baseline_keys: Vec<String> = Vec::new();
    let mut jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = Vec::new();
    // Simulated instructions scheduled this run (freshly executed jobs
    // only — cache hits cost no wall time), for the throughput telemetry.
    let mut planned_instructions = 0u64;
    for u in &spec.units {
        for cp in &spec.configs {
            for &seed in &spec.seeds {
                let key = BaselineCache::key(u, &spec.baseline.kind, cp, seed);
                if !cache.map.contains_key(&key) && !baseline_keys.contains(&key) {
                    let (u, k, cp) = (u.clone(), spec.baseline.kind.clone(), cp.clone());
                    planned_instructions += (cp.warmup + cp.measure) * u.cores() as u64;
                    jobs.push(Box::new(move || simulate(&u, &k, &cp, seed)));
                    baseline_keys.push(key.clone());
                }
            }
        }
    }
    for u in &spec.units {
        for cp in &spec.configs {
            for p in &spec.prefetchers {
                for &seed in &spec.seeds {
                    let (u, k, cp) = (u.clone(), p.kind.clone(), cp.clone());
                    planned_instructions += (cp.warmup + cp.measure) * u.cores() as u64;
                    jobs.push(Box::new(move || simulate(&u, &k, &cp, seed)));
                }
            }
        }
    }

    let started = std::time::Instant::now();
    let mut reports = run_parallel(jobs, threads).into_iter();
    let throughput = Throughput::new(planned_instructions, started.elapsed().as_secs_f64());
    for (key, report) in baseline_keys.into_iter().zip(reports.by_ref()) {
        cache.map.insert(key, report);
    }
    let baseline_reports: Vec<SimReport> = {
        let mut out = Vec::new();
        for u in &spec.units {
            for cp in &spec.configs {
                for &seed in &spec.seeds {
                    let key = BaselineCache::key(u, &spec.baseline.kind, cp, seed);
                    out.push(cache.map[&key].clone());
                }
            }
        }
        out
    };

    // Index baselines in the same (unit, config, seed) expansion order.
    let baseline_index =
        |ui: usize, ci: usize, si: usize| (ui * spec.configs.len() + ci) * spec.seeds.len() + si;

    let mut baselines = Vec::with_capacity(baseline_reports.len());
    for (ui, u) in spec.units.iter().enumerate() {
        for (ci, cp) in spec.configs.iter().enumerate() {
            for (si, &seed) in spec.seeds.iter().enumerate() {
                let report = &baseline_reports[baseline_index(ui, ci, si)];
                baselines.push(CellResult {
                    sweep: spec.name.clone(),
                    unit: u.label.clone(),
                    group: u.group.clone(),
                    prefetcher: spec.baseline.label.clone(),
                    config: cp.label.clone(),
                    seed,
                    metrics: metrics::compare(report, report),
                    raw: RawSummary::of(report),
                });
            }
        }
    }

    let mut cells = Vec::with_capacity(spec.cell_count());
    for (ui, u) in spec.units.iter().enumerate() {
        for (ci, cp) in spec.configs.iter().enumerate() {
            for p in &spec.prefetchers {
                for (si, &seed) in spec.seeds.iter().enumerate() {
                    let report = reports.next().expect("one report per cell job");
                    let baseline = &baseline_reports[baseline_index(ui, ci, si)];
                    cells.push(CellResult {
                        sweep: spec.name.clone(),
                        unit: u.label.clone(),
                        group: u.group.clone(),
                        prefetcher: p.label.clone(),
                        config: cp.label.clone(),
                        seed,
                        metrics: metrics::compare(baseline, &report),
                        raw: RawSummary::of(&report),
                    });
                }
            }
        }
    }

    Ok(SweepResult {
        name: spec.name.clone(),
        baselines,
        cells,
        throughput: Some(throughput),
    })
}

/// Runs several sweeps (e.g. the panels of one figure) and merges them
/// under `name`.
///
/// Built on [`plan_campaign`]: the whole campaign — every panel's
/// baselines and cells — fans out over `threads` workers as one batch of
/// independent cell jobs, and [`CampaignPlan::merge_cells`] reassembles
/// the result in grid order. Panels with overlapping (units × configs ×
/// seeds) share baseline jobs — Fig. 9's two panels cover the same
/// 50-workload pool, for example — exactly as the shared
/// [`BaselineCache`] deduplicated them before.
///
/// # Errors
///
/// Returns the first validation error among the specs.
pub fn run_all(name: &str, specs: &[SweepSpec], threads: usize) -> Result<SweepResult, String> {
    let plan = plan_campaign(name, specs)?;
    let jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = plan
        .jobs()
        .iter()
        .map(|j| {
            let j = j.clone();
            Box::new(move || j.run()) as Box<dyn FnOnce() -> SimReport + Send>
        })
        .collect();
    let started = std::time::Instant::now();
    let reports = run_parallel(jobs, threads.max(1));
    let throughput = Throughput::new(plan.planned_instructions(), started.elapsed().as_secs_f64());
    let mut out = plan.merge_cells(&reports)?;
    out.throughput = Some(throughput);
    Ok(out)
}

/// Coordinates of one schedulable simulation inside a planned campaign:
/// the panel it was planned under and its position within that panel's
/// deterministic expansion (baseline jobs first, then measured cells in
/// grid order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Index of the panel ([`SweepSpec`]) this job was planned under. A
    /// baseline shared by several panels belongs to the first panel that
    /// needed it.
    pub panel: usize,
    /// Position within the panel's expansion.
    pub index: usize,
}

/// One independent simulation of a planned campaign — the unit a
/// cell-granular scheduler hands to a worker.
///
/// The job owns (cheap) clones of its grid coordinates; traces are opened
/// lazily inside [`CellJob::run`], so holding a plan never holds a
/// materialized trace.
#[derive(Debug, Clone)]
pub struct CellJob {
    /// Where this job sits in the campaign.
    pub id: CellId,
    /// Instructions this job simulates across all cores (warmup +
    /// measure), for throughput telemetry and progress accounting.
    pub instructions: u64,
    unit: WorkUnit,
    kind: PrefetcherKind,
    config: ConfigPoint,
    seed: u64,
}

impl CellJob {
    /// Runs the simulation. Deterministic: the same job always produces a
    /// byte-identical report, on any thread, in any process.
    pub fn run(&self) -> SimReport {
        simulate(&self.unit, &self.kind, &self.config, self.seed)
    }
}

/// One panel's share of a [`CampaignPlan`]: the spec plus the mapping
/// from its rows back to flat job indices.
#[derive(Debug)]
struct PanelPlan {
    spec: SweepSpec,
    /// Flat job index of each baseline report, in (unit, config, seed)
    /// expansion order. May point into an earlier panel when the baseline
    /// coordinate is shared.
    baseline_sources: Vec<usize>,
    /// Flat index of this panel's first measured cell; the panel's
    /// `spec.cell_count()` cells are contiguous from here.
    cells_start: usize,
}

/// A campaign expanded into an ordered set of independent [`CellJob`]s
/// plus the bookkeeping to reassemble their reports into a
/// [`SweepResult`] byte-identical to the monolithic [`run_all`].
///
/// The flat job order is panel-major with each panel's baselines planned
/// before its cells, and baselines deduplicated across panels (first
/// panel wins), so a job's baseline always precedes it. Executing the
/// jobs in *any* order and merging is equivalent to the monolithic run.
#[derive(Debug)]
pub struct CampaignPlan {
    name: String,
    jobs: Vec<CellJob>,
    panels: Vec<PanelPlan>,
}

/// Expands a campaign (panels of one figure) into a [`CampaignPlan`].
///
/// The expansion mirrors [`run_all`] exactly: per panel in order,
/// baseline jobs first (one per unit × config × seed coordinate not
/// already planned — the shared-[`BaselineCache`] dedup), then every
/// measured cell in grid order (unit-major, then config, then
/// prefetcher, then seed).
///
/// # Errors
///
/// Returns the first [`SweepSpec::validate`] error among the panels.
pub fn plan_campaign(name: &str, specs: &[SweepSpec]) -> Result<CampaignPlan, String> {
    let mut jobs: Vec<CellJob> = Vec::new();
    let mut panels: Vec<PanelPlan> = Vec::with_capacity(specs.len());
    let mut planned_baselines: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for (pi, spec) in specs.iter().enumerate() {
        spec.validate()?;
        let mut within = 0usize;
        let mut baseline_sources =
            Vec::with_capacity(spec.units.len() * spec.configs.len() * spec.seeds.len());
        for u in &spec.units {
            for cp in &spec.configs {
                for &seed in &spec.seeds {
                    let key = BaselineCache::key(u, &spec.baseline.kind, cp, seed);
                    let source = *planned_baselines.entry(key).or_insert_with(|| {
                        let flat = jobs.len();
                        jobs.push(CellJob {
                            id: CellId {
                                panel: pi,
                                index: within,
                            },
                            instructions: (cp.warmup + cp.measure) * u.cores() as u64,
                            unit: u.clone(),
                            kind: spec.baseline.kind.clone(),
                            config: cp.clone(),
                            seed,
                        });
                        within += 1;
                        flat
                    });
                    baseline_sources.push(source);
                }
            }
        }
        let cells_start = jobs.len();
        for u in &spec.units {
            for cp in &spec.configs {
                for p in &spec.prefetchers {
                    for &seed in &spec.seeds {
                        jobs.push(CellJob {
                            id: CellId {
                                panel: pi,
                                index: within,
                            },
                            instructions: (cp.warmup + cp.measure) * u.cores() as u64,
                            unit: u.clone(),
                            kind: p.kind.clone(),
                            config: cp.clone(),
                            seed,
                        });
                        within += 1;
                    }
                }
            }
        }
        panels.push(PanelPlan {
            spec: spec.clone(),
            baseline_sources,
            cells_start,
        });
    }
    Ok(CampaignPlan {
        name: name.to_string(),
        jobs,
        panels,
    })
}

impl CampaignPlan {
    /// The campaign name the merged result will carry.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The planned jobs, in flat (panel-major, baselines-first) order.
    pub fn jobs(&self) -> &[CellJob] {
        &self.jobs
    }

    /// Number of planned jobs (baselines + cells, after dedup).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Total instructions the plan simulates, for throughput telemetry.
    pub fn planned_instructions(&self) -> u64 {
        self.jobs.iter().map(|j| j.instructions).sum()
    }

    /// Reassembles a complete set of cell reports — `reports[i]` from
    /// `jobs()[i]`, executed in any order, by any worker — into the
    /// [`SweepResult`] a monolithic [`run_all`] would produce, minus the
    /// wall-clock telemetry (i.e. byte-identical to its
    /// [`SweepResult::stripped`] form).
    ///
    /// # Errors
    ///
    /// Returns an error when `reports.len() != job_count()`.
    pub fn merge_cells(&self, reports: &[SimReport]) -> Result<SweepResult, String> {
        if reports.len() != self.jobs.len() {
            return Err(format!(
                "campaign {:?}: {} report(s) for {} planned job(s)",
                self.name,
                reports.len(),
                self.jobs.len()
            ));
        }
        let slots: Vec<Option<&SimReport>> = reports.iter().map(Some).collect();
        Ok(self.assemble(&slots))
    }

    /// Merges the completed prefix of a partially executed campaign:
    /// `slots[i]` holds `jobs()[i]`'s report once that job has finished.
    ///
    /// Rows are emitted in final order and stop at the first row whose
    /// report (or whose baseline's report) is still missing — per array,
    /// so every partial's `baselines` and `cells` are exact prefixes of
    /// the complete result's arrays, and a fully populated `slots`
    /// reproduces [`CampaignPlan::merge_cells`] byte-identically.
    ///
    /// # Errors
    ///
    /// Returns an error when `slots.len() != job_count()`.
    pub fn merge_prefix(&self, slots: &[Option<SimReport>]) -> Result<SweepResult, String> {
        if slots.len() != self.jobs.len() {
            return Err(format!(
                "campaign {:?}: {} slot(s) for {} planned job(s)",
                self.name,
                slots.len(),
                self.jobs.len()
            ));
        }
        let refs: Vec<Option<&SimReport>> = slots.iter().map(Option::as_ref).collect();
        Ok(self.assemble(&refs))
    }

    /// Builds the result rows available from the given report slots,
    /// truncating each row array at its first not-yet-computable row.
    fn assemble(&self, slots: &[Option<&SimReport>]) -> SweepResult {
        let mut baselines = Vec::new();
        let mut cells = Vec::new();
        let mut more_baselines = true;
        let mut more_cells = true;
        for panel in &self.panels {
            let spec = &panel.spec;
            let baseline_index = |ui: usize, ci: usize, si: usize| {
                (ui * spec.configs.len() + ci) * spec.seeds.len() + si
            };
            'baselines: for (ui, u) in spec.units.iter().enumerate() {
                for (ci, cp) in spec.configs.iter().enumerate() {
                    for (si, &seed) in spec.seeds.iter().enumerate() {
                        if !more_baselines {
                            break 'baselines;
                        }
                        let Some(report) =
                            slots[panel.baseline_sources[baseline_index(ui, ci, si)]]
                        else {
                            more_baselines = false;
                            break 'baselines;
                        };
                        baselines.push(CellResult {
                            sweep: spec.name.clone(),
                            unit: u.label.clone(),
                            group: u.group.clone(),
                            prefetcher: spec.baseline.label.clone(),
                            config: cp.label.clone(),
                            seed,
                            metrics: metrics::compare(report, report),
                            raw: RawSummary::of(report),
                        });
                    }
                }
            }
            let mut flat = panel.cells_start;
            'cells: for (ui, u) in spec.units.iter().enumerate() {
                for (ci, cp) in spec.configs.iter().enumerate() {
                    for p in &spec.prefetchers {
                        for (si, &seed) in spec.seeds.iter().enumerate() {
                            if !more_cells {
                                break 'cells;
                            }
                            let baseline =
                                slots[panel.baseline_sources[baseline_index(ui, ci, si)]];
                            let (Some(baseline), Some(report)) = (baseline, slots[flat]) else {
                                more_cells = false;
                                break 'cells;
                            };
                            flat += 1;
                            cells.push(CellResult {
                                sweep: spec.name.clone(),
                                unit: u.label.clone(),
                                group: u.group.clone(),
                                prefetcher: p.label.clone(),
                                config: cp.label.clone(),
                                seed,
                                metrics: metrics::compare(baseline, report),
                                raw: RawSummary::of(report),
                            });
                        }
                    }
                }
            }
        }
        SweepResult {
            name: self.name.clone(),
            baselines,
            cells,
            throughput: None,
        }
    }
}
