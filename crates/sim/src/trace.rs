//! Instruction trace records, the [`TraceSource`] streaming abstraction,
//! and a compact binary codec.
//!
//! The paper drives ChampSim with Pin-collected instruction traces; this
//! module defines the equivalent in-memory record, the streaming
//! [`TraceSource`] trait every trace producer implements (in-memory
//! vectors, on-demand workload generators, on-disk trace files), and a
//! length-prefixed binary format so traces can be recorded and replayed
//! without ever materializing them in memory:
//!
//! * [`VecSource`] — wraps an in-memory `Vec<TraceRecord>`,
//! * [`TraceWriter`] — incremental encoder writing the binary format
//!   record-by-record (the streaming counterpart of [`encode_trace`]),
//! * [`FileTraceSource`] — streams records back from a trace file in O(1)
//!   memory (the streaming counterpart of [`decode_trace`]),
//! * [`trace_file_info`] — one streaming pass computing header + mix
//!   statistics for `pythia-cli trace info`.

use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// One memory micro-operation of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOp {
    /// Byte address touched by the operation.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
}

/// Branch outcome attached to a branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Branch {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Whether the (perceptron-like) predictor mispredicted it. A
    /// misprediction inserts the 20-cycle penalty of Table 5.
    pub mispredicted: bool,
}

/// One dynamic instruction in a workload trace.
///
/// This is deliberately minimal: a program counter, at most one memory
/// operation, an optional branch outcome, and a dependence hint used by
/// pointer-chasing workloads to serialize loads (trace-driven simulators
/// otherwise overestimate memory-level parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Memory operation performed by the instruction, if any.
    pub mem: Option<MemOp>,
    /// Branch outcome, if the instruction is a branch.
    pub branch: Option<Branch>,
    /// If `true`, this load depends on the previous load's value and cannot
    /// issue before it completes (models dependent pointer chasing).
    pub depends_on_prev_load: bool,
}

impl TraceRecord {
    /// Creates a plain non-memory, non-branch instruction.
    pub fn nop(pc: u64) -> Self {
        Self {
            pc,
            mem: None,
            branch: None,
            depends_on_prev_load: false,
        }
    }

    /// Creates a load instruction reading `addr`.
    pub fn load(pc: u64, addr: u64) -> Self {
        Self {
            pc,
            mem: Some(MemOp {
                addr,
                is_write: false,
            }),
            branch: None,
            depends_on_prev_load: false,
        }
    }

    /// Creates a load that depends on the previous load (pointer chase).
    pub fn dependent_load(pc: u64, addr: u64) -> Self {
        Self {
            depends_on_prev_load: true,
            ..Self::load(pc, addr)
        }
    }

    /// Creates a store instruction writing `addr`.
    pub fn store(pc: u64, addr: u64) -> Self {
        Self {
            pc,
            mem: Some(MemOp {
                addr,
                is_write: true,
            }),
            branch: None,
            depends_on_prev_load: false,
        }
    }

    /// Creates a branch instruction.
    pub fn branch(pc: u64, taken: bool, mispredicted: bool) -> Self {
        Self {
            pc,
            mem: None,
            branch: Some(Branch {
                taken,
                mispredicted,
            }),
            depends_on_prev_load: false,
        }
    }

    /// Returns `true` if this record is a load.
    pub fn is_load(&self) -> bool {
        matches!(
            self.mem,
            Some(MemOp {
                is_write: false,
                ..
            })
        )
    }

    /// Returns `true` if this record is a store.
    pub fn is_store(&self) -> bool {
        matches!(self.mem, Some(MemOp { is_write: true, .. }))
    }
}

/// A resettable, deterministic stream of [`TraceRecord`]s.
///
/// This is the contract the simulator drives cores from: records are
/// pulled on demand, and when a finite stream ends the caller calls
/// [`reset`](TraceSource::reset) to replay it from the beginning (the
/// paper's methodology replays traces until every core retires its
/// instruction budget). Determinism is part of the contract — after a
/// `reset`, a source must yield exactly the same record sequence again, so
/// streaming and materialized execution are byte-identical.
///
/// Implementations: [`VecSource`] (in-memory), [`FileTraceSource`]
/// (on-disk replay), and `pythia_workloads::TraceStream` (on-demand
/// generation).
pub trait TraceSource: Send {
    /// The next record, or `None` when the stream's current pass ends.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Restarts the stream; the following
    /// [`next_record`](TraceSource::next_record) calls replay the
    /// identical sequence.
    fn reset(&mut self);

    /// Records per pass, when known up front (`None` for unbounded or
    /// unknown-length streams).
    fn len_hint(&self) -> Option<u64>;

    /// Appends up to `max` records to `out`, returning how many were
    /// produced — fewer than `max` (possibly zero) only when the current
    /// pass ends. Semantically identical to `max` calls of
    /// [`next_record`](TraceSource::next_record); sources with random
    /// access (in-memory vectors, the buffered file reader) override it
    /// so the simulator's per-core record buffer amortizes the virtual
    /// dispatch down to one call per batch.
    fn next_batch(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_record() {
                Some(r) => {
                    out.push(r);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

/// A [`TraceSource`] over an in-memory record vector.
#[derive(Debug, Clone)]
pub struct VecSource {
    records: Vec<TraceRecord>,
    pos: usize,
}

impl VecSource {
    /// Wraps a record vector.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty — an empty source would replay nothing
    /// forever.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        assert!(!records.is_empty(), "traces must be non-empty");
        Self { records, pos: 0 }
    }

    /// [`VecSource::new`] boxed as a trait object — the common call-site
    /// shape (`System::new(cfg, vec![VecSource::boxed(trace)])`).
    pub fn boxed(records: Vec<TraceRecord>) -> Box<dyn TraceSource> {
        Box::new(Self::new(records))
    }
}

impl TraceSource for VecSource {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }

    fn next_batch(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        let end = self.records.len().min(self.pos + max);
        out.extend_from_slice(&self.records[self.pos..end]);
        let n = end - self.pos;
        self.pos = end;
        n
    }
}

/// Magic bytes at the head of the binary trace format.
const TRACE_MAGIC: u32 = 0x5059_5452; // "PYTR"
/// Version of the binary trace format.
const TRACE_VERSION: u16 = 1;
/// Header size in bytes: magic (4) + version (2) + record count (8).
const TRACE_HEADER_LEN: u64 = 14;
/// Byte offset of the record-count field within the header.
const TRACE_COUNT_OFFSET: u64 = 6;

// Flag bits used by the codec.
const FLAG_HAS_MEM: u8 = 1 << 0;
const FLAG_IS_WRITE: u8 = 1 << 1;
const FLAG_HAS_BRANCH: u8 = 1 << 2;
const FLAG_TAKEN: u8 = 1 << 3;
const FLAG_MISPREDICTED: u8 = 1 << 4;
const FLAG_DEPENDENT: u8 = 1 << 5;

/// Errors produced when decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer did not start with the expected magic bytes.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The buffer ended mid-record.
    Truncated,
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "buffer is not a pythia trace (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported trace format version {v}"),
            Self::Truncated => write!(f, "trace buffer ended mid-record"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

/// The flag byte of one record's binary encoding.
fn record_flags(r: &TraceRecord) -> u8 {
    let mut flags = 0u8;
    if let Some(m) = r.mem {
        flags |= FLAG_HAS_MEM;
        if m.is_write {
            flags |= FLAG_IS_WRITE;
        }
    }
    if let Some(b) = r.branch {
        flags |= FLAG_HAS_BRANCH;
        if b.taken {
            flags |= FLAG_TAKEN;
        }
        if b.mispredicted {
            flags |= FLAG_MISPREDICTED;
        }
    }
    if r.depends_on_prev_load {
        flags |= FLAG_DEPENDENT;
    }
    flags
}

/// Maximum encoded size of one record: flags (1) + pc (8) + addr (8).
const MAX_RECORD_LEN: usize = 17;

/// Encodes one record into a stack buffer, returning the buffer and the
/// encoded length — the single wire definition shared by [`encode_trace`]
/// and [`TraceWriter::write_record`].
fn encode_record(r: &TraceRecord) -> ([u8; MAX_RECORD_LEN], usize) {
    let mut buf = [0u8; MAX_RECORD_LEN];
    buf[0] = record_flags(r);
    buf[1..9].copy_from_slice(&r.pc.to_be_bytes());
    match r.mem {
        Some(m) => {
            buf[9..17].copy_from_slice(&m.addr.to_be_bytes());
            (buf, MAX_RECORD_LEN)
        }
        None => (buf, 9),
    }
}

/// Reassembles a record from its decoded wire parts — the single inverse
/// of [`encode_record`], shared by [`decode_trace`] and the streaming
/// file reader.
fn record_from_parts(flags: u8, pc: u64, addr: Option<u64>) -> TraceRecord {
    TraceRecord {
        pc,
        mem: addr.map(|addr| MemOp {
            addr,
            is_write: flags & FLAG_IS_WRITE != 0,
        }),
        branch: (flags & FLAG_HAS_BRANCH != 0).then_some(Branch {
            taken: flags & FLAG_TAKEN != 0,
            mispredicted: flags & FLAG_MISPREDICTED != 0,
        }),
        depends_on_prev_load: flags & FLAG_DEPENDENT != 0,
    }
}

/// Encodes a trace into the compact binary format.
pub fn encode_trace(records: &[TraceRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + records.len() * 10);
    buf.put_u32(TRACE_MAGIC);
    buf.put_u16(TRACE_VERSION);
    buf.put_u64(records.len() as u64);
    for r in records {
        let (bytes, len) = encode_record(r);
        buf.put_slice(&bytes[..len]);
    }
    buf.freeze()
}

/// Decodes a trace previously produced by [`encode_trace`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] if the buffer is not a valid trace.
pub fn decode_trace(mut buf: impl Buf) -> Result<Vec<TraceRecord>, DecodeTraceError> {
    if buf.remaining() < 14 {
        return Err(DecodeTraceError::Truncated);
    }
    if buf.get_u32() != TRACE_MAGIC {
        return Err(DecodeTraceError::BadMagic);
    }
    let version = buf.get_u16();
    if version != TRACE_VERSION {
        return Err(DecodeTraceError::UnsupportedVersion(version));
    }
    let n = buf.get_u64() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 9 {
            return Err(DecodeTraceError::Truncated);
        }
        let flags = buf.get_u8();
        let pc = buf.get_u64();
        let addr = if flags & FLAG_HAS_MEM != 0 {
            if buf.remaining() < 8 {
                return Err(DecodeTraceError::Truncated);
            }
            Some(buf.get_u64())
        } else {
            None
        };
        out.push(record_from_parts(flags, pc, addr));
    }
    Ok(out)
}

/// Errors produced by the file-backed trace paths ([`TraceWriter`],
/// [`FileTraceSource`], [`trace_file_info`]).
#[derive(Debug)]
pub enum TraceFileError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file's contents are not a valid trace.
    Decode(DecodeTraceError),
    /// The header promised `header` records but the file holds `actual`.
    CountMismatch {
        /// Record count claimed by the header.
        header: u64,
        /// Records actually present before EOF / truncation.
        actual: u64,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace file I/O error: {e}"),
            Self::Decode(e) => write!(f, "{e}"),
            Self::CountMismatch { header, actual } => write!(
                f,
                "trace header promises {header} record(s) but the file holds {actual}"
            ),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Decode(e) => Some(e),
            Self::CountMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeTraceError> for TraceFileError {
    fn from(e: DecodeTraceError) -> Self {
        Self::Decode(e)
    }
}

/// Incremental encoder for the binary trace format: the streaming
/// counterpart of [`encode_trace`], producing byte-identical output
/// without ever holding the trace in memory.
///
/// The header's record count is back-patched on
/// [`finish`](TraceWriter::finish), so the sink must support seeking (a
/// [`std::fs::File`] does). Dropping a writer without calling `finish`
/// leaves a file whose header claims zero records — [`FileTraceSource`]
/// and [`trace_file_info`] reject such files with
/// [`TraceFileError::CountMismatch`].
pub struct TraceWriter<W: Write + Seek> {
    out: BufWriter<W>,
    count: u64,
}

impl TraceWriter<std::fs::File> {
    /// Creates (or truncates) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file or writing the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        Self::new(std::fs::File::create(path)?)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Wraps a sink and writes the trace header (with a zero record count,
    /// back-patched by [`finish`](TraceWriter::finish)).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the header.
    pub fn new(inner: W) -> Result<Self, TraceFileError> {
        let mut out = BufWriter::new(inner);
        out.write_all(&TRACE_MAGIC.to_be_bytes())?;
        out.write_all(&TRACE_VERSION.to_be_bytes())?;
        out.write_all(&0u64.to_be_bytes())?;
        Ok(Self { out, count: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    pub fn write_record(&mut self, r: &TraceRecord) -> Result<(), TraceFileError> {
        let (bytes, len) = encode_record(r);
        self.out.write_all(&bytes[..len])?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Back-patches the header's record count, flushes, and returns the
    /// sink along with the final record count.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from seeking or flushing.
    pub fn finish(mut self) -> Result<(W, u64), TraceFileError> {
        self.out.flush()?;
        let mut inner = self
            .out
            .into_inner()
            .map_err(|e| TraceFileError::Io(e.into_error()))?;
        inner.seek(SeekFrom::Start(TRACE_COUNT_OFFSET))?;
        inner.write_all(&self.count.to_be_bytes())?;
        inner.flush()?;
        Ok((inner, self.count))
    }
}

/// Refill granularity of [`RecordReader`].
const READER_BUF_LEN: usize = 64 * 1024;

/// Buffered record decoder over a file: keeps a large refill buffer and
/// decodes each record inline from the buffered bytes, instead of issuing
/// two or three `read_exact` calls per record through a `BufReader`. This
/// is the hot loop of `pythia-cli trace replay` — per record it costs one
/// bounds check and a couple of `u64::from_be_bytes`.
struct RecordReader {
    file: std::fs::File,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
}

impl std::fmt::Debug for RecordReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordReader")
            .field("buffered", &(self.len - self.pos))
            .finish()
    }
}

impl RecordReader {
    fn new(file: std::fs::File) -> Self {
        Self {
            file,
            buf: vec![0; READER_BUF_LEN],
            pos: 0,
            len: 0,
        }
    }

    /// Ensures up to `n` bytes are buffered (compacting + refilling as
    /// needed) and returns how many are actually available — fewer than
    /// `n` only at end of file.
    #[inline]
    fn available(&mut self, n: usize) -> Result<usize, std::io::Error> {
        debug_assert!(n <= READER_BUF_LEN);
        if self.len - self.pos >= n {
            return Ok(n);
        }
        self.buf.copy_within(self.pos..self.len, 0);
        self.len -= self.pos;
        self.pos = 0;
        while self.len < n {
            match self.file.read(&mut self.buf[self.len..]) {
                Ok(0) => break,
                Ok(got) => self.len += got,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(self.len.min(n))
    }

    /// Decodes the next record. `Ok(None)` means clean EOF at a record
    /// boundary; [`DecodeTraceError::Truncated`] means the file ended
    /// mid-record.
    #[inline]
    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceFileError> {
        let have = self.available(MAX_RECORD_LEN)?;
        if have == 0 {
            return Ok(None);
        }
        let flags = self.buf[self.pos];
        let need = if flags & FLAG_HAS_MEM != 0 {
            MAX_RECORD_LEN
        } else {
            9
        };
        if have < need {
            return Err(DecodeTraceError::Truncated.into());
        }
        let b = &self.buf[self.pos..self.pos + need];
        let pc = u64::from_be_bytes(b[1..9].try_into().expect("8-byte pc"));
        let addr = (need == MAX_RECORD_LEN)
            .then(|| u64::from_be_bytes(b[9..17].try_into().expect("8-byte addr")));
        self.pos += need;
        Ok(Some(record_from_parts(flags, pc, addr)))
    }

    /// Reads and validates the fixed-size header, returning the record
    /// count.
    fn read_header(&mut self) -> Result<u64, TraceFileError> {
        let n = TRACE_HEADER_LEN as usize;
        if self.available(n)? < n {
            return Err(DecodeTraceError::Truncated.into());
        }
        let header = &self.buf[self.pos..self.pos + n];
        if u32::from_be_bytes(header[0..4].try_into().expect("4-byte magic")) != TRACE_MAGIC {
            return Err(DecodeTraceError::BadMagic.into());
        }
        let version = u16::from_be_bytes(header[4..6].try_into().expect("2-byte version"));
        if version != TRACE_VERSION {
            return Err(DecodeTraceError::UnsupportedVersion(version).into());
        }
        let count = u64::from_be_bytes(header[6..14].try_into().expect("8-byte count"));
        self.pos += n;
        Ok(count)
    }

    /// Repositions the underlying file and discards buffered bytes.
    fn seek_to(&mut self, offset: u64) -> Result<(), std::io::Error> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.pos = 0;
        self.len = 0;
        Ok(())
    }
}

/// A [`TraceSource`] streaming records from a binary trace file in O(1)
/// memory: the replay path for `pythia-cli trace replay` and the
/// counterpart of the all-at-once [`decode_trace`].
///
/// [`open`](FileTraceSource::open) validates the entire file up front (one
/// streaming pass checking the header count and record framing), so the
/// replay loop afterwards cannot encounter a decode error — mid-stream
/// `next_record` failures would mean the file changed underneath us and
/// abort with a panic naming the file.
pub struct FileTraceSource {
    reader: RecordReader,
    path: PathBuf,
    total: u64,
    remaining: u64,
}

impl std::fmt::Debug for FileTraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileTraceSource")
            .field("path", &self.path)
            .field("total", &self.total)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl FileTraceSource {
    /// Opens and fully validates a trace file (header, framing, record
    /// count), leaving the stream positioned at the first record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failures, a bad header, torn
    /// records, or a header/content record-count mismatch. A valid file
    /// with zero records is also rejected (a [`TraceSource`] must be
    /// non-empty).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let mut src = Self::open_trusted(path)?;
        // Validation pass: every record must decode, and the count must
        // match the header exactly (no trailing garbage, no truncation).
        let mut actual = 0u64;
        while src.reader.next_record()?.is_some() {
            actual += 1;
        }
        if actual != src.total {
            return Err(TraceFileError::CountMismatch {
                header: src.total,
                actual,
            });
        }
        src.reset();
        Ok(src)
    }

    /// Opens a trace file checking only the header (magic, version, a
    /// non-zero record count) — skipping [`open`](FileTraceSource::open)'s
    /// O(n) framing scan. For callers that validated the same file moments
    /// before (e.g. a second replay pass); a file modified since then
    /// aborts mid-replay with a panic naming the file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failures, a bad header, or a
    /// zero-record count (an unfinished [`TraceWriter`] or empty trace).
    pub fn open_trusted(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref().to_path_buf();
        let mut reader = RecordReader::new(std::fs::File::open(&path)?);
        let total = reader.read_header()?;
        if total == 0 {
            return Err(TraceFileError::CountMismatch {
                header: 0,
                actual: 0,
            });
        }
        Ok(Self {
            reader,
            path,
            total,
            remaining: total,
        })
    }

    /// Records per pass (the header count).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the file holds no records (never true for an opened source;
    /// [`open`](FileTraceSource::open) rejects empty files).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl TraceSource for FileTraceSource {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        // `open` validated every record, so failures here mean the file
        // was modified while we replay it — not a recoverable state.
        let record = self
            .reader
            .next_record()
            .unwrap_or_else(|e| {
                panic!(
                    "trace file {} changed during replay: {e}",
                    self.path.display()
                )
            })
            .unwrap_or_else(|| {
                panic!("trace file {} truncated during replay", self.path.display())
            });
        self.remaining -= 1;
        Some(record)
    }

    fn reset(&mut self) {
        self.reader.seek_to(TRACE_HEADER_LEN).unwrap_or_else(|e| {
            panic!(
                "trace file {}: seek failed on reset: {e}",
                self.path.display()
            )
        });
        self.remaining = self.total;
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }

    fn next_batch(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        // One remaining-count check per batch instead of per record; the
        // decode loop then runs straight against the refill buffer.
        let n = (self.remaining).min(max as u64) as usize;
        for _ in 0..n {
            let record = self
                .reader
                .next_record()
                .unwrap_or_else(|e| {
                    panic!(
                        "trace file {} changed during replay: {e}",
                        self.path.display()
                    )
                })
                .unwrap_or_else(|| {
                    panic!("trace file {} truncated during replay", self.path.display())
                });
            out.push(record);
        }
        self.remaining -= n as u64;
        n
    }
}

/// Summary of a trace file computed by [`trace_file_info`] in one
/// streaming pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInfo {
    /// Binary format version.
    pub version: u16,
    /// Record count (validated against the header).
    pub records: u64,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Loads flagged as dependent on the previous load.
    pub dependent_loads: u64,
    /// Smallest and largest byte address touched, if any memory op exists.
    pub addr_range: Option<(u64, u64)>,
}

/// Streams through a trace file and returns its [`TraceInfo`] without
/// materializing any records.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failures, a bad header, torn records,
/// or a header/content record-count mismatch.
pub fn trace_file_info(path: impl AsRef<Path>) -> Result<TraceInfo, TraceFileError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let file_bytes = file.metadata()?.len();
    let mut reader = RecordReader::new(file);
    let total = reader.read_header()?;
    let mut info = TraceInfo {
        version: TRACE_VERSION,
        records: 0,
        file_bytes,
        loads: 0,
        stores: 0,
        branches: 0,
        mispredicts: 0,
        dependent_loads: 0,
        addr_range: None,
    };
    while let Some(r) = reader.next_record()? {
        info.records += 1;
        if let Some(m) = r.mem {
            if m.is_write {
                info.stores += 1;
            } else {
                info.loads += 1;
            }
            info.addr_range = Some(match info.addr_range {
                None => (m.addr, m.addr),
                Some((lo, hi)) => (lo.min(m.addr), hi.max(m.addr)),
            });
        }
        if let Some(b) = r.branch {
            info.branches += 1;
            if b.mispredicted {
                info.mispredicts += 1;
            }
        }
        if r.depends_on_prev_load {
            info.dependent_loads += 1;
        }
    }
    if info.records != total {
        return Err(TraceFileError::CountMismatch {
            header: total,
            actual: info.records,
        });
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::nop(0x400000),
            TraceRecord::load(0x400004, 0xdead_0040),
            TraceRecord::store(0x400008, 0xbeef_0080),
            TraceRecord::branch(0x40000c, true, false),
            TraceRecord::branch(0x400010, false, true),
            TraceRecord::dependent_load(0x400014, 0xaaaa_0000),
        ]
    }

    #[test]
    fn roundtrip_codec() {
        let original = sample();
        let encoded = encode_trace(&original);
        let decoded = decode_trace(encoded).expect("decode");
        assert_eq!(original, decoded);
    }

    #[test]
    fn decode_rejects_garbage() {
        let garbage = Bytes::from_static(&[0u8; 32]);
        assert_eq!(decode_trace(garbage), Err(DecodeTraceError::BadMagic));
    }

    #[test]
    fn decode_rejects_truncation() {
        let encoded = encode_trace(&sample());
        let cut = encoded.slice(0..encoded.len() - 4);
        assert_eq!(decode_trace(cut), Err(DecodeTraceError::Truncated));
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut buf = BytesMut::new();
        buf.put_u32(TRACE_MAGIC);
        buf.put_u16(99);
        buf.put_u64(0);
        assert_eq!(
            decode_trace(buf.freeze()),
            Err(DecodeTraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn constructors_classify() {
        assert!(TraceRecord::load(0, 0).is_load());
        assert!(!TraceRecord::load(0, 0).is_store());
        assert!(TraceRecord::store(0, 0).is_store());
        assert!(TraceRecord::dependent_load(0, 0).depends_on_prev_load);
        assert!(TraceRecord::nop(0).mem.is_none());
    }

    #[test]
    fn empty_trace_roundtrip() {
        let encoded = encode_trace(&[]);
        assert_eq!(decode_trace(encoded).unwrap(), Vec::new());
    }

    #[test]
    fn vec_source_streams_and_resets() {
        let records = sample();
        let mut src = VecSource::new(records.clone());
        assert_eq!(src.len_hint(), Some(records.len() as u64));
        let first: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(first, records);
        assert_eq!(src.next_record(), None, "pass ended");
        src.reset();
        let second: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(second, records, "reset replays identically");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn vec_source_rejects_empty() {
        let _ = VecSource::new(Vec::new());
    }

    #[test]
    fn next_batch_matches_record_by_record_streaming() {
        let records = sample();
        // VecSource override.
        let mut src = VecSource::new(records.clone());
        let mut out = Vec::new();
        assert_eq!(src.next_batch(&mut out, 4), 4);
        assert_eq!(src.next_batch(&mut out, 4), 2, "pass ends short");
        assert_eq!(src.next_batch(&mut out, 4), 0);
        assert_eq!(out, records);
        src.reset();
        assert_eq!(src.next_batch(&mut out, 100), records.len());

        // FileTraceSource override.
        let path = temp_path("batch.pytr");
        std::fs::write(&path, encode_trace(&records)).expect("write trace");
        let mut src = FileTraceSource::open(&path).expect("open");
        let mut out = Vec::new();
        assert_eq!(src.next_batch(&mut out, 4), 4);
        assert_eq!(src.next_batch(&mut out, 4), 2);
        assert_eq!(src.next_batch(&mut out, 4), 0);
        assert_eq!(out, records);
        std::fs::remove_file(&path).ok();

        // Trait-default fallback (a source without an override).
        struct OneByOne(VecSource);
        impl TraceSource for OneByOne {
            fn next_record(&mut self) -> Option<TraceRecord> {
                self.0.next_record()
            }
            fn reset(&mut self) {
                self.0.reset();
            }
            fn len_hint(&self) -> Option<u64> {
                self.0.len_hint()
            }
        }
        let mut src = OneByOne(VecSource::new(records.clone()));
        let mut out = Vec::new();
        assert_eq!(src.next_batch(&mut out, 100), records.len());
        assert_eq!(out, records);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pythia_trace_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}_{}", std::process::id()))
    }

    #[test]
    fn writer_output_is_byte_identical_to_encode_trace() {
        let records = sample();
        let path = temp_path("writer_bytes.pytr");
        let mut w = TraceWriter::create(&path).expect("create");
        for r in &records {
            w.write_record(r).expect("write");
        }
        let (_, n) = w.finish().expect("finish");
        assert_eq!(n, records.len() as u64);
        let bytes = std::fs::read(&path).expect("read back");
        assert_eq!(bytes, encode_trace(&records).to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_replays_and_resets() {
        let records = sample();
        let path = temp_path("file_source.pytr");
        std::fs::write(&path, encode_trace(&records)).expect("write trace");
        let mut src = FileTraceSource::open(&path).expect("open");
        assert_eq!(src.len(), records.len() as u64);
        assert_eq!(src.len_hint(), Some(records.len() as u64));
        let first: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(first, records);
        src.reset();
        let second: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(second, records, "reset replays identically");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_rejects_bad_and_torn_files() {
        let path = temp_path("garbage.pytr");
        std::fs::write(&path, [0u8; 32]).expect("write");
        assert!(matches!(
            FileTraceSource::open(&path),
            Err(TraceFileError::Decode(DecodeTraceError::BadMagic))
        ));

        // Truncate a valid trace mid-record: framing error.
        let encoded = encode_trace(&sample());
        std::fs::write(&path, &encoded[..encoded.len() - 4]).expect("write");
        assert!(matches!(
            FileTraceSource::open(&path),
            Err(TraceFileError::Decode(DecodeTraceError::Truncated))
        ));

        // Chop whole records off the tail: count mismatch.
        std::fs::write(&path, &encoded[..encoded.len() - 17]).expect("write");
        assert!(matches!(
            FileTraceSource::open(&path),
            Err(TraceFileError::CountMismatch { .. })
        ));

        // An unfinished writer leaves a zero-count header.
        let mut w = TraceWriter::create(&path).expect("create");
        w.write_record(&TraceRecord::nop(1)).expect("write");
        drop(w); // no finish()
        assert!(matches!(
            FileTraceSource::open(&path),
            Err(TraceFileError::CountMismatch { header: 0, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn info_summarizes_the_mix() {
        let records = sample();
        let path = temp_path("info.pytr");
        std::fs::write(&path, encode_trace(&records)).expect("write trace");
        let info = trace_file_info(&path).expect("info");
        assert_eq!(info.records, 6);
        assert_eq!(info.loads, 2);
        assert_eq!(info.stores, 1);
        assert_eq!(info.branches, 2);
        assert_eq!(info.mispredicts, 1);
        assert_eq!(info.dependent_loads, 1);
        assert_eq!(info.addr_range, Some((0xaaaa_0000, 0xdead_0040)));
        assert_eq!(info.version, TRACE_VERSION);
        assert_eq!(info.file_bytes, encode_trace(&records).len() as u64);
        std::fs::remove_file(&path).ok();
    }
}
