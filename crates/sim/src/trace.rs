//! Instruction trace records and a compact binary codec.
//!
//! The paper drives ChampSim with Pin-collected instruction traces; this
//! module defines the equivalent in-memory record and a simple
//! length-prefixed binary format (via [`bytes`]) so generated traces can be
//! stored and replayed.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// One memory micro-operation of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOp {
    /// Byte address touched by the operation.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
}

/// Branch outcome attached to a branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Branch {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Whether the (perceptron-like) predictor mispredicted it. A
    /// misprediction inserts the 20-cycle penalty of Table 5.
    pub mispredicted: bool,
}

/// One dynamic instruction in a workload trace.
///
/// This is deliberately minimal: a program counter, at most one memory
/// operation, an optional branch outcome, and a dependence hint used by
/// pointer-chasing workloads to serialize loads (trace-driven simulators
/// otherwise overestimate memory-level parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Memory operation performed by the instruction, if any.
    pub mem: Option<MemOp>,
    /// Branch outcome, if the instruction is a branch.
    pub branch: Option<Branch>,
    /// If `true`, this load depends on the previous load's value and cannot
    /// issue before it completes (models dependent pointer chasing).
    pub depends_on_prev_load: bool,
}

impl TraceRecord {
    /// Creates a plain non-memory, non-branch instruction.
    pub fn nop(pc: u64) -> Self {
        Self {
            pc,
            mem: None,
            branch: None,
            depends_on_prev_load: false,
        }
    }

    /// Creates a load instruction reading `addr`.
    pub fn load(pc: u64, addr: u64) -> Self {
        Self {
            pc,
            mem: Some(MemOp {
                addr,
                is_write: false,
            }),
            branch: None,
            depends_on_prev_load: false,
        }
    }

    /// Creates a load that depends on the previous load (pointer chase).
    pub fn dependent_load(pc: u64, addr: u64) -> Self {
        Self {
            depends_on_prev_load: true,
            ..Self::load(pc, addr)
        }
    }

    /// Creates a store instruction writing `addr`.
    pub fn store(pc: u64, addr: u64) -> Self {
        Self {
            pc,
            mem: Some(MemOp {
                addr,
                is_write: true,
            }),
            branch: None,
            depends_on_prev_load: false,
        }
    }

    /// Creates a branch instruction.
    pub fn branch(pc: u64, taken: bool, mispredicted: bool) -> Self {
        Self {
            pc,
            mem: None,
            branch: Some(Branch {
                taken,
                mispredicted,
            }),
            depends_on_prev_load: false,
        }
    }

    /// Returns `true` if this record is a load.
    pub fn is_load(&self) -> bool {
        matches!(
            self.mem,
            Some(MemOp {
                is_write: false,
                ..
            })
        )
    }

    /// Returns `true` if this record is a store.
    pub fn is_store(&self) -> bool {
        matches!(self.mem, Some(MemOp { is_write: true, .. }))
    }
}

/// Magic bytes at the head of the binary trace format.
const TRACE_MAGIC: u32 = 0x5059_5452; // "PYTR"
/// Version of the binary trace format.
const TRACE_VERSION: u16 = 1;

// Flag bits used by the codec.
const FLAG_HAS_MEM: u8 = 1 << 0;
const FLAG_IS_WRITE: u8 = 1 << 1;
const FLAG_HAS_BRANCH: u8 = 1 << 2;
const FLAG_TAKEN: u8 = 1 << 3;
const FLAG_MISPREDICTED: u8 = 1 << 4;
const FLAG_DEPENDENT: u8 = 1 << 5;

/// Errors produced when decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer did not start with the expected magic bytes.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The buffer ended mid-record.
    Truncated,
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "buffer is not a pythia trace (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported trace format version {v}"),
            Self::Truncated => write!(f, "trace buffer ended mid-record"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

/// Encodes a trace into the compact binary format.
pub fn encode_trace(records: &[TraceRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + records.len() * 10);
    buf.put_u32(TRACE_MAGIC);
    buf.put_u16(TRACE_VERSION);
    buf.put_u64(records.len() as u64);
    for r in records {
        let mut flags = 0u8;
        if r.mem.is_some() {
            flags |= FLAG_HAS_MEM;
        }
        if let Some(m) = r.mem {
            if m.is_write {
                flags |= FLAG_IS_WRITE;
            }
        }
        if let Some(b) = r.branch {
            flags |= FLAG_HAS_BRANCH;
            if b.taken {
                flags |= FLAG_TAKEN;
            }
            if b.mispredicted {
                flags |= FLAG_MISPREDICTED;
            }
        }
        if r.depends_on_prev_load {
            flags |= FLAG_DEPENDENT;
        }
        buf.put_u8(flags);
        buf.put_u64(r.pc);
        if let Some(m) = r.mem {
            buf.put_u64(m.addr);
        }
    }
    buf.freeze()
}

/// Decodes a trace previously produced by [`encode_trace`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] if the buffer is not a valid trace.
pub fn decode_trace(mut buf: impl Buf) -> Result<Vec<TraceRecord>, DecodeTraceError> {
    if buf.remaining() < 14 {
        return Err(DecodeTraceError::Truncated);
    }
    if buf.get_u32() != TRACE_MAGIC {
        return Err(DecodeTraceError::BadMagic);
    }
    let version = buf.get_u16();
    if version != TRACE_VERSION {
        return Err(DecodeTraceError::UnsupportedVersion(version));
    }
    let n = buf.get_u64() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 9 {
            return Err(DecodeTraceError::Truncated);
        }
        let flags = buf.get_u8();
        let pc = buf.get_u64();
        let mem = if flags & FLAG_HAS_MEM != 0 {
            if buf.remaining() < 8 {
                return Err(DecodeTraceError::Truncated);
            }
            Some(MemOp {
                addr: buf.get_u64(),
                is_write: flags & FLAG_IS_WRITE != 0,
            })
        } else {
            None
        };
        let branch = if flags & FLAG_HAS_BRANCH != 0 {
            Some(Branch {
                taken: flags & FLAG_TAKEN != 0,
                mispredicted: flags & FLAG_MISPREDICTED != 0,
            })
        } else {
            None
        };
        out.push(TraceRecord {
            pc,
            mem,
            branch,
            depends_on_prev_load: flags & FLAG_DEPENDENT != 0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::nop(0x400000),
            TraceRecord::load(0x400004, 0xdead_0040),
            TraceRecord::store(0x400008, 0xbeef_0080),
            TraceRecord::branch(0x40000c, true, false),
            TraceRecord::branch(0x400010, false, true),
            TraceRecord::dependent_load(0x400014, 0xaaaa_0000),
        ]
    }

    #[test]
    fn roundtrip_codec() {
        let original = sample();
        let encoded = encode_trace(&original);
        let decoded = decode_trace(encoded).expect("decode");
        assert_eq!(original, decoded);
    }

    #[test]
    fn decode_rejects_garbage() {
        let garbage = Bytes::from_static(&[0u8; 32]);
        assert_eq!(decode_trace(garbage), Err(DecodeTraceError::BadMagic));
    }

    #[test]
    fn decode_rejects_truncation() {
        let encoded = encode_trace(&sample());
        let cut = encoded.slice(0..encoded.len() - 4);
        assert_eq!(decode_trace(cut), Err(DecodeTraceError::Truncated));
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut buf = BytesMut::new();
        buf.put_u32(TRACE_MAGIC);
        buf.put_u16(99);
        buf.put_u64(0);
        assert_eq!(
            decode_trace(buf.freeze()),
            Err(DecodeTraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn constructors_classify() {
        assert!(TraceRecord::load(0, 0).is_load());
        assert!(!TraceRecord::load(0, 0).is_store());
        assert!(TraceRecord::store(0, 0).is_store());
        assert!(TraceRecord::dependent_load(0, 0).depends_on_prev_load);
        assert!(TraceRecord::nop(0).mem.is_none());
    }

    #[test]
    fn empty_trace_roundtrip() {
        let encoded = encode_trace(&[]);
        assert_eq!(decode_trace(encoded).unwrap(), Vec::new());
    }
}
