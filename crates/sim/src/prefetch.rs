//! The prefetcher interface.
//!
//! Per §5.2 of the paper, every evaluated prefetcher is trained on the
//! L1-cache miss stream (i.e. the L2's demand accesses) and fills prefetched
//! lines into the L2 and the LLC. The simulator calls
//! [`Prefetcher::on_demand_into`] for each such access — pushing requests
//! into a scratch buffer the simulator reuses across accesses, so the hot
//! path allocates nothing — and issues them into the hierarchy;
//! [`Prefetcher::on_fill`] notifies the prefetcher when one of its requests
//! is scheduled to land in the cache. The allocating
//! [`Prefetcher::on_demand`] convenience wrapper remains for tests and
//! examples.
//!
//! [`SystemFeedback`] carries the system-level information the paper argues
//! prefetchers should be *inherently* aware of — currently memory bandwidth
//! usage, exactly the signal Pythia folds into its reward scheme.
//!
//! Implementations must be deterministic (same access sequence ⇒ same
//! requests): the experiment harness's parallel sweep engine and the
//! repository's determinism tests both depend on it. Randomized policies
//! should derive their RNG from an explicit seed, as the registry's
//! builders do.
//!
//! # Implementing a prefetcher
//!
//! ```rust
//! use pythia_sim::addr;
//! use pythia_sim::prefetch::{DemandAccess, Prefetcher, PrefetchRequest, SystemFeedback};
//! use pythia_sim::stats::PrefetcherStats;
//!
//! /// Always fetches the next line, staying inside the 4 KB page.
//! struct NextLine(PrefetcherStats);
//!
//! impl Prefetcher for NextLine {
//!     fn name(&self) -> &str {
//!         "next-line"
//!     }
//!     fn on_demand_into(
//!         &mut self,
//!         access: &DemandAccess,
//!         _feedback: &SystemFeedback,
//!         out: &mut Vec<PrefetchRequest>,
//!     ) {
//!         if !addr::offset_stays_in_page(access.line, 1) {
//!             return;
//!         }
//!         self.0.issued += 1;
//!         out.push(PrefetchRequest::to_l2(access.line + 1));
//!     }
//!     fn stats(&self) -> PrefetcherStats {
//!         self.0
//!     }
//!     fn reset_stats(&mut self) {
//!         self.0 = PrefetcherStats::default();
//!     }
//! }
//! ```

use crate::addr;
use crate::stats::PrefetcherStats;

/// A demand access observed at the prefetcher's cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandAccess {
    /// Program counter of the triggering load/store.
    pub pc: u64,
    /// Byte address demanded.
    pub addr: u64,
    /// Cacheline index of the demand.
    pub line: u64,
    /// `true` for stores.
    pub is_write: bool,
    /// Core cycle at which the demand issued.
    pub cycle: u64,
    /// `true` if the access missed at this level (for prefetchers that only
    /// train on misses; the simulator invokes the prefetcher on every L2
    /// demand access, which is the L1 miss stream).
    pub missed: bool,
}

impl DemandAccess {
    /// Physical page number of the demand.
    pub fn page(&self) -> u64 {
        addr::page_of(self.addr)
    }

    /// Line offset within the page, in `0..64`.
    pub fn page_offset(&self) -> u64 {
        addr::page_offset(self.addr)
    }
}

/// One prefetch request emitted by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchRequest {
    /// Cacheline index to prefetch.
    pub line: u64,
    /// If `true`, fill into L2 (and LLC); otherwise LLC only.
    pub fill_l2: bool,
}

impl PrefetchRequest {
    /// A request filling both L2 and LLC (the common case in the paper).
    pub fn to_l2(line: u64) -> Self {
        Self {
            line,
            fill_l2: true,
        }
    }

    /// A request filling only the LLC (used by low-confidence paths, e.g.
    /// SPP's below-threshold lookahead prefetches).
    pub fn to_llc(line: u64) -> Self {
        Self {
            line,
            fill_l2: false,
        }
    }
}

/// System-level feedback made available to prefetchers on every decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemFeedback {
    /// Whether DRAM bandwidth usage over the last monitoring window exceeded
    /// the configured threshold.
    pub bandwidth_high: bool,
    /// Raw utilization percentage of the last window (0–100).
    pub bandwidth_utilization_pct: u8,
}

impl SystemFeedback {
    /// Feedback indicating an idle memory system.
    pub fn idle() -> Self {
        Self {
            bandwidth_high: false,
            bandwidth_utilization_pct: 0,
        }
    }
}

/// Notification that a prefetched line has been scheduled to fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillEvent {
    /// The filled cacheline index.
    pub line: u64,
    /// Cycle at which the data arrives in the cache.
    pub ready_at: u64,
    /// `true` if the fill originated from a prefetch request (vs. a demand
    /// miss fill).
    pub prefetched: bool,
}

/// A read-only snapshot of a learning prefetcher's internal state, for
/// windowed telemetry (Q-value drift, evaluation-queue pressure).
///
/// Produced by [`Prefetcher::telemetry_probe`]; prefetchers without
/// internal learning state return `None` from the default method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentProbe {
    /// Minimum stored Q entry (plane-partial units for Pythia).
    pub q_min: f32,
    /// Mean stored Q entry.
    pub q_mean: f32,
    /// Maximum stored Q entry.
    pub q_max: f32,
    /// Entries currently resident in the evaluation queue.
    pub eq_len: usize,
    /// Evaluation-queue capacity.
    pub eq_capacity: usize,
}

/// A hardware prefetcher.
///
/// Implementations live in `pythia-prefetchers` (the baselines of Table 7)
/// and `pythia-core` (Pythia itself). The trait is object-safe; the
/// simulator owns one boxed prefetcher per core.
pub trait Prefetcher {
    /// Short identifier used in reports (e.g. `"spp"`, `"bingo"`,
    /// `"pythia"`).
    fn name(&self) -> &str;

    /// Called on every demand access at the training level. Pushes the
    /// prefetch requests to issue into `out` — a scratch buffer the
    /// simulator clears and reuses across accesses, keeping the per-access
    /// hot path allocation-free. The simulator deduplicates against cache
    /// contents and clamps addresses; prefetchers are responsible for any
    /// page-boundary policy of their own.
    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    );

    /// Allocating convenience wrapper around
    /// [`on_demand_into`](Prefetcher::on_demand_into), for tests and
    /// example code off the hot path.
    fn on_demand(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        self.on_demand_into(access, feedback, &mut out);
        out
    }

    /// Called when a line fills into the L2 (demand or prefetch).
    fn on_fill(&mut self, _event: &FillEvent) {}

    /// Called when the simulator observes that one of this prefetcher's
    /// requests turned out useful (first demand hit on a prefetched line).
    fn on_useful(&mut self, _line: u64) {}

    /// Batch form of [`on_useful`](Prefetcher::on_useful): the simulator
    /// collects every useful line observed on one demand path and delivers
    /// them in a single virtual call. The default forwards line-by-line,
    /// in order — overriding either method is equivalent.
    fn on_useful_batch(&mut self, lines: &[u64]) {
        for &line in lines {
            self.on_useful(line);
        }
    }

    /// Called when a prefetched line was evicted unused.
    fn on_useless(&mut self, _line: u64) {}

    /// Statistics counters (issued/useful/...); the simulator also keeps its
    /// own authoritative accounting in cache stats.
    fn stats(&self) -> PrefetcherStats;

    /// Resets statistics between warmup and measurement, keeping learned
    /// state.
    fn reset_stats(&mut self);

    /// Estimated metadata storage in bits (Table 7 reproduction).
    fn storage_bits(&self) -> u64 {
        0
    }

    /// A strictly read-only snapshot of internal learning state for the
    /// windowed telemetry layer. The default (`None`) suits stateless
    /// and table-free prefetchers; Pythia reports its Q-table spread and
    /// EQ occupancy. Implementations must not mutate any state here —
    /// the workspace pins reports byte-identical with telemetry on/off.
    fn telemetry_probe(&self) -> Option<AgentProbe> {
        None
    }
}

/// The no-op prefetcher: the paper's "no prefetching" baseline.
#[derive(Debug, Default, Clone)]
pub struct NoPrefetcher {
    stats: PrefetcherStats,
}

impl NoPrefetcher {
    /// Creates a no-op prefetcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn on_demand_into(
        &mut self,
        _access: &DemandAccess,
        _feedback: &SystemFeedback,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_access_helpers() {
        let a = DemandAccess {
            pc: 0x400000,
            addr: 0x1234 + 4096 * 7,
            line: addr::line_of(0x1234 + 4096 * 7),
            is_write: false,
            cycle: 0,
            missed: true,
        };
        assert_eq!(a.page(), 7 + 1); // 0x1234 > 4096, so one page up
        assert!(a.page_offset() < 64);
    }

    #[test]
    fn no_prefetcher_is_silent() {
        let mut p = NoPrefetcher::new();
        let a = DemandAccess {
            pc: 0,
            addr: 0,
            line: 0,
            is_write: false,
            cycle: 0,
            missed: true,
        };
        assert!(p.on_demand(&a, &SystemFeedback::idle()).is_empty());
        assert_eq!(p.stats(), PrefetcherStats::default());
        assert_eq!(p.name(), "none");
        assert_eq!(p.storage_bits(), 0);
    }

    #[test]
    fn request_constructors() {
        assert!(PrefetchRequest::to_l2(5).fill_l2);
        assert!(!PrefetchRequest::to_llc(5).fill_l2);
    }

    #[test]
    fn prefetcher_trait_is_object_safe() {
        let boxed: Box<dyn Prefetcher> = Box::new(NoPrefetcher::new());
        assert_eq!(boxed.name(), "none");
    }
}
