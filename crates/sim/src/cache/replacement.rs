//! Replacement policies: LRU for the private levels and SHiP
//! (Signature-based Hit Predictor, Wu et al. MICRO'11) for the LLC, matching
//! Table 5 of the paper.

use serde::{Deserialize, Serialize};

/// Which replacement policy a cache level runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Classic least-recently-used.
    Lru,
    /// SHiP: SRRIP victim selection with signature-predicted insertion.
    Ship,
}

/// Number of entries in the Signature History Counter Table.
const SHCT_ENTRIES: usize = 16 * 1024;
/// Saturating maximum of each SHCT counter (3-bit counters).
const SHCT_MAX: u8 = 7;

/// SHiP predictor state: one saturating counter per PC signature.
///
/// A counter of zero means "lines brought in by this signature are never
/// reused" — such lines are inserted with distant re-reference prediction
/// (RRPV = 3) so they are evicted first.
#[derive(Debug, Clone)]
pub(crate) struct ShipState {
    shct: Vec<u8>,
}

impl ShipState {
    pub(crate) fn new() -> Self {
        // Start weakly-reused so the predictor must learn non-reuse.
        Self {
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    #[inline]
    fn index(sig: u16) -> usize {
        sig as usize % SHCT_ENTRIES
    }

    /// Called when a line is re-referenced while resident.
    pub(crate) fn on_reuse(&mut self, sig: u16) {
        let c = &mut self.shct[Self::index(sig)];
        *c = (*c + 1).min(SHCT_MAX);
    }

    /// Called when a line is evicted without having been reused.
    pub(crate) fn on_eviction_unused(&mut self, sig: u16) {
        let c = &mut self.shct[Self::index(sig)];
        *c = c.saturating_sub(1);
    }

    /// Insertion RRPV for a new line with signature `sig`.
    ///
    /// Prefetch fills are inserted with distant prediction unless the
    /// signature has proven strongly reused, limiting LLC pollution from
    /// overpredicting prefetchers — the effect the paper leans on in its
    /// bandwidth-constrained studies.
    pub(crate) fn insertion_rrpv(&self, sig: u16, prefetched: bool) -> u8 {
        let counter = self.shct[Self::index(sig)];
        if counter == 0 {
            3
        } else if prefetched {
            if counter >= SHCT_MAX {
                2
            } else {
                3
            }
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_both_ends() {
        let mut s = ShipState::new();
        for _ in 0..20 {
            s.on_reuse(42);
        }
        assert_eq!(s.shct[ShipState::index(42)], SHCT_MAX);
        for _ in 0..20 {
            s.on_eviction_unused(42);
        }
        assert_eq!(s.shct[ShipState::index(42)], 0);
    }

    #[test]
    fn never_reused_signature_gets_distant_insertion() {
        let mut s = ShipState::new();
        s.on_eviction_unused(7); // counter 1 -> 0
        assert_eq!(s.insertion_rrpv(7, false), 3);
        assert_eq!(s.insertion_rrpv(7, true), 3);
    }

    #[test]
    fn reused_signature_gets_near_insertion() {
        let mut s = ShipState::new();
        s.on_reuse(9);
        assert_eq!(s.insertion_rrpv(9, false), 2);
    }

    #[test]
    fn prefetch_insertion_more_conservative() {
        let s = ShipState::new();
        // Fresh signature (counter 1): demand inserted at 2, prefetch at 3.
        assert_eq!(s.insertion_rrpv(3, false), 2);
        assert_eq!(s.insertion_rrpv(3, true), 3);
        // Strongly reused signature: prefetch allowed near insertion.
        let mut s = ShipState::new();
        for _ in 0..10 {
            s.on_reuse(3);
        }
        assert_eq!(s.insertion_rrpv(3, true), 2);
    }

    #[test]
    fn distinct_signatures_independent() {
        let mut s = ShipState::new();
        s.on_eviction_unused(1);
        assert_eq!(s.insertion_rrpv(1, false), 3);
        assert_eq!(s.insertion_rrpv(2, false), 2);
    }
}
