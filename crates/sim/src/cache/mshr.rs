//! Miss-status holding registers.
//!
//! A cache can track only a bounded number of outstanding misses (Table 5:
//! 16 for L1, 32 for L2, 64 per LLC bank). When the file is full, the next
//! miss must wait for the earliest outstanding miss to complete; the wait is
//! charged to the access latency. This is the mechanism that bounds
//! memory-level parallelism in the latency-tagged timing model.

/// A bounded file of outstanding-miss completion times.
///
/// The file holds an (unordered) multiset of completion cycles in a flat
/// array sized at the register count — at MSHR sizes (16–64 registers)
/// the linear retire/min scans vectorize and beat a binary heap's pointer
/// swaps, and only the multiset matters: retirement drops every
/// completion `<= cycle` and a full file waits on the minimum, both
/// order-independent.
#[derive(Debug)]
pub struct MshrFile {
    capacity: usize,
    // Completion cycles of in-flight misses, unordered.
    inflight: Vec<u64>,
    stalls: u64,
    stall_cycles: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one register");
        Self {
            capacity,
            inflight: Vec::with_capacity(capacity + 1),
            stalls: 0,
            stall_cycles: 0,
        }
    }

    /// Drops every completion at or before `cycle` (retired registers).
    #[inline]
    fn retire_through(&mut self, cycle: u64) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i] <= cycle {
                self.inflight.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Allocates a register for a miss issued at `cycle` that will complete
    /// at `completion`. Returns the extra cycles the miss had to wait for a
    /// free register (zero when one was available).
    pub fn allocate(&mut self, cycle: u64, completion: u64) -> u64 {
        // Retire registers whose misses have completed.
        self.retire_through(cycle);
        let wait = if self.inflight.len() >= self.capacity {
            let (min_idx, &earliest) = self
                .inflight
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("non-empty at capacity");
            self.inflight.swap_remove(min_idx);
            let wait = earliest.saturating_sub(cycle);
            if wait > 0 {
                self.stalls += 1;
                self.stall_cycles += wait;
            }
            wait
        } else {
            0
        };
        self.inflight.push(completion + wait);
        wait
    }

    /// Number of registers currently in flight at `cycle`.
    pub fn occupancy(&mut self, cycle: u64) -> usize {
        self.retire_through(cycle);
        self.inflight.len()
    }

    /// Total number of allocations that had to wait.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total cycles spent waiting for a register.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Capacity of the file.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears stall statistics (between warmup and measurement).
    pub fn reset_stats(&mut self) {
        self.stalls = 0;
        self.stall_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_wait_when_capacity_available() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(0, 100), 0);
        assert_eq!(m.allocate(0, 100), 0);
        assert_eq!(m.occupancy(0), 2);
    }

    #[test]
    fn waits_when_full() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.allocate(0, 100), 0);
        // Second miss at cycle 10 must wait until 100.
        assert_eq!(m.allocate(10, 110), 90);
        assert_eq!(m.stalls(), 1);
        assert_eq!(m.stall_cycles(), 90);
    }

    #[test]
    fn completed_misses_free_registers() {
        let mut m = MshrFile::new(1);
        m.allocate(0, 50);
        // At cycle 60 the first miss has completed; no wait.
        assert_eq!(m.allocate(60, 160), 0);
    }

    #[test]
    fn waited_miss_completion_shifts() {
        let mut m = MshrFile::new(1);
        m.allocate(0, 100);
        // Waits 100 cycles; its own completion shifts to 200+100... i.e.
        // completion passed in (200) plus the wait (100).
        assert_eq!(m.allocate(0, 200), 100);
        // A third miss at cycle 0 waits until 300.
        assert_eq!(m.allocate(0, 400), 300);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn occupancy_drains_over_time() {
        let mut m = MshrFile::new(4);
        m.allocate(0, 10);
        m.allocate(0, 20);
        m.allocate(0, 30);
        assert_eq!(m.occupancy(15), 2);
        assert_eq!(m.occupancy(25), 1);
        assert_eq!(m.occupancy(35), 0);
    }
}
