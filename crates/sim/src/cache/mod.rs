//! Set-associative cache model with MSHRs and pluggable replacement.
//!
//! The hierarchy built from this model mirrors Table 5 of the paper:
//! private L1D and L2 with LRU replacement, and a shared LLC running
//! SHiP (signature-based hit prediction, Wu et al. MICRO'11).
//!
//! Timing is "latency-tagged" rather than event-driven: every line carries a
//! `ready_at` cycle so that demands hitting an in-flight (e.g. prefetched)
//! line pay the residual latency — this is how accurate-but-late prefetches
//! are detected.

mod mshr;
mod replacement;

pub use mshr::MshrFile;
pub use replacement::ReplacementKind;

use replacement::ShipState;

use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// The kind of request presented to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load from the core.
    DemandLoad,
    /// A demand store (read-for-ownership).
    DemandStore,
    /// A prefetch request.
    Prefetch,
    /// A writeback of a dirty line evicted from an upper level.
    Writeback,
}

impl AccessKind {
    /// Whether the access is a demand (load or store).
    pub fn is_demand(self) -> bool {
        matches!(self, Self::DemandLoad | Self::DemandStore)
    }
}

/// Result of probing a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line is present.
    Hit {
        /// Cycle at which data is available (may be in the future for
        /// in-flight prefetches).
        ready_at: u64,
        /// `true` on the first demand touch of a prefetched line.
        was_prefetched: bool,
    },
    /// The line is absent.
    Miss,
}

/// Per-line bookkeeping kept out of the tag array so the per-access tag
/// scan touches nothing but a dense `u64` vector.
#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    dirty: bool,
    prefetched: bool,
    demanded: bool,
    ready_at: u64,
    rrpv: u8,
    ship_sig: u16,
}

/// A line evicted by a fill; dirty evictions become DRAM writebacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line index of the victim.
    pub line: u64,
    /// Whether the victim was dirty.
    pub dirty: bool,
    /// Whether the victim was a prefetched line that was never demanded
    /// (an overprediction; reported to the prefetcher as useless).
    pub unused_prefetch: bool,
}

/// A set-associative cache level.
///
/// Lines are stored structure-of-arrays style in flat, whole-cache
/// allocations: a dense tag vector (`tags`), a per-set validity bitmask
/// (`valid`), and the per-line metadata (`meta`) off the lookup path. The
/// way scan for a set therefore reads `ways` consecutive `u64`s from one
/// open-addressed tag array instead of chasing a per-set `Vec<Line>`
/// allocation — the hottest loop in the whole simulator.
#[derive(Debug)]
pub struct Cache {
    name: &'static str,
    /// `tags[set * ways + way]`, meaningful where the valid bit is set.
    tags: Vec<u64>,
    /// Bit `way` of `valid[set]` ⇔ that slot holds a live line.
    valid: Vec<u64>,
    /// `meta[set * ways + way]`, parallel to `tags`.
    meta: Vec<LineMeta>,
    /// LRU stamps, parallel to `tags` but kept in their own dense vector
    /// so the per-fill victim scan reads contiguous `u64`s.
    lru: Vec<u64>,
    sets: usize,
    /// Fast-path mask when the set count is a power of two; otherwise the
    /// index falls back to a modulo (e.g. the 24 MB LLC of a 12-core
    /// system has 24576 sets).
    set_mask: Option<u64>,
    ways: usize,
    latency: u64,
    clock: u64,
    replacement: ReplacementKind,
    ship: ShipState,
    mshr: MshrFile,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets, zero ways, or more
    /// ways than the per-set validity bitmask holds (64).
    pub fn new(name: &'static str, config: &CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0, "{name}: cache must have at least one set");
        assert!(
            (1..=64).contains(&config.ways),
            "{name}: ways must be in 1..=64"
        );
        Self {
            name,
            tags: vec![0; sets * config.ways],
            valid: vec![0; sets],
            meta: vec![LineMeta::default(); sets * config.ways],
            lru: vec![0; sets * config.ways],
            sets,
            set_mask: if sets.is_power_of_two() {
                Some(sets as u64 - 1)
            } else {
                None
            },
            ways: config.ways,
            latency: config.latency,
            clock: 0,
            replacement: config.replacement,
            ship: ShipState::new(),
            mshr: MshrFile::new(config.mshrs),
            stats: CacheStats::default(),
        }
    }

    /// Hit latency of this level in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The cache's name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Immutable view of the accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (between warmup and measurement) without touching
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Exclusive access to the MSHR file.
    pub fn mshr_mut(&mut self) -> &mut MshrFile {
        &mut self.mshr
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.sets as u64) as usize,
        }
    }

    /// Bitmask with one bit set per way.
    #[inline]
    fn full_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    /// Way currently holding `line` in `set_idx`, scanning the flat tag
    /// array (first match in way order, like the per-set linear scan this
    /// replaced). The comparison loop is branchless — it builds a match
    /// bitmask over all ways and lets the compiler vectorize it — because
    /// this runs once per cache access, the hottest loop in the simulator.
    #[inline]
    fn find_way(&self, set_idx: usize, line: u64) -> Option<usize> {
        let base = set_idx * self.ways;
        let tags = &self.tags[base..base + self.ways];
        let mut matches = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            matches |= u64::from(t == line) << w;
        }
        matches &= self.valid[set_idx];
        if matches != 0 {
            Some(matches.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Probes for `line` without modifying any state (used to drop redundant
    /// prefetches).
    pub fn probe(&self, line: u64) -> bool {
        self.find_way(self.set_index(line), line).is_some()
    }

    #[inline]
    /// Accesses the cache at `cycle`. Updates replacement/dirty state and
    /// statistics, and returns whether the line was present.
    pub fn access(&mut self, line: u64, kind: AccessKind, cycle: u64) -> Lookup {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_index(line);
        match self.find_way(set_idx, line) {
            Some(w) => {
                let replacement = self.replacement;
                self.lru[set_idx * self.ways + w] = clock;
                let slot = &mut self.meta[set_idx * self.ways + w];
                let first_demand_touch = kind.is_demand() && slot.prefetched && !slot.demanded;
                if kind.is_demand() {
                    slot.demanded = true;
                }
                if kind == AccessKind::DemandStore || kind == AccessKind::Writeback {
                    slot.dirty = true;
                }
                slot.rrpv = 0;
                let sig = slot.ship_sig;
                let ready_at = slot.ready_at;
                let late = first_demand_touch && ready_at > cycle;
                if replacement == ReplacementKind::Ship && kind.is_demand() {
                    self.ship.on_reuse(sig);
                }
                self.record_access(kind, true, first_demand_touch, late);
                Lookup::Hit {
                    ready_at,
                    was_prefetched: first_demand_touch,
                }
            }
            None => {
                self.record_access(kind, false, false, false);
                Lookup::Miss
            }
        }
    }

    #[inline]
    fn record_access(&mut self, kind: AccessKind, hit: bool, useful_prefetch: bool, late: bool) {
        let (hits, misses) = (u64::from(hit), u64::from(!hit));
        match kind {
            AccessKind::DemandLoad => {
                self.stats.demand_loads += 1;
                self.stats.demand_load_hits += hits;
                self.stats.demand_load_misses += misses;
            }
            AccessKind::DemandStore => {
                self.stats.demand_stores += 1;
                self.stats.demand_store_hits += hits;
                self.stats.demand_store_misses += misses;
            }
            AccessKind::Prefetch => {
                self.stats.prefetch_redundant += hits;
            }
            AccessKind::Writeback => {}
        }
        self.stats.useful_prefetches += u64::from(useful_prefetch);
        self.stats.late_prefetch_hits += u64::from(useful_prefetch && late);
    }

    /// Fills `line` into the cache, returning the eviction it caused (if the
    /// victim way held a valid line).
    ///
    /// `ready_at` is the cycle the data actually arrives (DRAM completion);
    /// `prefetched` marks prefetch fills for usefulness accounting;
    /// `pc_sig` is the SHiP signature (hash of the triggering PC).
    pub fn fill(
        &mut self,
        line: u64,
        ready_at: u64,
        kind: AccessKind,
        pc_sig: u16,
    ) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_index(line);
        let base = set_idx * self.ways;

        // Fill into an existing copy (e.g. prefetch raced with demand): just
        // refresh readiness.
        if let Some(w) = self.find_way(set_idx, line) {
            let slot = &mut self.meta[base + w];
            slot.ready_at = slot.ready_at.min(ready_at);
            return None;
        }

        let way = self.choose_victim(set_idx);
        let replacement = self.replacement;
        let victim_valid = self.valid[set_idx] & (1 << way) != 0;
        let evicted = if victim_valid {
            let victim = self.meta[base + way];
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.dirty_evictions += 1;
            }
            let unused_prefetch = victim.prefetched && !victim.demanded;
            if unused_prefetch {
                self.stats.useless_prefetches += 1;
            }
            if replacement == ReplacementKind::Ship && !victim.demanded {
                // Line evicted without reuse: train SHCT down.
                self.ship.on_eviction_unused(victim.ship_sig);
            }
            Some(Eviction {
                line: self.tags[base + way],
                dirty: victim.dirty,
                unused_prefetch,
            })
        } else {
            None
        };

        let prefetched = kind == AccessKind::Prefetch;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let insert_rrpv = if replacement == ReplacementKind::Ship {
            self.ship.insertion_rrpv(pc_sig, prefetched)
        } else {
            0
        };
        self.tags[base + way] = line;
        self.valid[set_idx] |= 1 << way;
        self.lru[base + way] = clock;
        self.meta[base + way] = LineMeta {
            dirty: kind == AccessKind::Writeback || kind == AccessKind::DemandStore,
            prefetched,
            demanded: kind.is_demand(),
            ready_at,
            rrpv: insert_rrpv,
            ship_sig: pc_sig,
        };
        evicted
    }

    /// Invalidates `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set_idx = self.set_index(line);
        if let Some(w) = self.find_way(set_idx, line) {
            self.valid[set_idx] &= !(1 << w);
            return Some(self.meta[set_idx * self.ways + w].dirty);
        }
        None
    }

    fn choose_victim(&mut self, set_idx: usize) -> usize {
        // Prefer invalid ways (lowest way index first, like the linear
        // position scan this replaced).
        let invalid = !self.valid[set_idx] & self.full_mask();
        if invalid != 0 {
            return invalid.trailing_zeros() as usize;
        }
        let base = set_idx * self.ways;
        match self.replacement {
            ReplacementKind::Lru => self.lru[base..base + self.ways]
                .iter()
                .enumerate()
                .min_by_key(|(_, &l)| l)
                .map(|(w, _)| w)
                .expect("non-empty set"),
            ReplacementKind::Ship => {
                let set = &mut self.meta[base..base + self.ways];
                // SRRIP victim search: find RRPV==3, aging all ways until one
                // appears.
                loop {
                    if let Some(w) = set.iter().position(|l| l.rrpv >= 3) {
                        return w;
                    }
                    for l in set.iter_mut() {
                        l.rrpv = (l.rrpv + 1).min(3);
                    }
                }
            }
        }
    }

    /// Number of valid lines currently resident (for tests/diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(replacement: ReplacementKind) -> Cache {
        let cfg = CacheConfig {
            size_bytes: 4 * 64 * 2, // 4 sets x 2 ways
            ways: 2,
            latency: 4,
            mshrs: 4,
            replacement,
        };
        Cache::new("test", &cfg)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        assert_eq!(c.access(100, AccessKind::DemandLoad, 0), Lookup::Miss);
        c.fill(100, 10, AccessKind::DemandLoad, 0);
        match c.access(100, AccessKind::DemandLoad, 20) {
            Lookup::Hit { ready_at, .. } => assert_eq!(ready_at, 10),
            Lookup::Miss => panic!("expected hit"),
        }
        assert_eq!(c.stats().demand_loads, 2);
        assert_eq!(c.stats().demand_load_hits, 1);
        assert_eq!(c.stats().demand_load_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        // Lines 0, 4, 8 map to set 0 (4 sets).
        c.fill(0, 0, AccessKind::DemandLoad, 0);
        c.fill(4, 0, AccessKind::DemandLoad, 0);
        // Touch line 0 so 4 is LRU.
        c.access(0, AccessKind::DemandLoad, 1);
        let ev = c.fill(8, 0, AccessKind::DemandLoad, 0).expect("eviction");
        assert_eq!(ev.line, 4);
        assert!(c.probe(0));
        assert!(c.probe(8));
        assert!(!c.probe(4));
    }

    #[test]
    fn useful_and_useless_prefetch_accounting() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        c.fill(0, 0, AccessKind::Prefetch, 0);
        c.fill(4, 0, AccessKind::Prefetch, 0);
        // Demand 0 -> useful, counted once.
        c.access(0, AccessKind::DemandLoad, 1);
        c.access(0, AccessKind::DemandLoad, 2);
        assert_eq!(c.stats().useful_prefetches, 1);
        // Evict 4 unused -> useless. Fill two more lines in set 0.
        c.fill(8, 0, AccessKind::DemandLoad, 0);
        c.fill(12, 0, AccessKind::DemandLoad, 0);
        assert_eq!(c.stats().useless_prefetches, 1);
        assert_eq!(c.stats().prefetch_fills, 2);
    }

    #[test]
    fn late_prefetch_detected() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        c.fill(0, 1000, AccessKind::Prefetch, 0);
        match c.access(0, AccessKind::DemandLoad, 500) {
            Lookup::Hit {
                ready_at,
                was_prefetched,
            } => {
                assert_eq!(ready_at, 1000);
                assert!(was_prefetched);
            }
            Lookup::Miss => panic!("expected hit"),
        }
        assert_eq!(c.stats().late_prefetch_hits, 1);
    }

    #[test]
    fn store_marks_dirty_and_writeback_on_eviction() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        c.fill(0, 0, AccessKind::DemandStore, 0);
        c.fill(4, 0, AccessKind::DemandLoad, 0);
        // Evict line 0 (LRU).
        let ev = c.fill(8, 0, AccessKind::DemandLoad, 0).expect("eviction");
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn prefetch_probe_redundant() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        c.fill(0, 0, AccessKind::DemandLoad, 0);
        assert!(matches!(
            c.access(0, AccessKind::Prefetch, 1),
            Lookup::Hit { .. }
        ));
        assert_eq!(c.stats().prefetch_redundant, 1);
    }

    #[test]
    fn ship_cache_basic_operation() {
        let mut c = tiny_cache(ReplacementKind::Ship);
        for i in 0..16u64 {
            c.access(i, AccessKind::DemandLoad, i);
            c.fill(i, i, AccessKind::DemandLoad, (i % 4) as u16);
        }
        // All sets full; cache still functions and evicts.
        assert_eq!(c.resident_lines(), c.capacity_lines());
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        c.fill(0, 0, AccessKind::DemandStore, 0);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.probe(0));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn duplicate_fill_keeps_earliest_ready() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        c.fill(0, 100, AccessKind::Prefetch, 0);
        c.fill(0, 50, AccessKind::DemandLoad, 0);
        match c.access(0, AccessKind::DemandLoad, 0) {
            Lookup::Hit { ready_at, .. } => assert_eq!(ready_at, 50),
            Lookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = tiny_cache(ReplacementKind::Lru);
        c.fill(0, 0, AccessKind::DemandLoad, 0);
        c.access(0, AccessKind::DemandLoad, 1);
        c.reset_stats();
        assert_eq!(c.stats().demand_loads, 0);
        assert!(c.probe(0));
    }
}
