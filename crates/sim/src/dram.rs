//! DDR4-style DRAM model: channels → ranks → banks with open-row policy,
//! tRCD/tRP/tCAS timing, and a bandwidth-capped data bus whose transfer rate
//! (MTPS) is the knob swept in Fig. 8(b) of the paper.
//!
//! The model is latency-tagged: each bank and each channel's data bus keep an
//! absolute `next_free` cycle. A request issued at cycle *C* computes its
//! completion from those reservations and pushes them forward, so queueing
//! delay emerges naturally when demand (plus prefetch) traffic exceeds the
//! configured bandwidth — the effect that separates system-aware Pythia from
//! bandwidth-oblivious prefetchers in the paper's evaluation.

use crate::config::DramConfig;
use crate::stats::DramStats;

/// Who generated a DRAM read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramRequestKind {
    /// Read triggered by a demand miss.
    DemandRead,
    /// Read triggered by a prefetch.
    PrefetchRead,
    /// Writeback of a dirty line.
    Write,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    next_free: u64,
    open_row: Option<u64>,
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    bus_next_free: u64,
}

/// Sliding-window DRAM bandwidth monitor.
///
/// This is the system-level feedback source of the paper (§3): prefetchers
/// query [`BandwidthMonitor::is_high`] and Pythia folds it into its reward
/// scheme (R_IN^H vs R_IN^L, R_NP^H vs R_NP^L).
#[derive(Debug)]
pub struct BandwidthMonitor {
    window: u64,
    peak_cycles_per_window: u64,
    window_start: u64,
    busy_in_window: u64,
    last_utilization_pct: u8,
    high_threshold_pct: u8,
    bucket_windows: [u64; 4],
}

impl BandwidthMonitor {
    /// Creates a monitor over `window` cycles with `channels` data buses and
    /// the given high-usage threshold (percent of peak).
    pub fn new(window: u64, channels: usize, high_threshold_pct: u8) -> Self {
        Self {
            window,
            peak_cycles_per_window: window * channels as u64,
            window_start: 0,
            busy_in_window: 0,
            last_utilization_pct: 0,
            high_threshold_pct,
            bucket_windows: [0; 4],
        }
    }

    fn roll_to(&mut self, cycle: u64) {
        while cycle >= self.window_start + self.window {
            let pct =
                (self.busy_in_window * 100 / self.peak_cycles_per_window.max(1)).min(100) as u8;
            self.last_utilization_pct = pct;
            let bucket = match pct {
                0..=24 => 0,
                25..=49 => 1,
                50..=74 => 2,
                _ => 3,
            };
            self.bucket_windows[bucket] += 1;
            self.busy_in_window = 0;
            self.window_start += self.window;
        }
    }

    /// Records `busy` bus cycles for a transfer that started at `cycle`.
    pub fn record(&mut self, cycle: u64, busy: u64) {
        self.roll_to(cycle);
        self.busy_in_window += busy;
    }

    /// Advances the window to `cycle` without recording traffic (called on
    /// every demand so idle periods register as low usage).
    pub fn advance(&mut self, cycle: u64) {
        self.roll_to(cycle);
    }

    /// Utilization of the previous complete window, in percent of peak.
    pub fn utilization_pct(&self) -> u8 {
        self.last_utilization_pct
    }

    /// Whether bandwidth usage is currently considered high.
    pub fn is_high(&self) -> bool {
        self.last_utilization_pct >= self.high_threshold_pct
    }

    /// Histogram of complete windows per utilization bucket
    /// `[<25%, 25–50%, 50–75%, >=75%]` (Fig. 14).
    pub fn bucket_windows(&self) -> [u64; 4] {
        self.bucket_windows
    }

    /// Clears the bucket histogram (between warmup and measurement).
    pub fn reset_stats(&mut self) {
        self.bucket_windows = [0; 4];
    }
}

/// The DRAM subsystem.
#[derive(Debug)]
pub struct Dram {
    channels: Vec<Channel>,
    banks_per_channel: usize,
    row_lines: u64,
    t_rcd: u64,
    t_rp: u64,
    t_cas: u64,
    transfer_cycles: u64,
    /// `PYTHIA_FREE_PF_BUS` diagnostic knob, sampled once at construction
    /// (reading the environment on every access dominated the DRAM model's
    /// cost).
    free_prefetch_bus: bool,
    stats: DramStats,
}

/// Completion information for one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycle at which the requested line's data is fully transferred.
    pub done_at: u64,
    /// Whether the access hit in an open row buffer.
    pub row_hit: bool,
}

impl Dram {
    /// Creates the DRAM model from its configuration.
    pub fn new(config: &DramConfig) -> Self {
        let banks_per_channel = config.ranks_per_channel * config.banks_per_rank;
        Self {
            channels: (0..config.channels)
                .map(|_| Channel {
                    banks: vec![Bank::default(); banks_per_channel],
                    bus_next_free: 0,
                })
                .collect(),
            banks_per_channel,
            row_lines: config.row_buffer_bytes / crate::LINE_SIZE,
            t_rcd: DramConfig::tenth_ns_to_cycles(config.t_rcd_tenth_ns),
            t_rp: DramConfig::tenth_ns_to_cycles(config.t_rp_tenth_ns),
            t_cas: DramConfig::tenth_ns_to_cycles(config.t_cas_tenth_ns),
            transfer_cycles: config.line_transfer_cycles(),
            free_prefetch_bus: std::env::var("PYTHIA_FREE_PF_BUS").is_ok(),
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears statistics (between warmup and measurement).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Stores the monitor's bucket histogram into the stats snapshot.
    pub fn store_bw_buckets(&mut self, buckets: [u64; 4]) {
        self.stats.bw_bucket_windows = buckets;
    }

    #[inline]
    fn route(&self, line: u64) -> (usize, usize, u64) {
        let n_ch = self.channels.len() as u64;
        let channel = (line % n_ch) as usize;
        let per_channel_line = line / n_ch;
        let row = per_channel_line / self.row_lines;
        let bank = (row % self.banks_per_channel as u64) as usize;
        (channel, bank, row)
    }

    /// Issues an access for `line` at `cycle`, updating bank and bus
    /// reservations, and reports bus busy time to `monitor`.
    pub fn access(
        &mut self,
        line: u64,
        kind: DramRequestKind,
        cycle: u64,
        monitor: &mut BandwidthMonitor,
    ) -> DramAccess {
        let (ch_idx, bank_idx, row) = self.route(line);
        let t_cas = self.t_cas;
        let t_rp = self.t_rp;
        let t_rcd = self.t_rcd;
        let transfer = self.transfer_cycles;
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        let start = cycle.max(bank.next_free);
        let row_hit = bank.open_row == Some(row);
        let array_latency = if row_hit { t_cas } else { t_rp + t_rcd + t_cas };
        bank.open_row = Some(row);
        bank.next_free = start + array_latency;

        let bus_start = (start + array_latency).max(ch.bus_next_free);
        if !(self.free_prefetch_bus && kind == DramRequestKind::PrefetchRead) {
            ch.bus_next_free = bus_start + transfer;
        }
        let done_at = bus_start + transfer;

        monitor.record(cycle, transfer);
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.bus_busy_cycles += transfer;
        match kind {
            DramRequestKind::DemandRead => self.stats.demand_reads += 1,
            DramRequestKind::PrefetchRead => self.stats.prefetch_reads += 1,
            DramRequestKind::Write => self.stats.writes += 1,
        }
        DramAccess { done_at, row_hit }
    }

    /// Idle (unloaded) round-trip latency of a row-miss read, for tests.
    pub fn unloaded_row_miss_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cas + self.transfer_cycles
    }

    /// The line transfer time on the data bus, in cycles.
    pub fn transfer_cycles(&self) -> u64 {
        self.transfer_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mtps: u64, channels: usize) -> (Dram, BandwidthMonitor) {
        let mut cfg = DramConfig::for_cores(1);
        cfg.mtps = mtps;
        cfg.channels = channels;
        (Dram::new(&cfg), BandwidthMonitor::new(1024, channels, 50))
    }

    #[test]
    fn first_access_is_row_miss() {
        let (mut d, mut m) = setup(2400, 1);
        let a = d.access(0, DramRequestKind::DemandRead, 0, &mut m);
        assert!(!a.row_hit);
        assert_eq!(a.done_at, d.unloaded_row_miss_latency());
    }

    #[test]
    fn same_row_second_access_hits() {
        let (mut d, mut m) = setup(2400, 1);
        d.access(0, DramRequestKind::DemandRead, 0, &mut m);
        let a = d.access(1, DramRequestKind::DemandRead, 10_000, &mut m);
        assert!(a.row_hit);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn bus_serializes_back_to_back_requests() {
        let (mut d, mut m) = setup(150, 1); // very slow bus: 214 cycles/line
        let a1 = d.access(0, DramRequestKind::DemandRead, 0, &mut m);
        let a2 = d.access(1, DramRequestKind::DemandRead, 0, &mut m);
        // Second transfer must wait for the first to release the bus.
        assert!(a2.done_at >= a1.done_at + d.transfer_cycles());
    }

    #[test]
    fn channels_interleave_by_line() {
        let (mut d, mut m) = setup(2400, 2);
        let a1 = d.access(0, DramRequestKind::DemandRead, 0, &mut m);
        let a2 = d.access(1, DramRequestKind::DemandRead, 0, &mut m);
        // Different channels: both complete at the unloaded latency.
        assert_eq!(a1.done_at, a2.done_at);
    }

    #[test]
    fn request_kinds_counted_separately() {
        let (mut d, mut m) = setup(2400, 1);
        d.access(0, DramRequestKind::DemandRead, 0, &mut m);
        d.access(64, DramRequestKind::PrefetchRead, 0, &mut m);
        d.access(128, DramRequestKind::Write, 0, &mut m);
        assert_eq!(d.stats().demand_reads, 1);
        assert_eq!(d.stats().prefetch_reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().total_reads(), 2);
    }

    #[test]
    fn monitor_reports_high_under_saturation() {
        let (mut d, mut m) = setup(150, 1);
        // Saturate: issue many lines within a few windows.
        for i in 0..64u64 {
            d.access(i, DramRequestKind::DemandRead, i * 10, &mut m);
        }
        m.advance(1_000_000);
        // With a 214-cycle transfer and requests every 10 cycles the early
        // windows are fully busy.
        assert!(m.bucket_windows()[3] > 0, "expected saturated windows");
    }

    #[test]
    fn monitor_reports_low_when_idle() {
        let (mut d, mut m) = setup(2400, 1);
        d.access(0, DramRequestKind::DemandRead, 0, &mut m);
        m.advance(100 * 1024);
        assert!(!m.is_high());
        assert_eq!(m.utilization_pct(), 0);
    }

    #[test]
    fn monitor_threshold_behaviour() {
        let mut m = BandwidthMonitor::new(100, 1, 50);
        m.record(0, 60); // 60% busy in first window
        m.advance(100);
        assert_eq!(m.utilization_pct(), 60);
        assert!(m.is_high());
        m.advance(300); // two idle windows
        assert!(!m.is_high());
    }

    #[test]
    fn bank_level_parallelism_overlaps() {
        let (mut d, mut m) = setup(9600, 1);
        // Distinct rows map to distinct banks (row % banks): rows 0 and 1.
        let row_lines = 2048 / 64;
        let a1 = d.access(0, DramRequestKind::DemandRead, 0, &mut m);
        let a2 = d.access(row_lines, DramRequestKind::DemandRead, 0, &mut m);
        // Bank array times overlap; only the bus serializes, so the second
        // access finishes well before 2x the unloaded latency.
        assert!(a2.done_at < a1.done_at + d.unloaded_row_miss_latency());
    }
}
