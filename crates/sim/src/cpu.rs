//! Out-of-order core timing model.
//!
//! The model is occupancy-based rather than μop-scheduled: a 4-wide
//! front-end streams instructions into a 256-entry ROB; loads and stores
//! additionally occupy LQ/SQ slots; retirement is in order at the core
//! width. Memory latency (supplied by the cache hierarchy) delays the
//! completion of loads, and a full ROB/LQ/SQ back-pressures the front-end —
//! exactly the mechanism by which prefetching (hiding load latency) shows up
//! as IPC in a trace-driven simulator. A mispredicted branch inserts the
//! 20-cycle front-end bubble of Table 5.

use crate::config::CoreConfig;
use crate::stats::CoreStats;

/// ROB entries are packed into one word — completion cycle in the high
/// bits, load/store flags in the low two — and kept in a power-of-two
/// ring buffer. One ROB push and (usually) one retire pop run per
/// simulated instruction, so this layout is sized to the hottest loop of
/// the core model.
const ROB_IS_LOAD: u64 = 1;
const ROB_IS_STORE: u64 = 2;

#[derive(Debug)]
struct Rob {
    buf: Vec<u64>,
    mask: usize,
    head: usize,
    tail: usize,
}

impl Rob {
    fn new(capacity: usize) -> Self {
        // One slot of slack: occupancy can reach `capacity` after a push,
        // and a full ring (head == tail) would read as empty.
        let size = (capacity + 1).next_power_of_two().max(2);
        Self {
            buf: vec![0; size],
            mask: size - 1,
            head: 0,
            tail: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.tail.wrapping_sub(self.head)
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    #[inline]
    fn push(&mut self, packed: u64) {
        self.buf[self.tail & self.mask] = packed;
        self.tail = self.tail.wrapping_add(1);
    }

    #[inline]
    fn pop(&mut self) -> u64 {
        debug_assert!(!self.is_empty(), "retire from empty ROB");
        let v = self.buf[self.head & self.mask];
        self.head = self.head.wrapping_add(1);
        v
    }
}

/// The per-core timing model.
#[derive(Debug)]
pub struct CoreModel {
    config: CoreConfig,
    rob: Rob,
    loads_in_flight: usize,
    stores_in_flight: usize,
    /// Cycle at which the front-end can dispatch the next instruction.
    fetch_cycle: u64,
    /// Sub-cycle dispatch slots used at `fetch_cycle`.
    fetch_slots_used: u32,
    /// Cycle of the most recent in-order retirement.
    retire_cycle: u64,
    /// Retire slots already used at `retire_cycle`.
    retire_slots_used: u32,
    /// Completion time of the most recent load (for dependent loads).
    last_load_completion: u64,
    stats: CoreStats,
}

impl CoreModel {
    /// Creates a core model.
    pub fn new(config: CoreConfig) -> Self {
        Self {
            config,
            rob: Rob::new(config.rob_entries),
            loads_in_flight: 0,
            stores_in_flight: 0,
            fetch_cycle: 0,
            fetch_slots_used: 0,
            retire_cycle: 0,
            retire_slots_used: 0,
            last_load_completion: 0,
            stats: CoreStats::default(),
        }
    }

    /// Current cycle as seen by the front-end: the next instruction will
    /// dispatch no earlier than this.
    pub fn now(&self) -> u64 {
        self.fetch_cycle
    }

    /// Instructions retired so far (warmup + measurement).
    pub fn retired(&self) -> u64 {
        self.stats.instructions
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Resets statistics, keeping pipeline state (between warmup and
    /// measurement). The cycle counter baseline is captured by the caller.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    /// Records the elapsed-cycle count into the stats snapshot.
    pub fn set_measured_cycles(&mut self, cycles: u64) {
        self.stats.cycles = cycles;
    }

    fn retire_one(&mut self) {
        let head = self.rob.pop();
        let completion = head >> 2;
        if self.retire_slots_used >= self.config.width {
            self.retire_cycle += 1;
            self.retire_slots_used = 0;
        }
        if completion > self.retire_cycle {
            self.retire_cycle = completion;
            self.retire_slots_used = 0;
        }
        self.retire_slots_used += 1;
        if head & ROB_IS_LOAD != 0 {
            self.loads_in_flight -= 1;
        }
        if head & ROB_IS_STORE != 0 {
            self.stores_in_flight -= 1;
        }
    }

    /// Dispatches one instruction whose execution completes `exec_latency`
    /// cycles after dispatch. Returns the cycle at which the instruction was
    /// dispatched (which is when its memory access, if any, is considered
    /// issued).
    ///
    /// `is_load`/`is_store` reserve LQ/SQ slots; `dependent_on_load` delays
    /// dispatch until the previous load completes (pointer chasing);
    /// `mispredicted_branch` inserts the front-end bubble after this
    /// instruction.
    pub fn dispatch(
        &mut self,
        exec_latency: u64,
        is_load: bool,
        is_store: bool,
        dependent_on_load: bool,
        mispredicted_branch: bool,
    ) -> u64 {
        // Structural hazards: ROB, LQ, SQ.
        while self.rob.len() >= self.config.rob_entries
            || (is_load && self.loads_in_flight >= self.config.lq_entries)
            || (is_store && self.stores_in_flight >= self.config.sq_entries)
        {
            // Wait until the head retires; front-end cannot be earlier than
            // the retirement that freed the slot.
            self.retire_one();
            if self.fetch_cycle < self.retire_cycle {
                self.fetch_cycle = self.retire_cycle;
                self.fetch_slots_used = 0;
            }
        }

        // Dependent loads stall dispatch on the previous load's completion.
        if dependent_on_load && self.last_load_completion > self.fetch_cycle {
            self.fetch_cycle = self.last_load_completion;
            self.fetch_slots_used = 0;
        }

        let dispatch_at = self.fetch_cycle;
        let completion = dispatch_at + exec_latency;
        self.rob.push(
            (completion << 2)
                | (u64::from(is_load) * ROB_IS_LOAD)
                | (u64::from(is_store) * ROB_IS_STORE),
        );
        if is_load {
            self.loads_in_flight += 1;
            self.last_load_completion = completion;
            self.stats.loads += 1;
        }
        if is_store {
            self.stores_in_flight += 1;
            self.stats.stores += 1;
        }
        self.stats.instructions += 1;

        // Front-end advances 1/width per instruction.
        self.fetch_slots_used += 1;
        if self.fetch_slots_used >= self.config.width {
            self.fetch_cycle += 1;
            self.fetch_slots_used = 0;
        }
        if mispredicted_branch {
            self.fetch_cycle += self.config.mispredict_penalty;
            self.fetch_slots_used = 0;
        }
        dispatch_at
    }

    /// Records a branch in the statistics.
    pub fn record_branch(&mut self, mispredicted: bool) {
        self.stats.branches += 1;
        if mispredicted {
            self.stats.branch_mispredicts += 1;
        }
    }

    /// Drains the ROB and returns the cycle at which the last instruction
    /// retired — the end-of-run timestamp.
    pub fn drain(&mut self) -> u64 {
        while !self.rob.is_empty() {
            self.retire_one();
        }
        self.retire_cycle.max(self.fetch_cycle)
    }

    /// Returns the retirement timestamp without draining (a lower bound on
    /// the end-of-run cycle while instructions remain in flight).
    pub fn retire_timestamp(&self) -> u64 {
        self.retire_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreModel {
        CoreModel::new(CoreConfig::default())
    }

    #[test]
    fn ideal_ipc_equals_width() {
        let mut c = core();
        for _ in 0..4000 {
            c.dispatch(1, false, false, false, false);
        }
        let end = c.drain();
        // 4000 instructions at width 4 should take ~1000 cycles.
        assert!((950..=1100).contains(&end), "end={end}");
    }

    #[test]
    fn long_latency_load_blocks_retirement_when_rob_fills() {
        let mut c = core();
        // One 10_000-cycle load followed by enough cheap instructions to
        // fill the ROB: the front-end must stall on ROB occupancy.
        c.dispatch(10_000, true, false, false, false);
        for _ in 0..400 {
            c.dispatch(1, false, false, false, false);
        }
        let end = c.drain();
        assert!(end >= 10_000, "ROB should have back-pressured; end={end}");
    }

    #[test]
    fn independent_loads_overlap() {
        let mut c = core();
        // 8 independent 100-cycle loads fit in the ROB simultaneously.
        for _ in 0..8 {
            c.dispatch(100, true, false, false, false);
        }
        let end = c.drain();
        assert!(end < 8 * 100, "independent loads should overlap; end={end}");
    }

    #[test]
    fn dependent_loads_serialize() {
        let mut c = core();
        for _ in 0..8 {
            c.dispatch(100, true, false, true, false);
        }
        let end = c.drain();
        assert!(end >= 700, "dependent loads must serialize; end={end}");
    }

    #[test]
    fn mispredict_inserts_bubble() {
        let mut c1 = core();
        let mut c2 = core();
        for _ in 0..100 {
            c1.dispatch(1, false, false, false, false);
            c2.dispatch(1, false, false, false, true);
        }
        assert!(
            c2.drain() > c1.drain() + 100 * 19,
            "each mispredict costs ~20 cycles"
        );
    }

    #[test]
    fn lq_limit_restricts_outstanding_loads() {
        let cfg = CoreConfig {
            lq_entries: 2,
            ..CoreConfig::default()
        };
        let mut c = CoreModel::new(cfg);
        for _ in 0..4 {
            c.dispatch(100, true, false, false, false);
        }
        // With LQ=2 the 3rd load waits for the 1st: total > 200.
        let end = c.drain();
        assert!(end >= 200, "LQ should serialize loads; end={end}");
    }

    #[test]
    fn stats_count_instruction_classes() {
        let mut c = core();
        c.dispatch(1, true, false, false, false);
        c.dispatch(1, false, true, false, false);
        c.record_branch(true);
        c.record_branch(false);
        assert_eq!(c.stats().loads, 1);
        assert_eq!(c.stats().stores, 1);
        assert_eq!(c.stats().branches, 2);
        assert_eq!(c.stats().branch_mispredicts, 1);
        assert_eq!(c.retired(), 2);
    }

    #[test]
    fn reset_stats_keeps_timing_state() {
        let mut c = core();
        for _ in 0..100 {
            c.dispatch(1, false, false, false, false);
        }
        let t = c.now();
        c.reset_stats();
        assert_eq!(c.retired(), 0);
        assert_eq!(c.now(), t);
    }
}
