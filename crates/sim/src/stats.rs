//! Simulation statistics: per-cache, per-core, DRAM, and the top-level
//! [`SimReport`] consumed by `pythia-stats` to compute the paper's metrics
//! (IPC speedup, prefetch coverage, overprediction — Appendix A.6).

use serde::{Deserialize, Serialize};

/// Counters for one cache level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand loads observed by this cache.
    pub demand_loads: u64,
    /// Demand load hits.
    pub demand_load_hits: u64,
    /// Demand load misses.
    pub demand_load_misses: u64,
    /// Demand stores (RFOs) observed.
    pub demand_stores: u64,
    /// Demand store hits.
    pub demand_store_hits: u64,
    /// Demand store misses.
    pub demand_store_misses: u64,
    /// Lines filled because of a prefetch request.
    pub prefetch_fills: u64,
    /// Prefetch requests that found the line already present (dropped).
    pub prefetch_redundant: u64,
    /// Prefetched lines that were later demanded (counted once per fill).
    pub useful_prefetches: u64,
    /// Prefetched lines evicted without ever being demanded.
    pub useless_prefetches: u64,
    /// Demand accesses that hit a prefetched line still in flight
    /// (accurate-but-late prefetches).
    pub late_prefetch_hits: u64,
    /// Extra cycles spent waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Number of accesses that had to wait for an MSHR.
    pub mshr_stalls: u64,
    /// Evictions of dirty lines (generate writebacks).
    pub dirty_evictions: u64,
    /// Total evictions of valid lines.
    pub evictions: u64,
}

impl CacheStats {
    /// Total demand accesses (loads + stores).
    pub fn demand_accesses(&self) -> u64 {
        self.demand_loads + self.demand_stores
    }

    /// Total demand misses (loads + stores).
    pub fn demand_misses(&self) -> u64 {
        self.demand_load_misses + self.demand_store_misses
    }

    /// Demand load hit ratio in `[0, 1]`; zero when no loads were observed.
    pub fn load_hit_ratio(&self) -> f64 {
        if self.demand_loads == 0 {
            0.0
        } else {
            self.demand_load_hits as f64 / self.demand_loads as f64
        }
    }
}

/// Counters for the DRAM subsystem.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Reads triggered by demand misses.
    pub demand_reads: u64,
    /// Reads triggered by prefetch requests.
    pub prefetch_reads: u64,
    /// Writebacks of dirty lines.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (precharge + activate needed).
    pub row_misses: u64,
    /// Cycles the data bus was busy transferring lines, summed over channels.
    pub bus_busy_cycles: u64,
    /// Histogram of time spent in bandwidth-utilization buckets
    /// `[<25%, 25–50%, 50–75%, >=75%]` of peak, in monitor windows (Fig. 14).
    pub bw_bucket_windows: [u64; 4],
}

impl DramStats {
    /// Total read requests reaching DRAM (the denominator/numerator of the
    /// overprediction metric is built from these).
    pub fn total_reads(&self) -> u64 {
        self.demand_reads + self.prefetch_reads
    }

    /// Fraction of monitor windows spent at or above 50% of peak bandwidth.
    pub fn high_bw_fraction(&self) -> f64 {
        let total: u64 = self.bw_bucket_windows.iter().sum();
        if total == 0 {
            0.0
        } else {
            (self.bw_bucket_windows[2] + self.bw_bucket_windows[3]) as f64 / total as f64
        }
    }
}

/// Counters for one core.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired during the measured phase.
    pub instructions: u64,
    /// Cycles elapsed during the measured phase.
    pub cycles: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
}

impl CoreStats {
    /// Instructions per cycle; zero when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per kilo-instruction needs the LLC stats; kept in
    /// [`SimReport::llc_mpki`].
    pub fn mpki(&self, misses: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Counters reported by a prefetcher implementation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetcherStats {
    /// Prefetch requests the prefetcher emitted.
    pub issued: u64,
    /// Requests dropped because the line was already cached.
    pub redundant: u64,
    /// Prefetches later demanded by the core (useful).
    pub useful: u64,
    /// Prefetches evicted unused (overpredictions at the prefetcher level).
    pub useless: u64,
}

impl PrefetcherStats {
    /// Accuracy = useful / (useful + useless); zero when nothing resolved.
    pub fn accuracy(&self) -> f64 {
        let resolved = self.useful + self.useless;
        if resolved == 0 {
            0.0
        } else {
            self.useful as f64 / resolved as f64
        }
    }
}

/// Simulation throughput telemetry: simulated instructions per wall-clock
/// second, the perf-trajectory line tracked in `BENCH_*.json`.
///
/// Deliberately **not** part of [`SimReport`]: reports are
/// bit-deterministic (same inputs ⇒ byte-identical report) while wall
/// time varies run to run, so throughput travels alongside reports — e.g.
/// `pythia_sweep::SweepResult::throughput` — and is excluded from every
/// determinism-pinned comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Simulated instructions covered by this measurement (warmup +
    /// measured phases, summed over cores and runs).
    pub instructions: u64,
    /// Wall-clock seconds those instructions took to simulate.
    pub wall_seconds: f64,
}

impl Throughput {
    /// A measurement from raw parts.
    pub fn new(instructions: u64, wall_seconds: f64) -> Self {
        Self {
            instructions,
            wall_seconds,
        }
    }

    /// Million simulated instructions per wall-clock second (0 when no
    /// time elapsed).
    pub fn minst_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.wall_seconds / 1e6
        }
    }

    /// Merges two measurements (instructions and wall time add — the
    /// batches ran one after the other).
    pub fn merged(self, other: Self) -> Self {
        Self {
            instructions: self.instructions + other.instructions,
            wall_seconds: self.wall_seconds + other.wall_seconds,
        }
    }
}

/// The full result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-core retirement statistics.
    pub cores: Vec<CoreStats>,
    /// Per-core L1D statistics.
    pub l1d: Vec<CacheStats>,
    /// Per-core L2 statistics.
    pub l2: Vec<CacheStats>,
    /// Shared LLC statistics.
    pub llc: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Per-core prefetcher statistics.
    pub prefetchers: Vec<PrefetcherStats>,
}

impl SimReport {
    /// Geometric-mean IPC across cores.
    pub fn geomean_ipc(&self) -> f64 {
        let n = self.cores.len();
        if n == 0 {
            return 0.0;
        }
        let log_sum: f64 = self.cores.iter().map(|c| c.ipc().max(1e-12).ln()).sum();
        (log_sum / n as f64).exp()
    }

    /// LLC demand-load misses per kilo-instruction, aggregated over cores.
    pub fn llc_mpki(&self) -> f64 {
        let instrs: u64 = self.cores.iter().map(|c| c.instructions).sum();
        if instrs == 0 {
            0.0
        } else {
            self.llc.demand_load_misses as f64 * 1000.0 / instrs as f64
        }
    }

    /// Total prefetches issued across cores.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetchers.iter().map(|p| p.issued).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let c = CoreStats::default();
        assert_eq!(c.ipc(), 0.0);
        let c = CoreStats {
            instructions: 100,
            cycles: 50,
            ..Default::default()
        };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_bounds() {
        let s = CacheStats {
            demand_loads: 10,
            demand_load_hits: 7,
            ..Default::default()
        };
        assert!((s.load_hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(CacheStats::default().load_hit_ratio(), 0.0);
    }

    #[test]
    fn prefetcher_accuracy() {
        let p = PrefetcherStats {
            useful: 3,
            useless: 1,
            ..Default::default()
        };
        assert!((p.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(PrefetcherStats::default().accuracy(), 0.0);
    }

    #[test]
    fn geomean_ipc_of_identical_cores() {
        let core = CoreStats {
            instructions: 1000,
            cycles: 2000,
            ..Default::default()
        };
        let report = SimReport {
            cores: vec![core; 4],
            l1d: vec![],
            l2: vec![],
            llc: CacheStats::default(),
            dram: DramStats::default(),
            prefetchers: vec![],
        };
        assert!((report.geomean_ipc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mpki_computation() {
        let c = CoreStats {
            instructions: 1_000_000,
            ..Default::default()
        };
        assert!((c.mpki(3000) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn high_bw_fraction() {
        let d = DramStats {
            bw_bucket_windows: [1, 1, 1, 1],
            ..Default::default()
        };
        assert!((d.high_bw_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(DramStats::default().high_bw_fraction(), 0.0);
    }
}
