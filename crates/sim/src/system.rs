//! System assembly and the simulation driver.
//!
//! A [`System`] holds 1–12 cores (each with a private L1D and L2, its own
//! trace, and its own prefetcher instance), a shared LLC, and the DRAM
//! subsystem. [`System::run`] executes the paper's methodology (§5): a
//! warmup phase with statistics frozen, a statistics reset, then a measured
//! phase; cores that exhaust their trace replay it until every core retires
//! its measured-instruction budget.
//!
//! # Data flow per retired memory instruction
//!
//! ```text
//! trace record → core model (ROB/LQ/SQ timing) → L1D → L2 ──→ LLC → DRAM
//!                                                      │
//!                                  prefetcher.on_demand_into(..) at the L2
//!                                  (L1-miss stream, §5.2); returned
//!                                  requests fill into L2 + LLC and
//!                                  are charged to the DRAM bus
//! ```
//!
//! The DRAM [`BandwidthMonitor`] samples bus occupancy in fixed windows
//! and exposes the bucketed usage through [`SystemFeedback`] — the signal
//! Pythia's reward scheme consumes. Every structure is deterministic: the
//! same traces, configuration and prefetcher seeds produce a bit-identical
//! [`SimReport`] (pinned by `tests/determinism.rs` and relied upon by the
//! sweep engine's parallel==serial guarantee).
//!
//! Construction: [`System::new`] runs prefetcher-less; attach per-core
//! prefetchers with [`System::with_prefetchers`] (a factory keyed by core
//! index) or [`System::set_prefetcher`].

use crate::addr;
use crate::cache::{AccessKind, Cache, Lookup};
use crate::config::SystemConfig;
use crate::cpu::CoreModel;
use crate::dram::{BandwidthMonitor, Dram, DramRequestKind};
use crate::prefetch::{
    DemandAccess, FillEvent, NoPrefetcher, PrefetchRequest, Prefetcher, SystemFeedback,
};
use crate::stats::{CacheStats, CoreStats, PrefetcherStats, SimReport};
use crate::trace::{TraceRecord, TraceSource};
use pythia_obs::window::WindowRecorder;
pub use pythia_obs::window::WindowRow;

/// Records pulled from a core's [`TraceSource`] per refill: large enough
/// to amortize the virtual `next_batch` dispatch, small enough that the
/// buffer stays in L1.
const RECORD_BATCH: usize = 64;

struct CoreUnit {
    model: CoreModel,
    l1d: Cache,
    l2: Cache,
    prefetcher: Box<dyn Prefetcher>,
    source: Box<dyn TraceSource>,
    /// Buffered trace records ([`RECORD_BATCH`] per refill) with a read
    /// cursor: the steady-state record fetch is an array read, not a
    /// virtual call.
    records: Vec<TraceRecord>,
    records_pos: usize,
    measure_start_cycle: u64,
    finished: bool,
    final_stats: Option<CoreStats>,
}

impl CoreUnit {
    /// The next trace record, wrapping the source at end of pass (the
    /// paper's replay methodology — cores wrap until their budget
    /// retires). Records are pulled through the per-core buffer; the
    /// buffered stream is record-for-record identical to calling
    /// `source.next_record()` directly.
    #[inline]
    fn next_record(&mut self) -> TraceRecord {
        if self.records_pos == self.records.len() {
            self.refill_records();
        }
        let r = self.records[self.records_pos];
        self.records_pos += 1;
        r
    }

    #[cold]
    fn refill_records(&mut self) {
        self.records.clear();
        self.records_pos = 0;
        if self.source.next_batch(&mut self.records, RECORD_BATCH) == 0 {
            // End of pass exactly at the buffer boundary: wrap.
            self.source.reset();
            let got = self.source.next_batch(&mut self.records, RECORD_BATCH);
            assert!(got > 0, "trace source must yield at least one record");
        }
    }
}

/// Per-core telemetry state: a window recorder plus the stat snapshot at
/// the previous window boundary, so each closed window reports *deltas*
/// over its own instruction span. Strictly an observer — it only reads
/// counters the simulator already maintains, so enabling telemetry cannot
/// perturb the simulation (`tests/telemetry.rs` pins reports byte-identical
/// with telemetry on vs. off).
struct CoreTelemetry {
    recorder: WindowRecorder,
    last_instructions: u64,
    last_cycles: u64,
    last_l2: CacheStats,
    last_pf: PrefetcherStats,
    /// Set once the final (possibly partial) window has been flushed at
    /// core completion; later contention-only steps are ignored.
    done: bool,
}

impl CoreTelemetry {
    fn new(width: u64) -> Self {
        Self {
            recorder: WindowRecorder::new(width),
            last_instructions: 0,
            last_cycles: 0,
            last_l2: CacheStats::default(),
            last_pf: PrefetcherStats::default(),
            done: false,
        }
    }
}

/// Reusable per-access scratch buffers, threaded through
/// [`System::step_core`] → `access_hierarchy` so the per-access hot path
/// performs no heap allocation in steady state. One set per system is
/// enough: a system steps exactly one core at a time.
#[derive(Debug, Default)]
struct AccessCtx {
    /// Prefetch requests emitted by the prefetcher for one demand.
    requests: Vec<PrefetchRequest>,
    /// Lines whose prefetches this demand proved useful.
    useful_lines: Vec<u64>,
}

/// A complete simulated system.
pub struct System {
    config: SystemConfig,
    cores: Vec<CoreUnit>,
    llc: Cache,
    dram: Dram,
    monitor: BandwidthMonitor,
    scratch: AccessCtx,
    /// Opt-in windowed telemetry (one recorder per core); `None` costs a
    /// single branch per measured step.
    telemetry: Option<Vec<CoreTelemetry>>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("llc", &self.llc.name())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system running one trace source per core with no
    /// prefetching. Sources are pulled on demand — the system never holds
    /// a materialized trace, so peak memory is independent of trace
    /// length. Wrap an in-memory trace with
    /// [`VecSource`](crate::trace::VecSource) when needed.
    ///
    /// # Panics
    ///
    /// Panics if the number of sources does not match `config.cores`.
    /// A source that yields no records at all panics when first stepped.
    pub fn new(config: SystemConfig, sources: Vec<Box<dyn TraceSource>>) -> Self {
        assert_eq!(
            sources.len(),
            config.cores,
            "need exactly one trace per core ({} cores, {} sources)",
            config.cores,
            sources.len()
        );
        let cores = sources
            .into_iter()
            .map(|source| CoreUnit {
                model: CoreModel::new(config.core),
                l1d: Cache::new("L1D", &config.l1d),
                l2: Cache::new("L2", &config.l2),
                prefetcher: Box::new(NoPrefetcher::new()),
                source,
                records: Vec::with_capacity(RECORD_BATCH),
                records_pos: 0,
                measure_start_cycle: 0,
                finished: false,
                final_stats: None,
            })
            .collect();
        Self {
            cores,
            llc: Cache::new("LLC", &config.llc),
            dram: Dram::new(&config.dram),
            monitor: BandwidthMonitor::new(
                config.bandwidth_window_cycles,
                config.dram.channels,
                config.bandwidth_high_pct,
            ),
            scratch: AccessCtx::default(),
            telemetry: None,
            config,
        }
    }

    /// Installs the same prefetcher (built per core by `factory`) on every
    /// core. Prefetchers sit at the L2, trained on the L1 miss stream.
    pub fn with_prefetchers(
        config: SystemConfig,
        sources: Vec<Box<dyn TraceSource>>,
        factory: impl Fn(usize) -> Box<dyn Prefetcher>,
    ) -> Self {
        let mut sys = Self::new(config, sources);
        for (i, core) in sys.cores.iter_mut().enumerate() {
            core.prefetcher = factory(i);
        }
        sys
    }

    /// Replaces the prefetcher on one core.
    pub fn set_prefetcher(&mut self, core: usize, prefetcher: Box<dyn Prefetcher>) {
        self.cores[core].prefetcher = prefetcher;
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Enables windowed telemetry: during the measured phase each core
    /// closes one [`WindowRow`] every `window_width` retired instructions
    /// (plus a final partial window at completion) capturing per-window
    /// IPC, L2 hit ratio, prefetch coverage/accuracy/overprediction, and —
    /// for learning prefetchers — Q-value spread and EQ occupancy via
    /// [`Prefetcher::telemetry_probe`]. The sink is strictly read-only:
    /// the [`SimReport`] is byte-identical with telemetry on or off.
    pub fn enable_telemetry(&mut self, window_width: u64) {
        self.telemetry = Some(
            self.cores
                .iter()
                .map(|_| CoreTelemetry::new(window_width))
                .collect(),
        );
    }

    /// Takes the telemetry rows accumulated by the last [`System::run`],
    /// one `Vec<WindowRow>` per core, disabling telemetry in the process.
    /// Returns `None` if telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<Vec<Vec<WindowRow>>> {
        self.telemetry
            .take()
            .map(|ts| ts.into_iter().map(|t| t.recorder.into_rows()).collect())
    }

    /// Rearms telemetry for a fresh measured phase, preserving the
    /// configured window width.
    fn reset_telemetry(&mut self) {
        if let Some(ts) = self.telemetry.as_mut() {
            for t in ts.iter_mut() {
                *t = CoreTelemetry::new(t.recorder.width());
            }
        }
    }

    /// Telemetry hook, called once per measured step of core `idx`. Closes
    /// a window when the core crosses a window boundary, and flushes the
    /// final partial window when the core retires its measured budget.
    /// Reads simulator state only; never mutates it.
    fn poll_telemetry(&mut self, idx: usize) {
        let Some(ts) = self.telemetry.as_mut() else {
            return;
        };
        let core = &self.cores[idx];
        let t = &mut ts[idx];
        if t.done {
            return;
        }
        let retired = core.model.retired();
        let boundary = t.recorder.due(retired);
        if !boundary && !core.finished {
            return;
        }
        // Deltas since the previous window boundary.
        let cycles = core.model.now() - core.measure_start_cycle;
        let l2 = *core.l2.stats();
        let pf = core.prefetcher.stats();
        let d_instr = retired - t.last_instructions;
        let d_cycles = cycles.saturating_sub(t.last_cycles);
        let d_accesses = l2.demand_accesses() - t.last_l2.demand_accesses();
        let d_hits = (l2.demand_load_hits + l2.demand_store_hits)
            - (t.last_l2.demand_load_hits + t.last_l2.demand_store_hits);
        let d_misses = l2.demand_misses() - t.last_l2.demand_misses();
        let d_issued = pf.issued - t.last_pf.issued;
        let d_useful = pf.useful - t.last_pf.useful;
        let d_useless = pf.useless - t.last_pf.useless;
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let probe = core.prefetcher.telemetry_probe();
        let (q_min, q_mean, q_max, eq_occupancy) = match probe {
            Some(p) => (
                p.q_min as f64,
                p.q_mean as f64,
                p.q_max as f64,
                if p.eq_capacity == 0 {
                    0.0
                } else {
                    p.eq_len as f64 / p.eq_capacity as f64
                },
            ),
            None => (0.0, 0.0, 0.0, 0.0),
        };
        t.recorder.close(
            retired,
            vec![
                ("instructions", d_instr as f64),
                ("cycles", d_cycles as f64),
                ("ipc", ratio(d_instr, d_cycles)),
                ("l2_hit_ratio", ratio(d_hits, d_accesses)),
                ("coverage", ratio(d_useful, d_useful + d_misses)),
                ("accuracy", ratio(d_useful, d_issued)),
                ("overprediction", ratio(d_useless, d_issued)),
                ("q_min", q_min),
                ("q_mean", q_mean),
                ("q_max", q_max),
                ("eq_occupancy", eq_occupancy),
            ],
        );
        t.last_instructions = retired;
        t.last_cycles = cycles;
        t.last_l2 = l2;
        t.last_pf = pf;
        if core.finished {
            t.done = true;
        }
    }

    fn feedback(&self) -> SystemFeedback {
        SystemFeedback {
            bandwidth_high: self.monitor.is_high(),
            bandwidth_utilization_pct: self.monitor.utilization_pct(),
        }
    }

    /// Executes one instruction on core `idx`.
    fn step_core(&mut self, idx: usize) {
        let record = self.cores[idx].next_record();

        if let Some(branch) = record.branch {
            self.cores[idx].model.record_branch(branch.mispredicted);
        }

        match record.mem {
            None => {
                let mispredict = record.branch.is_some_and(|b| b.mispredicted);
                self.cores[idx]
                    .model
                    .dispatch(1, false, false, false, mispredict);
            }
            Some(mem) => {
                let is_write = mem.is_write;
                // Reserve the ROB/LQ/SQ slot first to learn the dispatch
                // cycle; memory latency is then attached to the entry by
                // dispatching with the hierarchy-provided latency. We peek
                // the dispatch cycle using the model's `now`, which is exact
                // unless a structural hazard stalls dispatch; hazards advance
                // time, so we dispatch first with latency 0 resolved after.
                //
                // To keep the model simple and deterministic we instead
                // compute the latency at the core's current front-end time
                // and then dispatch with it; structural stalls only push the
                // access later, which slightly under-estimates queueing --
                // consistently for all prefetchers.
                let cycle = self.cores[idx].model.now();
                let latency = self.access_hierarchy(idx, record.pc, mem.addr, is_write, cycle);
                let exec_latency = if is_write { 1 } else { latency };
                let mispredict = record.branch.is_some_and(|b| b.mispredicted);
                self.cores[idx].model.dispatch(
                    exec_latency,
                    !is_write,
                    is_write,
                    record.depends_on_prev_load,
                    mispredict,
                );
            }
        }
    }

    /// Performs a demand access through the hierarchy, returning its latency
    /// in cycles. Invokes the prefetcher on L1 misses and issues its
    /// requests.
    fn access_hierarchy(
        &mut self,
        idx: usize,
        pc: u64,
        byte_addr: u64,
        is_write: bool,
        cycle: u64,
    ) -> u64 {
        let line = addr::line_of(byte_addr);
        let kind = if is_write {
            AccessKind::DemandStore
        } else {
            AccessKind::DemandLoad
        };
        let pc_sig = ship_signature(pc);
        self.monitor.advance(cycle);

        // ---- L1 ----
        let core = &mut self.cores[idx];
        if let Lookup::Hit { ready_at, .. } = core.l1d.access(line, kind, cycle) {
            let data_ready = ready_at.max(cycle + core.l1d.latency());
            return data_ready - cycle;
        }

        // L1 miss: this is the prefetcher's training event (L2 demand).
        let l1_latency = core.l1d.latency();
        let l2_latency = core.l2.latency();
        let l2_lookup = core.l2.access(line, kind, cycle);
        let mut useful_lines = std::mem::take(&mut self.scratch.useful_lines);
        useful_lines.clear();
        let mut l2_filled = false;

        let data_ready = match l2_lookup {
            Lookup::Hit {
                ready_at,
                was_prefetched,
            } => {
                if was_prefetched {
                    useful_lines.push(line);
                }
                ready_at.max(cycle + l1_latency + l2_latency)
            }
            Lookup::Miss => {
                let llc_latency = self.llc.latency();
                match self.llc.access(line, kind, cycle) {
                    Lookup::Hit {
                        ready_at,
                        was_prefetched,
                    } => {
                        if was_prefetched {
                            useful_lines.push(line);
                        }
                        ready_at.max(cycle + l1_latency + l2_latency + llc_latency)
                    }
                    Lookup::Miss => {
                        // ---- DRAM demand read ----
                        let access = self.dram.access(
                            line,
                            DramRequestKind::DemandRead,
                            cycle,
                            &mut self.monitor,
                        );
                        let mut done = access.done_at + llc_latency;
                        // MSHR pressure at LLC and L2.
                        done += self.llc.mshr_mut().allocate(cycle, done);
                        let core = &mut self.cores[idx];
                        done += core.l2.mshr_mut().allocate(cycle, done);
                        // Fill LLC and L2.
                        if let Some(ev) = self.llc.fill(line, done, kind, pc_sig) {
                            self.handle_llc_eviction(ev, cycle);
                        }
                        let core = &mut self.cores[idx];
                        l2_filled = true;
                        if let Some(ev) = core.l2.fill(line, done, kind, pc_sig) {
                            if ev.dirty {
                                self.writeback_to_llc(ev.line, cycle, pc_sig);
                            }
                        }
                        done + l1_latency
                    }
                }
            }
        };

        // Fill the L2 if the line came from the LLC (the DRAM branch above
        // already filled it; re-filling would only re-probe the set and
        // refresh `ready_at` with a strictly later time — a no-op).
        if matches!(l2_lookup, Lookup::Miss) && !l2_filled {
            let core = &mut self.cores[idx];
            if let Some(ev) = core.l2.fill(line, data_ready, kind, pc_sig) {
                if ev.dirty {
                    self.writeback_to_llc(ev.line, cycle, pc_sig);
                }
            }
        }

        // Fill L1; its dirty victims write back into L2.
        {
            let core = &mut self.cores[idx];
            let l1_wait = core.l1d.mshr_mut().allocate(cycle, data_ready);
            let data_ready = data_ready + l1_wait;
            if let Some(ev) = core.l1d.fill(line, data_ready, kind, pc_sig) {
                if ev.dirty {
                    match core.l2.access(ev.line, AccessKind::Writeback, cycle) {
                        Lookup::Hit { .. } => {}
                        Lookup::Miss => {
                            if let Some(l2_ev) = core.l2.fill(
                                ev.line,
                                cycle + l2_latency,
                                AccessKind::Writeback,
                                pc_sig,
                            ) {
                                if l2_ev.dirty {
                                    self.writeback_to_llc(l2_ev.line, cycle, pc_sig);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Notify the prefetcher of useful prefetches observed on this path
        // (one batched virtual call for the whole demand).
        if !useful_lines.is_empty() {
            self.cores[idx].prefetcher.on_useful_batch(&useful_lines);
        }
        self.scratch.useful_lines = useful_lines;

        // Train the prefetcher and issue its requests, through the reusable
        // scratch buffer (no per-access allocation).
        let feedback = self.feedback();
        let access = DemandAccess {
            pc,
            addr: byte_addr,
            line,
            is_write,
            cycle,
            missed: matches!(l2_lookup, Lookup::Miss),
        };
        let mut requests = std::mem::take(&mut self.scratch.requests);
        requests.clear();
        self.cores[idx]
            .prefetcher
            .on_demand_into(&access, &feedback, &mut requests);
        for req in requests.drain(..) {
            self.issue_prefetch(idx, req.line, req.fill_l2, pc_sig, cycle);
        }
        self.scratch.requests = requests;

        let l1_wait_adjusted = data_ready; // already includes waits
        l1_wait_adjusted - cycle
    }

    /// Issues a single prefetch request into the hierarchy.
    fn issue_prefetch(&mut self, idx: usize, line: u64, fill_l2: bool, pc_sig: u16, cycle: u64) {
        let core = &mut self.cores[idx];
        // Redundant if already in L2 (when targeting L2) or in LLC.
        if fill_l2 && core.l2.probe(line) {
            core.l2.access(line, AccessKind::Prefetch, cycle);
            return;
        }
        let llc_latency = self.llc.latency();
        if self.llc.probe(line) {
            self.llc.access(line, AccessKind::Prefetch, cycle);
            if fill_l2 {
                let ready = cycle + llc_latency;
                let core = &mut self.cores[idx];
                if let Some(ev) = core.l2.fill(line, ready, AccessKind::Prefetch, pc_sig) {
                    if ev.dirty {
                        self.writeback_to_llc(ev.line, cycle, pc_sig);
                    }
                }
                self.cores[idx].prefetcher.on_fill(&FillEvent {
                    line,
                    ready_at: ready,
                    prefetched: true,
                });
            }
            return;
        }
        // Goes to DRAM.
        let access = self.dram.access(
            line,
            DramRequestKind::PrefetchRead,
            cycle,
            &mut self.monitor,
        );
        let mut done = access.done_at + llc_latency;
        done += self.llc.mshr_mut().allocate(cycle, done);
        if let Some(ev) = self.llc.fill(line, done, AccessKind::Prefetch, pc_sig) {
            self.handle_llc_eviction(ev, cycle);
        }
        if fill_l2 {
            let core = &mut self.cores[idx];
            done += core.l2.mshr_mut().allocate(cycle, done);
            let unused = core.l2.fill(line, done, AccessKind::Prefetch, pc_sig);
            if let Some(ev) = unused {
                if ev.unused_prefetch {
                    core.prefetcher.on_useless(ev.line);
                }
                if ev.dirty {
                    self.writeback_to_llc(ev.line, cycle, pc_sig);
                }
            }
        }
        self.cores[idx].prefetcher.on_fill(&FillEvent {
            line,
            ready_at: done,
            prefetched: true,
        });
    }

    fn handle_llc_eviction(&mut self, ev: crate::cache::Eviction, cycle: u64) {
        if ev.dirty {
            self.dram
                .access(ev.line, DramRequestKind::Write, cycle, &mut self.monitor);
        }
        if ev.unused_prefetch {
            // Attribute to every core's prefetcher? The LLC is shared; we
            // notify all cores, and prefetchers ignore lines they never
            // issued. In single-core systems this is exact.
            for core in &mut self.cores {
                core.prefetcher.on_useless(ev.line);
            }
        }
    }

    fn writeback_to_llc(&mut self, line: u64, cycle: u64, pc_sig: u16) {
        match self.llc.access(line, AccessKind::Writeback, cycle) {
            Lookup::Hit { .. } => {}
            Lookup::Miss => {
                let llc_latency = self.llc.latency();
                if let Some(ev) = self
                    .llc
                    .fill(line, cycle + llc_latency, AccessKind::Writeback, 0)
                {
                    self.handle_llc_eviction(ev, cycle);
                }
                let _ = pc_sig;
            }
        }
    }

    fn reset_all_stats(&mut self) {
        for core in &mut self.cores {
            core.model.reset_stats();
            core.l1d.reset_stats();
            core.l2.reset_stats();
            core.prefetcher.reset_stats();
            core.measure_start_cycle = core.model.now();
            core.finished = false;
            core.final_stats = None;
        }
        self.llc.reset_stats();
        self.dram.reset_stats();
        self.monitor.reset_stats();
    }

    /// Index of the core with the smallest local clock (next to step).
    fn next_core(&self) -> usize {
        if self.cores.len() == 1 {
            return 0;
        }
        self.cores
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.model.now())
            .map(|(i, _)| i)
            .expect("at least one core")
    }

    /// The clocks core `idx` races against while it keeps the scheduling
    /// slot: the minimum over cores *before* it (which `idx` must stay
    /// strictly below — [`next_core`](System::next_core)'s `min_by_key`
    /// breaks ties toward the lowest index) and the minimum over cores
    /// *after* it (which `idx` only has to stay at or below).
    fn rival_clocks(&self, idx: usize) -> (u64, u64) {
        let min_now = |cores: &[CoreUnit]| {
            cores
                .iter()
                .map(|c| c.model.now())
                .min()
                .unwrap_or(u64::MAX)
        };
        (min_now(&self.cores[..idx]), min_now(&self.cores[idx + 1..]))
    }

    /// Runs `warmup` instructions per core with statistics frozen, then
    /// measures `measure` instructions per core, replaying traces as needed.
    ///
    /// Scheduling is slice-based but cycle-exact: instead of re-scanning
    /// every core clock per instruction, the chosen core keeps stepping
    /// while its clock provably keeps it the `min_by_key` winner (stepping
    /// a core only advances *its own* clock, so the rival minima are
    /// constants within a slice). The instruction interleaving — and hence
    /// the [`SimReport`] — is bit-identical to the per-instruction scan,
    /// while consecutive steps of one core amortize its agent dispatch,
    /// feature extraction and EQ probing across a hot slice.
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimReport {
        assert!(measure > 0, "measurement phase must be non-empty");
        // Warmup phase. A core past its warmup budget still takes steps
        // whenever it holds the slot, to preserve contention (its extra
        // instructions are warmup too).
        if warmup > 0 {
            while self.cores.iter().any(|c| c.model.retired() < warmup) {
                let idx = self.next_core();
                let (lo, hi) = self.rival_clocks(idx);
                // Only `idx`'s retired count moves within the slice, so
                // the phase-exit check reduces to `idx`'s own budget when
                // every other core is already done.
                let others_below = self
                    .cores
                    .iter()
                    .enumerate()
                    .any(|(j, c)| j != idx && c.model.retired() < warmup);
                loop {
                    self.step_core(idx);
                    let core = &self.cores[idx].model;
                    if !others_below && core.retired() >= warmup {
                        break;
                    }
                    let now = core.now();
                    if now >= lo || now > hi {
                        break;
                    }
                }
            }
        }
        self.reset_all_stats();
        self.reset_telemetry();

        // Measured phase.
        while self.cores.iter().any(|c| !c.finished) {
            let idx = self.next_core();
            let (lo, hi) = self.rival_clocks(idx);
            let others_unfinished = self
                .cores
                .iter()
                .enumerate()
                .any(|(j, c)| j != idx && !c.finished);
            loop {
                self.step_core(idx);
                let core = &mut self.cores[idx];
                if !core.finished && core.model.retired() >= measure {
                    core.finished = true;
                    let mut stats = *core.model.stats();
                    let end = core.model.now().max(core.model.retire_timestamp());
                    stats.cycles = end - core.measure_start_cycle;
                    core.final_stats = Some(stats);
                }
                if self.telemetry.is_some() {
                    self.poll_telemetry(idx);
                }
                let core = &self.cores[idx];
                if !others_unfinished && core.finished {
                    break;
                }
                let now = core.model.now();
                if now >= lo || now > hi {
                    break;
                }
            }
        }

        self.dram.store_bw_buckets(self.monitor.bucket_windows());
        SimReport {
            cores: self
                .cores
                .iter()
                .map(|c| c.final_stats.expect("core finished"))
                .collect(),
            l1d: self.cores.iter().map(|c| *c.l1d.stats()).collect(),
            l2: self.cores.iter().map(|c| *c.l2.stats()).collect(),
            llc: *self.llc.stats(),
            dram: *self.dram.stats(),
            prefetchers: self.cores.iter().map(|c| c.prefetcher.stats()).collect(),
        }
    }
}

/// 14-bit SHiP signature from a PC.
fn ship_signature(pc: u64) -> u16 {
    let x = pc ^ (pc >> 14) ^ (pc >> 28);
    (x & 0x3fff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::trace::{TraceRecord, VecSource};

    fn stream_trace(n: u64, base: u64) -> Box<dyn TraceSource> {
        VecSource::boxed(
            (0..n)
                .map(|i| TraceRecord::load(0x400000, base + i * 64))
                .collect(),
        )
    }

    #[test]
    fn single_core_runs_and_reports() {
        let mut sys = System::new(
            SystemConfig::single_core(),
            vec![stream_trace(20_000, 0x1000_0000)],
        );
        let report = sys.run(2_000, 10_000);
        assert_eq!(report.cores.len(), 1);
        assert_eq!(report.cores[0].instructions, 10_000);
        assert!(report.cores[0].cycles > 0);
        assert!(report.cores[0].ipc() > 0.0);
        // A pure load stream misses the LLC constantly.
        assert!(report.llc.demand_load_misses > 0);
        assert!(report.dram.demand_reads > 0);
    }

    #[test]
    fn telemetry_windows_cover_the_measured_phase() {
        let mut sys = System::new(
            SystemConfig::single_core(),
            vec![stream_trace(20_000, 0x1000_0000)],
        );
        sys.enable_telemetry(2_500);
        let report = sys.run(2_000, 10_000);
        let rows = sys.take_telemetry().expect("telemetry enabled");
        assert_eq!(rows.len(), 1);
        let core_rows = &rows[0];
        // 10_000 instructions / 2_500 per window = 4 full windows.
        assert_eq!(core_rows.len(), 4);
        let total: f64 = core_rows
            .iter()
            .map(|r| {
                r.fields
                    .iter()
                    .find(|(k, _)| *k == "instructions")
                    .unwrap()
                    .1
            })
            .sum();
        assert_eq!(total as u64, report.cores[0].instructions);
        assert_eq!(core_rows.last().unwrap().at, 10_000);
        // A second take returns None (telemetry consumed).
        assert!(sys.take_telemetry().is_none());
    }

    #[test]
    fn telemetry_does_not_perturb_the_report() {
        let run = |telemetry: bool| {
            let mut sys = System::new(
                SystemConfig::single_core(),
                vec![stream_trace(20_000, 0x1000_0000)],
            );
            if telemetry {
                sys.enable_telemetry(1_000);
            }
            sys.run(2_000, 10_000)
        };
        assert_eq!(format!("{:?}", run(false)), format!("{:?}", run(true)));
    }

    #[test]
    fn replay_wraps_short_traces() {
        let mut sys = System::new(
            SystemConfig::single_core(),
            vec![stream_trace(100, 0x2000_0000)],
        );
        let report = sys.run(0, 1_000);
        assert_eq!(report.cores[0].instructions, 1_000);
    }

    #[test]
    fn cache_hits_make_reuse_fast() {
        // Loop over a 16 KB footprint (fits in L1): second pass must be
        // nearly all hits.
        let lines = 256u64;
        let trace: Vec<TraceRecord> = (0..20_000)
            .map(|i| TraceRecord::load(0x400000, 0x3000_0000 + (i % lines) * 64))
            .collect();
        let mut sys = System::new(SystemConfig::single_core(), vec![VecSource::boxed(trace)]);
        let report = sys.run(2_000, 10_000);
        let l1 = &report.l1d[0];
        assert!(
            l1.load_hit_ratio() > 0.95,
            "resident footprint should hit in L1: {:?}",
            l1
        );
        // And IPC should be far higher than a DRAM-bound stream.
        assert!(report.cores[0].ipc() > 1.0, "ipc={}", report.cores[0].ipc());
    }

    #[test]
    fn multi_core_shares_llc_and_dram() {
        let cfg = SystemConfig::with_cores(4);
        let traces = (0..4)
            .map(|i| stream_trace(5_000, 0x4000_0000 + i * 0x100_0000))
            .collect();
        let mut sys = System::new(cfg, traces);
        let report = sys.run(500, 2_000);
        assert_eq!(report.cores.len(), 4);
        for c in &report.cores {
            assert_eq!(c.instructions, 2_000);
            assert!(c.ipc() > 0.0);
        }
        assert!(report.dram.demand_reads > 0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let mut sys = System::new(
                SystemConfig::single_core(),
                vec![stream_trace(10_000, 0x5000_0000)],
            );
            sys.run(1_000, 5_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        assert_eq!(a.llc, b.llc);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_cores() {
        let _ = System::new(SystemConfig::with_cores(2), vec![stream_trace(10, 0)]);
    }

    #[test]
    fn lower_bandwidth_lowers_streaming_ipc() {
        let fast = {
            let mut sys = System::new(
                SystemConfig::single_core_with_mtps(9600),
                vec![stream_trace(30_000, 0x6000_0000)],
            );
            sys.run(2_000, 20_000).cores[0].ipc()
        };
        let slow = {
            let mut sys = System::new(
                SystemConfig::single_core_with_mtps(150),
                vec![stream_trace(30_000, 0x6000_0000)],
            );
            sys.run(2_000, 20_000).cores[0].ipc()
        };
        assert!(fast > slow * 1.5, "fast={fast} slow={slow}");
    }
}
