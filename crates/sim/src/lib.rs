//! # pythia-sim
//!
//! A trace-driven multi-core cache-hierarchy and DRAM simulator, rebuilt from
//! scratch as the evaluation substrate for the Rust reproduction of
//! *Pythia: A Customizable Hardware Prefetching Framework Using Online
//! Reinforcement Learning* (Bera et al., MICRO 2021).
//!
//! The paper evaluates on ChampSim; this crate provides the equivalent
//! machinery:
//!
//! * an out-of-order core timing model bounded by ROB/LQ/SQ occupancy
//!   ([`cpu`]),
//! * a three-level cache hierarchy with MSHRs, LRU and SHiP replacement
//!   ([`cache`]),
//! * a DDR4-style DRAM model with channels, ranks, banks, row buffers and a
//!   bandwidth-capped data bus ([`dram`]),
//! * a bandwidth-usage monitor that feeds system-level feedback to
//!   prefetchers ([`dram::BandwidthMonitor`]),
//! * the [`prefetch::Prefetcher`] trait that both the baselines
//!   (`pythia-prefetchers`) and Pythia itself (`pythia-core`) implement, and
//! * a [`system::System`] that assembles 1–12 core configurations per
//!   Table 5 of the paper and produces [`stats::SimReport`]s.
//!
//! Cores pull instructions from [`trace::TraceSource`]s — resettable,
//! deterministic record streams — so the simulator's peak memory is
//! independent of trace length: traces can be generated on demand
//! (`pythia-workloads`), replayed from disk
//! ([`trace::FileTraceSource`]), or wrapped from memory
//! ([`trace::VecSource`]).
//!
//! Simulations are deterministic by construction: the same trace streams,
//! [`config::SystemConfig`] and prefetcher seeds yield a bit-identical
//! [`stats::SimReport`], which is what lets the `pythia-sweep` engine run
//! experiment grids in parallel with byte-identical output. The
//! repository-level `ARCHITECTURE.md` maps paper sections and figures to
//! the modules implementing them.
//!
//! # Example
//!
//! ```rust
//! use pythia_sim::config::SystemConfig;
//! use pythia_sim::system::System;
//! use pythia_sim::trace::{TraceRecord, VecSource};
//!
//! // A tiny streaming trace: one load per instruction, consecutive lines.
//! let trace: Vec<TraceRecord> = (0..10_000u64)
//!     .map(|i| TraceRecord::load(0x400000, 0x1000_0000 + i * 64))
//!     .collect();
//! let config = SystemConfig::single_core();
//! let mut system = System::new(config, vec![VecSource::boxed(trace)]);
//! let report = system.run(1_000, 8_000);
//! assert!(report.cores[0].ipc() > 0.0);
//! ```

pub mod addr;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod dram;
pub mod prefetch;
pub mod stats;
pub mod system;
pub mod trace;

pub use addr::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
pub use config::SystemConfig;
pub use prefetch::{DemandAccess, PrefetchRequest, Prefetcher, SystemFeedback};
pub use stats::SimReport;
pub use system::System;
pub use trace::{TraceRecord, TraceSource, VecSource};
