//! Address arithmetic shared by the whole workspace.
//!
//! The paper assumes traditionally-sized 4 KB physical pages and 64 B
//! cachelines (§3.1), giving 64 lines per page and prefetch offsets in
//! `[-63, 63]`.

/// Size of a cacheline in bytes.
pub const LINE_SIZE: u64 = 64;
/// Size of a physical page in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// Number of cachelines in a physical page.
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / LINE_SIZE;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Returns the cacheline index (byte address divided by the line size).
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr >> LINE_SHIFT
}

/// Returns the byte address of the first byte of the line containing `addr`.
#[inline]
pub fn line_base(addr: u64) -> u64 {
    addr & !(LINE_SIZE - 1)
}

/// Returns the physical page number of `addr`.
#[inline]
pub fn page_of(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Returns the physical page number of a *line index* (not a byte address).
#[inline]
pub fn page_of_line(line: u64) -> u64 {
    line >> (PAGE_SHIFT - LINE_SHIFT)
}

/// Returns the line offset within its page, in `0..64`.
#[inline]
pub fn page_offset_of_line(line: u64) -> u64 {
    line & (LINES_PER_PAGE - 1)
}

/// Returns the line offset within its page for a byte address, in `0..64`.
#[inline]
pub fn page_offset(addr: u64) -> u64 {
    page_offset_of_line(line_of(addr))
}

/// Applies a signed line offset to a line index, saturating at zero.
///
/// Offsets model the paper's prefetch actions: a delta, in cachelines,
/// between the demanded line and the prefetched line.
#[inline]
pub fn apply_offset(line: u64, offset: i32) -> u64 {
    if offset >= 0 {
        line.saturating_add(offset as u64)
    } else {
        line.saturating_sub((-offset) as u64)
    }
}

/// Returns `true` if `line + offset` stays within the same 4 KB page.
#[inline]
pub fn offset_stays_in_page(line: u64, offset: i32) -> bool {
    let target = apply_offset(line, offset);
    page_of_line(target) == page_of_line(line) && (offset >= 0 || line >= (-offset) as u64)
}

/// Signed delta, in cachelines, between two lines in the same page.
#[inline]
pub fn line_delta(from_line: u64, to_line: u64) -> i64 {
    to_line as i64 - from_line as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_arithmetic() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(LINES_PER_PAGE, 64);
    }

    #[test]
    fn page_offsets_cover_zero_to_sixty_three() {
        for b in 0..PAGE_SIZE {
            let off = page_offset(b);
            assert!(off < LINES_PER_PAGE);
        }
        assert_eq!(page_offset(0), 0);
        assert_eq!(page_offset(4032), 63);
    }

    #[test]
    fn offsets_within_page_detected() {
        // Line 0 of some page: positive offsets up to 63 stay in page.
        let line = line_of(0x10000);
        assert!(offset_stays_in_page(line, 63));
        assert!(!offset_stays_in_page(line, 64));
        assert!(!offset_stays_in_page(line, -1));
        // Last line of page: negative offsets down to -63 stay in page.
        let last = line + 63;
        assert!(offset_stays_in_page(last, -63));
        assert!(!offset_stays_in_page(last, 1));
    }

    #[test]
    fn apply_offset_saturates() {
        assert_eq!(apply_offset(0, -5), 0);
        assert_eq!(apply_offset(10, -5), 5);
        assert_eq!(apply_offset(10, 5), 15);
    }

    #[test]
    fn line_base_is_aligned() {
        assert_eq!(line_base(0x1234), 0x1200);
        assert_eq!(line_base(0x1200), 0x1200);
    }

    #[test]
    fn line_delta_signed() {
        assert_eq!(line_delta(10, 33), 23);
        assert_eq!(line_delta(33, 10), -23);
        assert_eq!(line_delta(5, 5), 0);
    }
}
