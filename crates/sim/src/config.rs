//! System configuration, defaulting to Table 5 of the paper.
//!
//! | Component | Paper value |
//! |---|---|
//! | Core | 1–12 cores, 4-wide OoO, 256-entry ROB, 72/56-entry LQ/SQ |
//! | Branch | perceptron-based, 20-cycle misprediction penalty |
//! | L1/L2 | private, 32 KB / 256 KB, 8-way, LRU, 16/32 MSHRs, 4/14-cycle |
//! | LLC | 2 MB/core, 16-way, SHiP, 64 MSHRs/bank, 34-cycle |
//! | DRAM | DDR4-2400; 1C: 1 channel, 4C: 2 channels, 8C+: 4 channels; 8 banks/rank, 2 ranks/channel (4C+), 2 KB row buffer, tRCD=15 ns, tRP=15 ns, tCAS=12.5 ns, 64-bit bus |

use serde::{Deserialize, Serialize};

use crate::cache::ReplacementKind;

/// CPU frequency used to convert DRAM nanosecond timings to core cycles.
pub const CPU_FREQ_MHZ: u64 = 4000;

/// Configuration of the out-of-order core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Fetch/retire width in instructions per cycle.
    pub width: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob_entries: usize,
    /// Load-queue capacity.
    pub lq_entries: usize,
    /// Store-queue capacity.
    pub sq_entries: usize,
    /// Cycles of front-end bubble after a branch misprediction.
    pub mispredict_penalty: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            width: 4,
            rob_entries: 256,
            lq_entries: 72,
            sq_entries: 56,
            mispredict_penalty: 20,
        }
    }
}

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Round-trip hit latency in cycles.
    pub latency: u64,
    /// Number of miss-status holding registers.
    pub mshrs: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Number of sets implied by size, line size and associativity.
    pub fn sets(&self) -> usize {
        (self.size_bytes / crate::LINE_SIZE) as usize / self.ways
    }

    /// L1 data cache per Table 5: 32 KB, 8-way, LRU, 16 MSHRs, 4 cycles.
    pub fn l1d() -> Self {
        Self {
            size_bytes: 32 * 1024,
            ways: 8,
            latency: 4,
            mshrs: 16,
            replacement: ReplacementKind::Lru,
        }
    }

    /// L2 cache per Table 5: 256 KB, 8-way, LRU, 32 MSHRs, 14 cycles.
    pub fn l2() -> Self {
        Self {
            size_bytes: 256 * 1024,
            ways: 8,
            latency: 14,
            mshrs: 32,
            replacement: ReplacementKind::Lru,
        }
    }

    /// Shared LLC per Table 5: 2 MB/core, 16-way, SHiP, 34 cycles.
    pub fn llc(cores: usize) -> Self {
        Self {
            size_bytes: 2 * 1024 * 1024 * cores as u64,
            ways: 16,
            latency: 34,
            mshrs: 64 * cores.max(1),
            replacement: ReplacementKind::Ship,
        }
    }
}

/// Configuration of the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes.
    pub row_buffer_bytes: u64,
    /// Transfer rate in mega-transfers per second. Table 5 uses 2400; the
    /// bandwidth-scaling study of Fig. 8(b) sweeps 150–9600.
    pub mtps: u64,
    /// Bus width in bytes per transfer (64-bit bus = 8 B).
    pub bus_bytes: u64,
    /// Row-to-column delay in tenths of nanoseconds (tRCD = 15 ns → 150).
    pub t_rcd_tenth_ns: u64,
    /// Precharge delay in tenths of nanoseconds (tRP = 15 ns → 150).
    pub t_rp_tenth_ns: u64,
    /// Column access latency in tenths of nanoseconds (tCAS = 12.5 ns → 125).
    pub t_cas_tenth_ns: u64,
}

impl DramConfig {
    /// DDR4-2400 configuration with the per-core-count channel scaling used
    /// throughout §6.2.1: one channel for 1–2 cores, two for 4–6, four for 8+.
    pub fn for_cores(cores: usize) -> Self {
        let (channels, ranks) = match cores {
            0..=2 => (1, 1),
            3..=6 => (2, 2),
            _ => (4, 2),
        };
        Self {
            channels,
            ranks_per_channel: ranks,
            banks_per_rank: 8,
            row_buffer_bytes: 2048,
            mtps: 2400,
            bus_bytes: 8,
            t_rcd_tenth_ns: 150,
            t_rp_tenth_ns: 150,
            t_cas_tenth_ns: 125,
        }
    }

    /// Converts tenths of nanoseconds to CPU cycles at [`CPU_FREQ_MHZ`].
    pub fn tenth_ns_to_cycles(tenth_ns: u64) -> u64 {
        // cycles = ns * freq_ghz = (tenth_ns / 10) * (mhz / 1000)
        tenth_ns * CPU_FREQ_MHZ / 10_000
    }

    /// Cycles the data bus is occupied transferring one 64 B cacheline.
    pub fn line_transfer_cycles(&self) -> u64 {
        let transfers = crate::LINE_SIZE / self.bus_bytes;
        // time = transfers / (mtps * 1e6) seconds; cycles = time * freq.
        // cycles = transfers * freq_mhz / mtps, rounded up, at least 1.
        (transfers * CPU_FREQ_MHZ).div_ceil(self.mtps).max(1)
    }

    /// Total banks across all channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// Top-level system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (each runs its own trace).
    pub cores: usize,
    /// Core model parameters.
    pub core: CoreConfig,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Window, in cycles, over which DRAM bandwidth usage is measured for
    /// the high/low feedback signal delivered to prefetchers.
    pub bandwidth_window_cycles: u64,
    /// Bus-utilization fraction (in percent) above which bandwidth usage is
    /// reported as "high" to prefetchers.
    pub bandwidth_high_pct: u8,
}

impl SystemConfig {
    /// Builds the Table 5 configuration for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or greater than 12 (the paper's range).
    pub fn with_cores(cores: usize) -> Self {
        assert!(
            (1..=12).contains(&cores),
            "paper evaluates 1-12 cores, got {cores}"
        );
        Self {
            cores,
            core: CoreConfig::default(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc(cores),
            dram: DramConfig::for_cores(cores),
            bandwidth_window_cycles: 16_384,
            bandwidth_high_pct: 50,
        }
    }

    /// The baseline single-core configuration (1 channel, 2 MB LLC).
    pub fn single_core() -> Self {
        Self::with_cores(1)
    }

    /// Single-core configuration with scaled DRAM bandwidth, as in the
    /// Fig. 8(b) sweep (150–9600 MTPS on a single channel).
    pub fn single_core_with_mtps(mtps: u64) -> Self {
        let mut cfg = Self::single_core();
        cfg.dram.mtps = mtps;
        cfg
    }

    /// Single-core configuration with a scaled LLC, as in Fig. 8(c).
    pub fn single_core_with_llc_bytes(bytes: u64) -> Self {
        let mut cfg = Self::single_core();
        cfg.llc.size_bytes = bytes;
        cfg
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_defaults() {
        let cfg = SystemConfig::single_core();
        assert_eq!(cfg.core.width, 4);
        assert_eq!(cfg.core.rob_entries, 256);
        assert_eq!(cfg.core.lq_entries, 72);
        assert_eq!(cfg.core.sq_entries, 56);
        assert_eq!(cfg.core.mispredict_penalty, 20);
        assert_eq!(cfg.l1d.size_bytes, 32 * 1024);
        assert_eq!(cfg.l2.size_bytes, 256 * 1024);
        assert_eq!(cfg.llc.size_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.llc.ways, 16);
        assert_eq!(cfg.dram.mtps, 2400);
        assert_eq!(cfg.dram.channels, 1);
    }

    #[test]
    fn channel_scaling_follows_section_6_2_1() {
        assert_eq!(SystemConfig::with_cores(1).dram.channels, 1);
        assert_eq!(SystemConfig::with_cores(2).dram.channels, 1);
        assert_eq!(SystemConfig::with_cores(4).dram.channels, 2);
        assert_eq!(SystemConfig::with_cores(6).dram.channels, 2);
        assert_eq!(SystemConfig::with_cores(8).dram.channels, 4);
        assert_eq!(SystemConfig::with_cores(12).dram.channels, 4);
    }

    #[test]
    fn llc_scales_with_cores() {
        assert_eq!(SystemConfig::with_cores(4).llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(
            SystemConfig::with_cores(12).llc.size_bytes,
            24 * 1024 * 1024
        );
    }

    #[test]
    #[should_panic(expected = "1-12 cores")]
    fn zero_cores_rejected() {
        let _ = SystemConfig::with_cores(0);
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheConfig::l1d();
        assert_eq!(l1.sets(), 64); // 32KB / 64B / 8 ways
        let llc = CacheConfig::llc(1);
        assert_eq!(llc.sets(), 2048); // 2MB / 64B / 16 ways
    }

    #[test]
    fn dram_timing_conversion() {
        // 15 ns at 4 GHz = 60 cycles; 12.5 ns = 50 cycles.
        assert_eq!(DramConfig::tenth_ns_to_cycles(150), 60);
        assert_eq!(DramConfig::tenth_ns_to_cycles(125), 50);
    }

    #[test]
    fn transfer_cycles_scale_inversely_with_mtps() {
        let base = DramConfig::for_cores(1);
        let base_cycles = base.line_transfer_cycles();
        let mut slow = base;
        slow.mtps = 150;
        let mut fast = base;
        fast.mtps = 9600;
        assert!(slow.line_transfer_cycles() > base_cycles);
        assert!(fast.line_transfer_cycles() < base_cycles);
        // 2400 MTPS, 8 transfers, 4 GHz: ceil(8*4000/2400) = 14 cycles.
        assert_eq!(base_cycles, 14);
        // 150 MTPS: ceil(32000/150) = 214 cycles.
        assert_eq!(slow.line_transfer_cycles(), 214);
    }

    #[test]
    fn debug_representation_nonempty() {
        let cfg = SystemConfig::with_cores(4);
        assert!(format!("{cfg:?}").contains("cores"));
    }
}
