//! Integration tests of the simulator's prefetch plumbing: fill levels,
//! usefulness attribution, feedback delivery, and writeback traffic.

use pythia_sim::config::SystemConfig;
use pythia_sim::prefetch::{DemandAccess, FillEvent, PrefetchRequest, Prefetcher, SystemFeedback};
use pythia_sim::stats::PrefetcherStats;
use pythia_sim::system::System;
use pythia_sim::trace::{TraceRecord, TraceSource, VecSource};

/// A scripted prefetcher: prefetches a fixed offset ahead of every demand,
/// and records everything the simulator tells it.
struct Scripted {
    offset: i64,
    fill_l2: bool,
    stats: PrefetcherStats,
    fills: std::cell::Cell<u64>,
    feedback_high_seen: bool,
}

impl Scripted {
    fn new(offset: i64, fill_l2: bool) -> Self {
        Self {
            offset,
            fill_l2,
            stats: PrefetcherStats::default(),
            fills: std::cell::Cell::new(0),
            feedback_high_seen: false,
        }
    }
}

impl Prefetcher for Scripted {
    fn name(&self) -> &str {
        "scripted"
    }

    fn on_demand_into(
        &mut self,
        access: &DemandAccess,
        feedback: &SystemFeedback,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if feedback.bandwidth_high {
            self.feedback_high_seen = true;
        }
        let target = access.line as i64 + self.offset;
        if target < 0 {
            return;
        }
        self.stats.issued += 1;
        out.push(PrefetchRequest {
            line: target as u64,
            fill_l2: self.fill_l2,
        });
    }

    fn on_fill(&mut self, event: &FillEvent) {
        if event.prefetched {
            self.fills.set(self.fills.get() + 1);
        }
    }

    fn on_useful(&mut self, _line: u64) {
        self.stats.useful += 1;
    }

    fn on_useless(&mut self, _line: u64) {
        self.stats.useless += 1;
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }
}

fn stream(n: u64) -> Box<dyn TraceSource> {
    VecSource::boxed(
        (0..n)
            .map(|i| TraceRecord::load(0x400000, 0x1000_0000 + i * 64))
            .collect(),
    )
}

#[test]
fn l2_fills_register_as_useful_on_stream() {
    // +8 prefetches on a unit stream: most get demanded -> useful.
    let mut sys =
        System::with_prefetchers(SystemConfig::single_core(), vec![stream(30_000)], |_| {
            Box::new(Scripted::new(8, true))
        });
    let report = sys.run(2_000, 20_000);
    let p = report.prefetchers[0];
    assert!(p.issued > 0);
    assert!(
        report.l2[0].useful_prefetches * 10 >= report.l2[0].prefetch_fills * 8,
        "most +8 prefetches on a stream are useful: {:?}",
        report.l2[0]
    );
    // And the demand-side misses mostly vanish at the LLC.
    assert!(report.llc.demand_load_misses < 25_000 / 8);
}

#[test]
fn llc_only_fills_still_cover_llc_misses() {
    let run = |fill_l2: bool| {
        let mut sys = System::with_prefetchers(
            SystemConfig::single_core(),
            vec![stream(30_000)],
            move |_| Box::new(Scripted::new(8, fill_l2)),
        );
        sys.run(2_000, 20_000)
    };
    let to_l2 = run(true);
    let to_llc = run(false);
    // LLC-only prefetches reduce LLC misses but leave L2 misses higher.
    assert!(to_llc.llc.demand_load_misses < 1_000);
    assert!(
        to_llc.l2[0].demand_load_misses > to_l2.l2[0].demand_load_misses,
        "LLC-only fills must not populate the L2: {} vs {}",
        to_llc.l2[0].demand_load_misses,
        to_l2.l2[0].demand_load_misses
    );
}

#[test]
fn backward_prefetches_on_forward_stream_are_useless() {
    // Prefetch far beyond the stream's end: never demanded, never cached,
    // so every request reaches DRAM and eventually evicts unused.
    let mut sys =
        System::with_prefetchers(SystemConfig::single_core(), vec![stream(40_000)], |_| {
            Box::new(Scripted::new(1_000_000, true))
        });
    let report = sys.run(2_000, 30_000);
    assert!(report.l2[0].useless_prefetches + report.llc.useless_prefetches > 0);
    assert!(report.dram.prefetch_reads > 0);
    assert_eq!(report.l2[0].useful_prefetches, 0);
}

#[test]
fn bandwidth_high_feedback_reaches_prefetcher_under_saturation() {
    let mut cfg = SystemConfig::single_core_with_mtps(150);
    cfg.bandwidth_window_cycles = 2_048;
    // Capture the flag through the report: scripted prefetcher bumps
    // `useful` stats? Instead expose via stats: use issued==0 trick -- here
    // we simply check the DRAM monitor's bucket histogram instead, plus a
    // prefetcher that would have seen the flag.
    let mut sys = System::with_prefetchers(cfg, vec![stream(40_000)], |_| {
        Box::new(Scripted::new(4, true))
    });
    let report = sys.run(2_000, 30_000);
    let buckets = report.dram.bw_bucket_windows;
    assert!(
        buckets[2] + buckets[3] > 0,
        "150 MTPS stream should reach >=50% utilization windows: {buckets:?}"
    );
}

#[test]
fn stores_generate_writeback_traffic() {
    // A store stream larger than the LLC (2 MB = 32 K lines) must push
    // dirty evictions out to DRAM.
    let trace: Vec<TraceRecord> = (0..80_000u64)
        .map(|i| TraceRecord::store(0x400000, 0x2000_0000 + i * 64))
        .collect();
    let mut sys = System::new(SystemConfig::single_core(), vec![VecSource::boxed(trace)]);
    let report = sys.run(2_000, 70_000);
    assert!(
        report.dram.writes > 0,
        "dirty evictions must reach DRAM: {:?}",
        report.dram
    );
    assert!(report.llc.dirty_evictions > 0);
}

#[test]
fn redundant_prefetches_are_dropped_not_fetched() {
    // Offset 0... scripted with +1 on a stream that itself demands every
    // line: after warmup, prefetching the line right before its demand
    // makes most requests redundant-or-useful, never doubling DRAM reads.
    let mut sys =
        System::with_prefetchers(SystemConfig::single_core(), vec![stream(30_000)], |_| {
            Box::new(Scripted::new(1, true))
        });
    let report = sys.run(2_000, 20_000);
    let total_lines = report.llc.demand_load_misses + report.dram.prefetch_reads;
    // Every line is fetched at most once (plus small races): reads must not
    // exceed the distinct-line count materially.
    let distinct = 20_000 + 2; // one new line per instruction in the stream
    assert!(
        total_lines <= distinct + distinct / 10,
        "duplicate fetches detected: {total_lines} reads for {distinct} lines"
    );
}

#[test]
fn per_core_prefetchers_are_independent_instances() {
    let cfg = SystemConfig::with_cores(2);
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let mut sys = System::with_prefetchers(cfg, vec![stream(10_000), stream(10_000)], |_core| {
        counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Box::new(Scripted::new(2, true))
    });
    assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    let report = sys.run(1_000, 5_000);
    assert_eq!(report.prefetchers.len(), 2);
    assert!(report.prefetchers.iter().all(|p| p.issued > 0));
}

#[test]
fn twelve_core_system_with_non_power_of_two_llc_runs() {
    // 12 cores -> 24 MB LLC -> 24576 sets (not a power of two).
    let cfg = SystemConfig::with_cores(12);
    let sources = (0..12)
        .map(|i| {
            VecSource::boxed(
                (0..2_000u64)
                    .map(|j| TraceRecord::load(0x400000, (i as u64 + 1) * 0x1000_0000 + j * 64))
                    .collect(),
            )
        })
        .collect();
    let mut sys = System::new(cfg, sources);
    let report = sys.run(200, 1_000);
    assert_eq!(report.cores.len(), 12);
    assert!(report.cores.iter().all(|c| c.ipc() > 0.0));
}
