//! Per-phase span-timer breakdown of the agent hot path.
//!
//! The registry's `agent_step` benchmark answers "how fast is one
//! demand step?"; this module answers "where inside it does the time
//! go?". It drives the same deterministic fixtures through
//! [`Pythia::on_demand_sectioned`] with a [`SpanTimer`] attached, so
//! the breakdown covers the paper's named phases — feature extraction,
//! EQ probe, argmax, EQ insert, SARSA update — plus a `cache_probe`
//! section timing the L1 probe fixture the same way. `pythia-cli bench
//! --sections` renders the result as a table.

use std::hint::black_box;

use pythia_core::{Pythia, PythiaConfig};
use pythia_obs::spans::{Sectioner, SpanTimer, SpanTotal};
use pythia_sim::cache::{AccessKind, Cache, Lookup};
use pythia_sim::config::SystemConfig;
use pythia_sim::prefetch::SystemFeedback;

use crate::fixtures::{self, scaled};

/// A per-phase wall-time breakdown of the hot-path fixtures.
#[derive(Debug, Clone)]
pub struct SectionProfile {
    /// Demand accesses driven through the sectioned agent step.
    pub agent_ops: u64,
    /// L1 probes timed under the `cache_probe` section.
    pub cache_ops: u64,
    /// Accumulated totals, in first-completed order.
    pub sections: Vec<SpanTotal>,
}

impl SectionProfile {
    /// Sum of all section time (the percentage denominator).
    pub fn total_ns(&self) -> u64 {
        self.sections.iter().map(|s| s.total_ns).sum()
    }

    /// Renders the breakdown as a markdown table: section, calls,
    /// total milliseconds, share of the profiled time, and mean
    /// nanoseconds per call.
    pub fn to_markdown(&self) -> String {
        let total = self.total_ns().max(1) as f64;
        let mut out = String::from(
            "| section | calls | total (ms) | share | ns/call |\n\
             |---|---:|---:|---:|---:|\n",
        );
        for s in &self.sections {
            let ms = s.total_ns as f64 / 1e6;
            let share = 100.0 * s.total_ns as f64 / total;
            let per_call = s.total_ns as f64 / s.calls.max(1) as f64;
            out.push_str(&format!(
                "| {} | {} | {ms:.3} | {share:.1}% | {per_call:.0} |\n",
                s.name, s.calls
            ));
        }
        out
    }
}

/// Profiles the sectioned agent step and the L1 probe at `scale`
/// (same `PYTHIA_BENCH_SCALE` semantics as the registry benchmarks).
///
/// Per-section timestamps cost two `Instant::now()` calls per phase,
/// so absolute numbers run slightly hotter than the untimed
/// `agent_step` benchmark; the *shares* are what this report is for.
pub fn profile_sections(scale: f64) -> SectionProfile {
    let mut timer = SpanTimer::new();

    let agent_ops = scaled(300_000, scale);
    let mut agent = Pythia::new(PythiaConfig::tuned());
    let fb = SystemFeedback::idle();
    let mut out = Vec::new();
    for a in fixtures::demand_stream(agent_ops) {
        out.clear();
        agent.on_demand_sectioned(&a, &fb, &mut out, &mut timer);
        black_box(out.len());
    }

    let cache_ops = scaled(500_000, scale);
    let cfg = SystemConfig::single_core();
    let mut cache = Cache::new("sections-l1", &cfg.l1d);
    let mut hits = 0u64;
    for (i, line) in fixtures::line_stream(cache_ops).enumerate() {
        timer.enter("cache_probe");
        match cache.access(line, AccessKind::DemandLoad, i as u64) {
            Lookup::Hit { .. } => hits += 1,
            Lookup::Miss => {
                cache.fill(line, i as u64 + 20, AccessKind::DemandLoad, 0);
            }
        }
        timer.exit("cache_probe");
    }
    black_box(hits);

    SectionProfile {
        agent_ops: agent_ops as u64,
        cache_ops: cache_ops as u64,
        sections: timer.report().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_the_named_phases() {
        let profile = profile_sections(0.01);
        let names: Vec<_> = profile.sections.iter().map(|s| s.name).collect();
        for required in [
            "feature_extract",
            "eq_probe",
            "argmax",
            "eq_insert",
            "sarsa",
            "cache_probe",
        ] {
            assert!(names.contains(&required), "missing section {required}");
        }
        assert!(profile.total_ns() > 0);
        // Every demand access extracts features exactly once.
        let fe = profile
            .sections
            .iter()
            .find(|s| s.name == "feature_extract")
            .expect("present");
        assert_eq!(fe.calls, profile.agent_ops);
        let probe = profile
            .sections
            .iter()
            .find(|s| s.name == "cache_probe")
            .expect("present");
        assert_eq!(probe.calls, profile.cache_ops);
    }

    #[test]
    fn markdown_table_lists_every_section() {
        let profile = profile_sections(0.01);
        let table = profile.to_markdown();
        for s in &profile.sections {
            assert!(table.contains(s.name), "table missing {}", s.name);
        }
        assert!(table.starts_with("| section |"));
    }
}
