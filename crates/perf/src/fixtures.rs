//! Deterministic, fixed-seed workload fixtures for the microbenchmarks.
//!
//! Every fixture is a pure function of `PYTHIA_BENCH_SCALE` — no clocks,
//! no ambient randomness — so two runs at the same scale measure exactly
//! the same work, and `BENCH_micro.json` numbers are comparable across
//! runs and machines.

use pythia_sim::prefetch::DemandAccess;
use pythia_sim::trace::TraceRecord;
use pythia_workloads::suites::all_suites;
use pythia_workloads::Workload;

/// The e2e benchmark's workload: the first SPEC06 entry of the Table 6
/// pool — the default single-core subject throughout the repo's examples
/// and smokes.
pub const E2E_WORKLOAD: &str = "401.gcc-13B";

/// Scales an iteration count, keeping a sane floor so statistics stay
/// meaningful at tiny CI scales.
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(1_000)
}

/// The e2e fixture workload from the Table 6 pool.
///
/// # Panics
///
/// Panics if the suite pool no longer contains [`E2E_WORKLOAD`].
pub fn e2e_workload() -> Workload {
    all_suites()
        .into_iter()
        .find(|w| w.name == E2E_WORKLOAD)
        .expect("Table 6 pool contains the e2e workload")
}

/// A deterministic mixed demand-access stream: bursty per-page locality
/// with page changes and occasional writes — the shape the agent and
/// feature extractor see from the L1 miss stream.
pub fn demand_stream(n: usize) -> impl Iterator<Item = DemandAccess> {
    (0..n as u64).map(|i| {
        let addr = 0x1000_0000 + (i % 97) * 64 + (i / 97) * 4096 % (1 << 24);
        DemandAccess {
            pc: 0x400000 + (i % 13) * 4,
            addr,
            line: addr >> 6,
            is_write: i % 11 == 0,
            cycle: i * 7,
            missed: true,
        }
    })
}

/// Cacheline indices with a hot/cold mix: ~70% land in a small resident
/// set, the rest sweep a large footprint (so probes exercise both the hit
/// and the miss/evict paths).
pub fn line_stream(n: usize) -> impl Iterator<Item = u64> {
    (0..n as u64).map(|i| {
        if i % 10 < 7 {
            (i * 17) % 512
        } else {
            4096 + (i * 131) % 100_000
        }
    })
}

/// A trace fixture for codec benchmarks: the record mix the generators
/// produce (nops, loads, stores, branches, dependent loads).
pub fn trace_records(n: usize) -> Vec<TraceRecord> {
    (0..n as u64)
        .map(|i| match i % 10 {
            0 => TraceRecord::store(0x400000 + i % 64, 0x2000_0000 + (i * 64) % (1 << 22)),
            1 | 2 => TraceRecord::nop(0x400000 + i % 64),
            3 => TraceRecord::branch(0x400000 + i % 64, i % 3 == 0, i % 7 == 0),
            4 => {
                TraceRecord::dependent_load(0x400000 + i % 64, 0x2000_0000 + (i * 192) % (1 << 22))
            }
            _ => TraceRecord::load(0x400000 + i % 64, 0x2000_0000 + (i * 64) % (1 << 22)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a: Vec<_> = demand_stream(100).collect();
        let b: Vec<_> = demand_stream(100).collect();
        assert_eq!(a, b);
        assert_eq!(trace_records(100), trace_records(100));
        let l: Vec<_> = line_stream(100).collect();
        assert_eq!(l, line_stream(100).collect::<Vec<_>>());
    }

    #[test]
    fn line_stream_mixes_hot_and_cold() {
        let lines: Vec<_> = line_stream(1000).collect();
        assert!(lines.iter().any(|&l| l < 512));
        assert!(lines.iter().any(|&l| l >= 4096));
    }

    #[test]
    fn scaled_applies_floor() {
        assert_eq!(scaled(500_000, 1.0), 500_000);
        assert_eq!(scaled(500_000, 0.001), 1_000);
    }

    #[test]
    fn e2e_workload_exists() {
        assert_eq!(e2e_workload().name, E2E_WORKLOAD);
    }
}
