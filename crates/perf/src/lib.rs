//! # pythia-perf
//!
//! The in-repo microbenchmark subsystem: a hand-rolled harness (no
//! external benchmarking dependency) that pins the simulator's hot paths
//! to numbers — per-access agent cost, cache probe cost, trace decode
//! throughput, and the end-to-end simulated-instructions-per-second of
//! the default single-core workload.
//!
//! Each benchmark runs a warmup phase, then `measure_reps` timed
//! repetitions of a deterministic fixed-seed fixture
//! ([`fixtures`]), reduced to median + MAD
//! ([`pythia_stats::bench::BenchMeasurement`]). `pythia-cli bench` drives
//! the registry and emits `BENCH_micro.json` (same hand-rolled JSON
//! schema family as the sweep engine's `BENCH_*.json`); CI replays it at
//! tiny scale against a checked-in baseline and fails on >25%
//! regressions.
//!
//! ```no_run
//! let harness = pythia_perf::Harness::default();
//! let report = pythia_perf::run_filtered(Some("qvstore"), &harness);
//! println!("{}", report.to_markdown());
//! ```

pub mod fixtures;
pub mod sections;

use std::hint::black_box;

use pythia::runner::{run_workload, RunSpec};
use pythia_core::eq::{EqEntry, EvaluationQueue};
use pythia_core::{FeatureContext, Pythia, PythiaConfig, QvStore};
use pythia_sim::cache::{AccessKind, Cache, Lookup, MshrFile};
use pythia_sim::config::SystemConfig;
use pythia_sim::prefetch::{Prefetcher, SystemFeedback};
use pythia_sim::trace::{decode_trace, encode_trace, FileTraceSource, TraceSource, TraceWriter};
use pythia_stats::bench::{BenchMeasurement, BenchReport};

use fixtures::scaled;

/// Harness knobs: untimed warmup repetitions, then timed repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Untimed repetitions before measurement (cache/branch warmup).
    pub warmup_reps: u32,
    /// Timed repetitions reduced to median/MAD.
    pub measure_reps: u32,
}

impl Default for Harness {
    fn default() -> Self {
        Self {
            warmup_reps: 2,
            measure_reps: 7,
        }
    }
}

/// One registered microbenchmark: `build(scale)` constructs its fixture
/// and returns the work units one repetition processes plus the
/// repetition closure.
pub struct BenchDef {
    /// Benchmark name (`--filter` substring-matches it).
    pub name: &'static str,
    /// Work-unit label (`"inst"`, `"ops"`, `"records"`).
    pub unit: &'static str,
    /// Fixture constructor.
    #[allow(clippy::type_complexity)]
    pub build: fn(f64) -> (u64, Box<dyn FnMut()>),
}

impl std::fmt::Debug for BenchDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchDef")
            .field("name", &self.name)
            .finish()
    }
}

/// Budgets of the end-to-end benchmark (scaled): the default single-core
/// methodology of `pythia-cli run` (100 K warmup + 400 K measured).
const E2E_WARMUP: u64 = 100_000;
const E2E_MEASURE: u64 = 400_000;

fn e2e_spec(scale: f64) -> RunSpec {
    RunSpec {
        system: SystemConfig::single_core(),
        warmup: scaled(E2E_WARMUP as usize, scale) as u64,
        measure: scaled(E2E_MEASURE as usize, scale) as u64,
    }
}

fn e2e_bench(scale: f64, prefetcher: &'static str) -> (u64, Box<dyn FnMut()>) {
    let spec = e2e_spec(scale);
    let workload = fixtures::e2e_workload();
    (
        spec.warmup + spec.measure,
        Box::new(move || {
            black_box(run_workload(&workload, prefetcher, &spec));
        }),
    )
}

/// Every registered microbenchmark, in report order.
pub fn registry() -> Vec<BenchDef> {
    vec![
        BenchDef {
            name: "e2e_single_core",
            unit: "inst",
            build: |scale| e2e_bench(scale, "pythia"),
        },
        BenchDef {
            name: "e2e_baseline_sim",
            unit: "inst",
            build: |scale| e2e_bench(scale, "none"),
        },
        BenchDef {
            name: "agent_step",
            unit: "ops",
            build: |scale| {
                let n = scaled(300_000, scale);
                (
                    n as u64,
                    Box::new(move || {
                        let mut agent = Pythia::new(PythiaConfig::tuned());
                        let fb = SystemFeedback::idle();
                        let mut out = Vec::new();
                        for a in fixtures::demand_stream(n) {
                            out.clear();
                            agent.on_demand_into(&a, &fb, &mut out);
                            black_box(out.len());
                        }
                    }),
                )
            },
        },
        BenchDef {
            name: "feature_extract",
            unit: "ops",
            build: |scale| {
                let n = scaled(500_000, scale);
                let features = PythiaConfig::tuned().features;
                (
                    n as u64,
                    Box::new(move || {
                        let mut ctx = FeatureContext::new();
                        let mut state = Vec::new();
                        for a in fixtures::demand_stream(n) {
                            ctx.update(&a);
                            ctx.state_into(&features, &mut state);
                            black_box(&state);
                        }
                    }),
                )
            },
        },
        BenchDef {
            name: "qvstore_argmax",
            unit: "ops",
            build: |scale| {
                let n = scaled(500_000, scale);
                let store = QvStore::new(&PythiaConfig::tuned());
                (
                    n as u64,
                    Box::new(move || {
                        let mut acc = 0usize;
                        for i in 0..n as u64 {
                            acc = acc.wrapping_add(store.argmax(&[i % 4096, (i * 7) % 4096]));
                        }
                        black_box(acc);
                    }),
                )
            },
        },
        BenchDef {
            // The 127-entry full action list of the paper's exploration
            // study: 31 SWAR blocks of four plus a scalar tail lane.
            name: "qvstore_argmax_full",
            unit: "ops",
            build: |scale| {
                let n = scaled(200_000, scale);
                let cfg = PythiaConfig::tuned().with_actions(PythiaConfig::full_actions());
                let store = QvStore::new(&cfg);
                (
                    n as u64,
                    Box::new(move || {
                        let mut acc = 0usize;
                        for i in 0..n as u64 {
                            acc = acc.wrapping_add(store.argmax(&[i % 4096, (i * 7) % 4096]));
                        }
                        black_box(acc);
                    }),
                )
            },
        },
        BenchDef {
            name: "qvstore_sarsa",
            unit: "ops",
            build: |scale| {
                let n = scaled(400_000, scale);
                let cfg = PythiaConfig::tuned();
                (
                    n as u64,
                    Box::new(move || {
                        let mut store = QvStore::new(&cfg);
                        for i in 0..n as u64 {
                            store.sarsa_update(
                                &[i % 4096, (i * 7) % 4096],
                                (i % 16) as usize,
                                -3.0,
                                &[(i + 1) % 4096, (i * 7 + 3) % 4096],
                                ((i + 5) % 16) as usize,
                                0.05,
                                cfg.gamma,
                            );
                        }
                        black_box(store.updates());
                    }),
                )
            },
        },
        BenchDef {
            name: "eq_churn",
            unit: "ops",
            build: |scale| {
                let n = scaled(400_000, scale);
                (
                    n as u64,
                    Box::new(move || {
                        let mut eq = EvaluationQueue::new(256);
                        let mut evictions = 0u64;
                        for i in 0..n as u64 {
                            eq.reward_demand_hit(i % 4096, i, 20, 12);
                            let entry = EqEntry::new(
                                vec![i, i ^ 7],
                                (i % 16) as usize,
                                Some((i * 3) % 4096),
                                i,
                            );
                            if eq.insert(entry).is_some() {
                                evictions += 1;
                            }
                            if i % 5 == 0 {
                                eq.mark_filled((i * 3) % 4096, i + 100);
                            }
                        }
                        black_box(evictions);
                    }),
                )
            },
        },
        BenchDef {
            name: "cache_probe",
            unit: "ops",
            build: |scale| {
                let n = scaled(500_000, scale);
                let cfg = SystemConfig::single_core();
                (
                    n as u64,
                    Box::new(move || {
                        let mut cache = Cache::new("bench-l1", &cfg.l1d);
                        let mut hits = 0u64;
                        for (i, line) in fixtures::line_stream(n).enumerate() {
                            match cache.access(line, AccessKind::DemandLoad, i as u64) {
                                Lookup::Hit { .. } => hits += 1,
                                Lookup::Miss => {
                                    cache.fill(line, i as u64 + 20, AccessKind::DemandLoad, 0);
                                }
                            }
                        }
                        black_box(hits);
                    }),
                )
            },
        },
        BenchDef {
            name: "mshr_allocate",
            unit: "ops",
            build: |scale| {
                let n = scaled(500_000, scale);
                (
                    n as u64,
                    Box::new(move || {
                        let mut mshr = MshrFile::new(32);
                        let mut waited = 0u64;
                        for i in 0..n as u64 {
                            waited += mshr.allocate(i * 3, i * 3 + 200);
                        }
                        black_box(waited);
                    }),
                )
            },
        },
        BenchDef {
            name: "trace_decode",
            unit: "records",
            build: |scale| {
                let n = scaled(500_000, scale);
                let encoded = encode_trace(&fixtures::trace_records(n));
                (
                    n as u64,
                    Box::new(move || {
                        let decoded = decode_trace(encoded.clone()).expect("valid fixture");
                        black_box(decoded.len());
                    }),
                )
            },
        },
        BenchDef {
            name: "trace_file_replay",
            unit: "records",
            build: |scale| {
                let n = scaled(500_000, scale);
                // The guard owns the fixture file and removes it when the
                // benchmark closure is dropped after its last repetition.
                struct TempTrace(std::path::PathBuf);
                impl Drop for TempTrace {
                    fn drop(&mut self) {
                        std::fs::remove_file(&self.0).ok();
                    }
                }
                let file = TempTrace(std::env::temp_dir().join(format!(
                    "pythia_perf_replay_{}_{n}.pytr",
                    std::process::id()
                )));
                let mut writer = TraceWriter::create(&file.0).expect("create fixture trace");
                for r in fixtures::trace_records(n) {
                    writer.write_record(&r).expect("write fixture record");
                }
                writer.finish().expect("finish fixture trace");
                (
                    n as u64,
                    Box::new(move || {
                        let mut src =
                            FileTraceSource::open_trusted(&file.0).expect("open fixture trace");
                        let mut count = 0u64;
                        while let Some(r) = src.next_record() {
                            black_box(r.pc);
                            count += 1;
                        }
                        black_box(count);
                    }),
                )
            },
        },
    ]
}

/// Runs one benchmark under the harness at `scale`.
pub fn run_benchmark(def: &BenchDef, harness: &Harness, scale: f64) -> BenchMeasurement {
    let (units, mut rep) = (def.build)(scale);
    for _ in 0..harness.warmup_reps {
        rep();
    }
    let reps = harness.measure_reps.max(1);
    let mut times_ns = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let started = std::time::Instant::now();
        rep();
        times_ns.push(started.elapsed().as_nanos() as f64);
    }
    BenchMeasurement::from_times(def.name, def.unit, units, &times_ns)
}

/// Runs every benchmark whose name contains `filter` (all when `None`),
/// at the ambient `PYTHIA_BENCH_SCALE`, and returns the report.
pub fn run_filtered(filter: Option<&str>, harness: &Harness) -> BenchReport {
    let scale = pythia_bench::scale();
    let benchmarks = registry()
        .iter()
        .filter(|d| filter.is_none_or(|f| d.name.contains(f)))
        .map(|d| run_benchmark(d, harness, scale))
        .collect();
    let host = pythia_obs::host::host_info();
    BenchReport {
        name: "micro".into(),
        scale,
        host: Some(pythia_stats::bench::BenchHost {
            cpu_features: host.features_label(),
            hostname: host.hostname,
        }),
        benchmarks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        Harness {
            warmup_reps: 0,
            measure_reps: 2,
        }
    }

    #[test]
    fn registry_names_are_unique_and_cover_required_paths() {
        let defs = registry();
        assert!(defs.len() >= 6, "need at least six benchmarks");
        let names: Vec<_> = defs.iter().map(|d| d.name).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate benchmark names");
        for required in [
            "agent_step",
            "cache_probe",
            "trace_decode",
            "e2e_single_core",
        ] {
            assert!(names.contains(&required), "missing benchmark {required}");
        }
    }

    #[test]
    fn micro_benchmarks_produce_positive_medians_at_tiny_scale() {
        // Every non-e2e benchmark runs in milliseconds at 0.01 scale; the
        // e2e pair is exercised by the CLI smoke instead (spawning full
        // simulations twice per unit-test run is too slow here).
        let harness = tiny();
        for def in registry().iter().filter(|d| !d.name.starts_with("e2e")) {
            let m = run_benchmark(def, &harness, 0.01);
            assert!(m.median_ns > 0.0, "{}: zero median", def.name);
            assert!(m.units_per_rep >= 1_000, "{}: fixture floor", def.name);
            assert_eq!(m.reps, 2);
            assert!(m.units_per_sec() > 0.0);
        }
    }

    #[test]
    fn filtered_run_selects_by_substring() {
        let report = run_filtered(Some("qvstore"), &tiny());
        assert_eq!(report.benchmarks.len(), 3);
        assert!(report
            .benchmarks
            .iter()
            .all(|b| b.name.starts_with("qvstore")));
    }

    #[test]
    fn measurements_are_reduced_with_median_and_mad() {
        let defs = registry();
        let def = defs
            .iter()
            .find(|d| d.name == "qvstore_argmax")
            .expect("registered");
        let m = run_benchmark(
            def,
            &Harness {
                warmup_reps: 1,
                measure_reps: 5,
            },
            0.01,
        );
        assert_eq!(m.reps, 5);
        assert!(m.mad_ns >= 0.0);
        assert!(m.mad_ns < m.median_ns, "MAD should be far below the median");
    }
}
