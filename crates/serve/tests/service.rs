//! End-to-end service tests over real TCP sockets.
//!
//! The acceptance pin: a figure campaign submitted over HTTP produces a
//! `SweepResult` JSON byte-identical to a direct `sweep` engine run of the
//! same spec; resubmission is a cache hit that re-simulates nothing; and
//! identical concurrent submissions coalesce into one job.

use std::sync::atomic::Ordering;
use std::time::Duration;

use pythia_serve::client;
use pythia_serve::server::{ServeConfig, Server, ServerHandle};
use pythia_stats::json::Json;
use pythia_sweep::codec::Campaign;
use pythia_sweep::{ConfigPoint, SweepSpec};
use pythia_workloads::all_suites;

fn spawn(config: ServeConfig) -> (ServerHandle, String) {
    let server = Server::bind("127.0.0.1:0", &config).expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn accept loop");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn tiny_spec(tag: &str, measure: u64) -> SweepSpec {
    let w = all_suites()
        .into_iter()
        .find(|w| w.name == "429.mcf-184B")
        .expect("known workload");
    SweepSpec::new(tag)
        .with_workloads([w])
        .with_prefetchers(&["stride"])
        .with_config(ConfigPoint::single_core("base", 1_000, measure))
}

fn submit_spec(addr: &str, spec: &SweepSpec) -> client::Submitted {
    let body = Json::obj()
        .set("spec", pythia_sweep::codec::spec_json(spec))
        .render();
    client::submit(addr, &body).expect("submission accepted")
}

fn submit_spec_as(addr: &str, spec: &SweepSpec, tenant: &str, priority: u64) -> client::Submitted {
    let body = Json::obj()
        .set("spec", pythia_sweep::codec::spec_json(spec))
        .set("tenant", tenant)
        .set("priority", priority)
        .render();
    client::submit(addr, &body).expect("submission accepted")
}

/// The headline end-to-end test (acceptance criteria of the service PR):
/// fig09 at tiny scale served over TCP == direct `run_all`, byte for byte;
/// the resubmission is answered from cache without a second simulation.
#[test]
fn served_fig09_tiny_scale_is_byte_identical_to_direct_run() {
    // Process-global: this is the only test in this binary that touches
    // the scale, and it sets it before any registry build.
    std::env::set_var("PYTHIA_BENCH_SCALE", "0.01");

    let campaign = pythia_bench::figures::campaign("fig09").expect("fig09 registered");
    let direct = pythia_sweep::engine::run_all("fig09", &campaign.panels, 4)
        .expect("direct run")
        .stripped()
        .to_json()
        .render_pretty();

    let (handle, addr) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 8,
        sim_threads: 4,
        ..ServeConfig::default()
    });

    let submitted = client::submit_figure(&addr, "fig09").expect("submission accepted");
    assert_eq!(
        submitted.digest,
        campaign.digest(),
        "client and server agree on the digest"
    );
    assert!(!submitted.cached);

    client::wait_done(
        &addr,
        &submitted.digest,
        Duration::from_millis(50),
        Duration::from_secs(300),
    )
    .expect("campaign completes");
    let fetched = client::result(&addr, &submitted.digest, "json").expect("result fetched");
    assert_eq!(
        fetched, direct,
        "served result is byte-identical to the direct run"
    );

    // Resubmission: answered done from the in-memory cache, nothing re-run.
    let again = client::submit_figure(&addr, "fig09").expect("resubmission accepted");
    assert!(
        again.cached,
        "second submission of the same digest is a cache hit"
    );
    assert_eq!(again.status, "done");
    let counters = handle.scheduler().counters();
    assert_eq!(
        counters.executed.load(Ordering::Relaxed),
        1,
        "one simulation total"
    );
    assert_eq!(counters.cache_hits.load(Ordering::Relaxed), 1);

    // The md and csv renderings come from the same formatters as the CLI.
    let md = client::result(&addr, &submitted.digest, "md").expect("md");
    assert!(
        md.starts_with("# sweep fig09"),
        "{}",
        &md[..md.len().min(60)]
    );
    let csv = client::result(&addr, &submitted.digest, "csv").expect("csv");
    assert!(csv.starts_with("sweep,unit,group,"));
}

#[test]
fn concurrent_identical_submissions_coalesce_into_one_job() {
    let (handle, addr) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 8,
        sim_threads: 1,
        ..ServeConfig::default()
    });

    // Pin the single worker down so the target job stays queued while the
    // concurrent submissions race in.
    let blocker = submit_spec(&addr, &tiny_spec("svc-blocker", 40_000));

    let target = tiny_spec("svc-target", 4_000);
    let submissions: Vec<client::Submitted> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let target = target.clone();
                scope.spawn(move || submit_spec(&addr, &target))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    assert_eq!(submissions[0].digest, submissions[1].digest);

    client::wait_done(
        &addr,
        &blocker.digest,
        Duration::from_millis(20),
        Duration::from_secs(120),
    )
    .expect("blocker completes");
    client::wait_done(
        &addr,
        &submissions[0].digest,
        Duration::from_millis(20),
        Duration::from_secs(120),
    )
    .expect("target completes");

    let counters = handle.scheduler().counters();
    assert_eq!(
        counters.executed.load(Ordering::Relaxed),
        2,
        "blocker + exactly one shared job for the two identical submissions"
    );
    assert_eq!(counters.coalesced.load(Ordering::Relaxed), 1);
}

#[test]
fn full_queue_answers_429_and_result_races_answer_409() {
    // No workers: the queue never drains, so every state is deterministic.
    let (_handle, addr) = spawn(ServeConfig {
        workers: 0,
        queue_cap: 1,
        sim_threads: 1,
        ..ServeConfig::default()
    });

    let queued = submit_spec(&addr, &tiny_spec("svc-bp-a", 4_000));
    assert_eq!(queued.status, "queued");

    // Queue is full now — a *different* campaign bounces with 429.
    let body = Json::obj()
        .set(
            "spec",
            pythia_sweep::codec::spec_json(&tiny_spec("svc-bp-b", 4_000)),
        )
        .render();
    let err = client::submit(&addr, &body).expect_err("queue full");
    assert!(err.contains("429"), "{err}");

    // The queued job has no result yet: 409.
    let err = client::result(&addr, &queued.digest, "json").expect_err("not done");
    assert!(err.contains("409"), "{err}");

    // Unknown digest: 404. Malformed digest: 400.
    let err = client::result(&addr, "ffffffffffffffff", "json").expect_err("unknown");
    assert!(err.contains("404"), "{err}");
    let err = client::status(&addr, "nope").expect_err("malformed");
    assert!(err.contains("400"), "{err}");
}

#[test]
fn disk_cache_survives_service_restarts() {
    let cache_dir = std::env::temp_dir().join(format!(
        "pythia-serve-restart-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let spec = tiny_spec("svc-restart", 4_000);
    let digest = Campaign::single(spec.clone()).digest();

    // First service instance simulates and persists.
    let (_h1, addr1) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 8,
        sim_threads: 1,
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    });
    let first = submit_spec(&addr1, &spec);
    assert_eq!(first.digest, digest);
    client::wait_done(
        &addr1,
        &digest,
        Duration::from_millis(20),
        Duration::from_secs(120),
    )
    .expect("completes");
    let served = client::result(&addr1, &digest, "json").expect("result");

    // A fresh service instance on the same cache dir answers from disk.
    let (h2, addr2) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 8,
        sim_threads: 1,
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    });
    let resubmitted = submit_spec(&addr2, &spec);
    assert!(resubmitted.cached, "restarted service hits the disk store");
    assert_eq!(resubmitted.status, "done");
    let counters = h2.scheduler().counters();
    assert_eq!(
        counters.executed.load(Ordering::Relaxed),
        0,
        "nothing simulated"
    );
    assert_eq!(counters.cache_hits.load(Ordering::Relaxed), 1);
    assert_eq!(
        client::result(&addr2, &digest, "json").expect("result"),
        served,
        "disk-cached result is byte-identical to the originally served one"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn figures_listing_names_every_registry_entry() {
    let (_handle, addr) = spawn(ServeConfig {
        workers: 0,
        queue_cap: 1,
        sim_threads: 1,
        ..ServeConfig::default()
    });
    let listing = client::figures(&addr).expect("listing");
    let figures = listing
        .get("figures")
        .and_then(Json::as_arr)
        .expect("figures array");
    let ids: Vec<&str> = figures
        .iter()
        .filter_map(|f| f.get("id").and_then(Json::as_str))
        .collect();
    for expected in ["fig01", "fig09", "tab02", "ablation"] {
        assert!(ids.contains(&expected), "{expected} missing from {ids:?}");
    }
    for f in figures {
        let digest = f.get("digest").and_then(Json::as_str).expect("digest");
        assert!(pythia_sweep::codec::is_digest(digest));
    }
}

#[test]
fn one_hundred_sequential_requests_share_one_kept_alive_connection() {
    use pythia_serve::http::ClientConn;

    // No workers: the job stays queued, so every poll answers 200 with a
    // deterministic body.
    let (handle, addr) = spawn(ServeConfig {
        workers: 0,
        queue_cap: 4,
        sim_threads: 1,
        ..ServeConfig::default()
    });
    let queued = submit_spec(&addr, &tiny_spec("svc-ka", 4_000));

    let mut conn = ClientConn::connect(&addr).expect("connect");
    for i in 0..100 {
        let reply = conn
            .request("GET", &format!("/campaigns/{}", queued.digest), b"")
            .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert_eq!(reply.status, 200, "request {i}");
        let doc = pythia_stats::json::parse(std::str::from_utf8(&reply.body).expect("utf-8"))
            .unwrap_or_else(|e| panic!("request {i} body: {e}"));
        assert_eq!(
            doc.get("status").and_then(Json::as_str),
            Some("queued"),
            "request {i}"
        );
    }
    // All 100 polls rode the same TCP connection.
    assert!(
        handle.conn_stats().requests.load(Ordering::Relaxed) >= 101,
        "submit + 100 polls counted"
    );
}

#[test]
fn etag_conditional_fetch_round_trip() {
    let (_handle, addr) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 4,
        sim_threads: 1,
        ..ServeConfig::default()
    });
    let submitted = submit_spec(&addr, &tiny_spec("svc-etag", 4_000));
    client::wait_done(
        &addr,
        &submitted.digest,
        Duration::from_millis(20),
        Duration::from_secs(120),
    )
    .expect("completes");

    // First fetch: fresh body plus the validator.
    let fetch = client::result_conditional(&addr, &submitted.digest, "json", None)
        .expect("unconditional fetch");
    let client::CachedFetch::Fresh { etag, body } = fetch else {
        panic!("first fetch must be fresh");
    };
    let etag = etag.expect("server sends an etag");
    assert_eq!(etag, format!("\"{}.json\"", submitted.digest));
    assert!(!body.is_empty());

    // Second fetch with the validator: 304, no body transferred.
    let fetch = client::result_conditional(&addr, &submitted.digest, "json", Some(&etag))
        .expect("conditional fetch");
    assert!(matches!(fetch, client::CachedFetch::NotModified));

    // A stale validator gets a fresh body again.
    let fetch = client::result_conditional(&addr, &submitted.digest, "json", Some("\"bogus\""))
        .expect("stale validator");
    let client::CachedFetch::Fresh { body: again, .. } = fetch else {
        panic!("stale validator must refetch");
    };
    assert_eq!(again, body, "same digest renders identical bytes");
}

#[test]
fn metrics_endpoint_reports_live_state() {
    let (_handle, addr) = spawn(ServeConfig {
        workers: 0,
        queue_cap: 4,
        sim_threads: 1,
        ..ServeConfig::default()
    });
    submit_spec(&addr, &tiny_spec("svc-metrics", 4_000));

    let metrics = client::metrics(&addr).expect("metrics parse");
    let path = |keys: &[&str]| {
        let mut node = &metrics;
        for key in keys {
            node = node.get(key).unwrap_or_else(|| panic!("missing {key}"));
        }
        node.as_u64()
            .unwrap_or_else(|| panic!("{keys:?} not a u64"))
    };
    assert_eq!(path(&["queue", "depth"]), 1, "one queued job");
    assert_eq!(path(&["queue", "cap"]), 4);
    assert_eq!(path(&["workers", "busy"]), 0);
    assert_eq!(path(&["workers", "total"]), 0);
    assert_eq!(path(&["counters", "submitted"]), 1);
    assert!(path(&["connections", "requests"]) >= 1);
    assert_eq!(
        metrics
            .get("store")
            .and_then(|s| s.get("enabled"))
            .and_then(Json::as_bool),
        Some(false),
        "no cache dir configured"
    );
    assert!(metrics
        .get("throughput")
        .and_then(|t| t.get("minst_per_sec"))
        .and_then(Json::as_f64)
        .is_some());
}

/// Fair queueing: a huge campaign from one tenant must not starve a
/// small campaign from another on a bounded pool. The small one
/// completes while the huge one is still mid-flight, and both tenants'
/// served-cell counters advance.
#[test]
fn small_tenant_campaign_is_not_starved_by_a_huge_one() {
    let (handle, addr) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 8,
        sim_threads: 1,
        ..ServeConfig::default()
    });

    // 24 seeds -> 48 cells (baseline + measured per seed) for alice;
    // 2 seeds -> 4 cells for bob. One worker serves both: round-robin
    // interleaves them cell by cell.
    let huge_seeds: Vec<u64> = (0..24).collect();
    let huge = tiny_spec("svc-fair-huge", 6_000).with_seeds(&huge_seeds);
    let small = tiny_spec("svc-fair-small", 4_000).with_seeds(&[0, 1]);

    let huge_sub = submit_spec_as(&addr, &huge, "alice", 1);
    let small_sub = submit_spec_as(&addr, &small, "bob", 1);

    client::wait_done(
        &addr,
        &small_sub.digest,
        Duration::from_millis(10),
        Duration::from_secs(300),
    )
    .expect("small campaign completes");

    // The huge campaign is still running: interleaved progress, not
    // head-of-line blocking.
    let huge_status = client::status(&addr, &huge_sub.digest).expect("status");
    let cells = |doc: &Json, key: &str| {
        doc.get("cells")
            .and_then(|c| c.get(key))
            .and_then(Json::as_u64)
            .expect("cell progress present")
    };
    let huge_done = cells(&huge_status, "done");
    let huge_total = cells(&huge_status, "total");
    assert_eq!(huge_total, 48);
    assert!(
        huge_done < huge_total,
        "huge campaign must still be in flight when the small one finishes \
         ({huge_done}/{huge_total})"
    );

    // Both tenants' served counters advanced.
    let metrics = client::metrics(&addr).expect("metrics");
    let served = |tenant: &str| {
        metrics
            .get("tenants")
            .and_then(|t| t.get(tenant))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("tenant {tenant} missing from metrics"))
    };
    assert!(served("alice") > 0, "alice was served while bob finished");
    assert_eq!(served("bob"), 4, "bob's campaign is fully served");

    client::wait_done(
        &addr,
        &huge_sub.digest,
        Duration::from_millis(20),
        Duration::from_secs(300),
    )
    .expect("huge campaign completes too");
    let counters = handle.scheduler().counters();
    assert_eq!(counters.cells_executed.load(Ordering::Relaxed), 52);
}

/// The `?partial=1` contract: `cells_done` is monotonic across polls,
/// every partial body is a valid render whose rows are a prefix of the
/// final artifact, and the final partial equals `GET /result` byte for
/// byte.
#[test]
fn partial_results_are_monotonic_prefixes_of_the_final_artifact() {
    let (_handle, addr) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 8,
        sim_threads: 1,
        ..ServeConfig::default()
    });

    let seeds: Vec<u64> = (0..8).collect();
    let spec = tiny_spec("svc-partial", 5_000).with_seeds(&seeds); // 16 cells
    let submitted = submit_spec(&addr, &spec);

    // Poll partials until the fetch reports completion.
    let deadline = std::time::Instant::now() + Duration::from_secs(300);
    let mut snapshots: Vec<client::PartialResult> = Vec::new();
    loop {
        let partial =
            client::partial_result(&addr, &submitted.digest, "json").expect("partial fetch");
        let complete = partial.complete;
        snapshots.push(partial);
        if complete {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "campaign never finished"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let final_body = client::result(&addr, &submitted.digest, "json").expect("final result");
    let last = snapshots.last().expect("at least one snapshot");
    assert_eq!(last.cells_done, 16);
    assert_eq!(last.cells_total, 16);
    assert_eq!(
        last.body, final_body,
        "the complete partial equals GET /result byte for byte"
    );
    assert!(
        snapshots.iter().any(|s| !s.complete),
        "at least one poll observed the campaign mid-flight"
    );

    let final_doc = pythia_stats::json::parse(&final_body).expect("final parses");
    let rows = |doc: &Json, key: &str| -> Vec<String> {
        doc.get(key)
            .and_then(Json::as_arr)
            .expect("row array")
            .iter()
            .map(Json::render)
            .collect()
    };
    let final_baselines = rows(&final_doc, "baselines");
    let final_cells = rows(&final_doc, "cells");

    let mut last_done = 0;
    for (i, snapshot) in snapshots.iter().enumerate() {
        assert!(
            snapshot.cells_done >= last_done,
            "poll {i}: cells_done regressed ({} < {last_done})",
            snapshot.cells_done
        );
        last_done = snapshot.cells_done;
        assert_eq!(snapshot.cells_total, 16, "poll {i}");
        // Every partial is itself valid JSON whose rows are a prefix of
        // the final row order.
        let doc = pythia_stats::json::parse(&snapshot.body)
            .unwrap_or_else(|e| panic!("poll {i} body: {e}"));
        let baselines = rows(&doc, "baselines");
        let cells = rows(&doc, "cells");
        assert_eq!(
            baselines[..],
            final_baselines[..baselines.len()],
            "poll {i}: baselines are a prefix"
        );
        assert_eq!(
            cells[..],
            final_cells[..cells.len()],
            "poll {i}: cells are a prefix"
        );
    }
}

#[test]
fn connection_cap_sheds_excess_connections_with_503() {
    use pythia_serve::http::ClientConn;

    let (_handle, addr) = spawn(ServeConfig {
        workers: 0,
        queue_cap: 1,
        sim_threads: 1,
        max_conns: 1,
        ..ServeConfig::default()
    });

    // Occupy the only slot with a kept-alive connection.
    let mut held = ClientConn::connect(&addr).expect("connect");
    let reply = held.request("GET", "/metrics", b"").expect("first request");
    assert_eq!(reply.status, 200);

    // Any further connection is shed with a clean 503.
    let err = client::figures(&addr).expect_err("over the cap");
    assert!(err.contains("503"), "{err}");

    // Releasing the slot restores service (the handler needs a moment to
    // observe the close).
    drop(held);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match client::figures(&addr) {
            Ok(_) => break,
            Err(e) if std::time::Instant::now() < deadline => {
                assert!(e.contains("503"), "unexpected error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
}

#[test]
fn idle_connections_get_408_and_close() {
    use std::io::{Read, Write};

    let (handle, addr) = spawn(ServeConfig {
        workers: 0,
        queue_cap: 1,
        sim_threads: 1,
        idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    // Write nothing: the server must answer 408 and close, not hang or
    // silently drop.
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read until close");
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw:?}");
    assert!(handle.conn_stats().timeouts.load(Ordering::Relaxed) >= 1);
    // Writes after the close fail eventually (not strictly asserted —
    // platform-dependent), but the stream is done serving.
    let _ = stream.write_all(b"GET /figures HTTP/1.1\r\n\r\n");
}

/// Schema pin for the `/metrics` JSON view: every key path listed here
/// must stay present. Additions are free; removing or renaming any of
/// these is a breaking change for monitoring clients and must fail here.
#[test]
fn metrics_json_schema_is_pinned() {
    let (_handle, addr) = spawn(ServeConfig {
        workers: 0,
        queue_cap: 4,
        sim_threads: 1,
        ..ServeConfig::default()
    });
    submit_spec(&addr, &tiny_spec("svc-schema", 4_000));
    let metrics = client::metrics(&addr).expect("metrics parse");

    const REQUIRED: &[&str] = &[
        "queue.depth",
        "queue.cap",
        "cells.queued",
        "cells.in_flight",
        "cells.executed",
        "cells.replayed",
        "workers.busy",
        "workers.total",
        "counters.submitted",
        "counters.executed",
        "counters.cache_hits",
        "counters.coalesced",
        "counters.completed",
        "counters.failed",
        "counters.rejected",
        "counters.replayed",
        "counters.cells_executed",
        "counters.cells_replayed",
        "tenants",
        "store.enabled",
        "connections.active",
        "connections.accepted",
        "connections.rejected",
        "connections.requests",
        "connections.timeouts",
        "throughput.sim_instructions",
        "throughput.sim_wall_seconds",
        "throughput.minst_per_sec",
        "latency.routes_us.metrics.count",
        "latency.routes_us.submit.p99",
        "latency.cell_queue_wait_us.count",
        "latency.cell_execution_us.count",
        "latency.journal_fsync_us.count",
    ];
    let mut missing = Vec::new();
    for path in REQUIRED {
        let mut node = Some(&metrics);
        for key in path.split('.') {
            node = node.and_then(|n| n.get(key));
        }
        if node.is_none() {
            missing.push(*path);
        }
    }
    assert!(missing.is_empty(), "removed /metrics keys: {missing:?}");
}

/// `GET /metrics?format=prom` passes the in-repo Prometheus linter and
/// carries the acceptance families: per-route request latency, cell
/// queue-wait, cell execution time, and store hit/miss counters.
#[test]
fn metrics_prom_lints_clean_and_names_required_families() {
    let dir = std::env::temp_dir().join(format!("pythia-serve-prom-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (handle, addr) = spawn(ServeConfig {
        workers: 1,
        queue_cap: 4,
        sim_threads: 1,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let submitted = submit_spec(&addr, &tiny_spec("svc-prom", 4_000));
    client::wait_done(
        &addr,
        &submitted.digest,
        Duration::from_millis(25),
        Duration::from_secs(60),
    )
    .expect("campaign completes");
    // A second fetch of the JSON view makes the route histograms move.
    let _ = client::metrics(&addr).expect("metrics json");

    let text = client::metrics_prom(&addr).expect("prom text");
    let problems = pythia_obs::prom::lint(&text);
    assert!(problems.is_empty(), "prom lint: {problems:?}");
    for family in [
        "pythia_http_request_duration_us",
        "pythia_cell_queue_wait_us",
        "pythia_cell_execution_us",
        "pythia_journal_fsync_us",
        "pythia_store_hits_total",
        "pythia_store_misses_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing family {family} in:\n{text}"
        );
    }
    // The executed cells left real observations behind.
    assert!(
        text.contains("pythia_cell_execution_us_count 2"),
        "two cells executed:\n{text}"
    );
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}
