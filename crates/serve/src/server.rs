//! The campaign service: TCP accept loop + request routing.
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /figures` | figure-registry listing (id, title, panels, cells, digest) |
//! | `POST /campaigns` | submit `{"figure": id}`, `{"spec": {...}}` or `{"campaign": {...}}` |
//! | `GET /campaigns/<digest>` | job status + service counters |
//! | `GET /campaigns/<digest>/result?format=md\|json\|csv` | rendered result |
//!
//! Submissions answer `200` when the digest is already done (cache hit),
//! `202` when queued/running/coalesced, `429` when the bounded queue is
//! full, and `400` for malformed or invalid campaigns. Results answer
//! `409` while the job is still in flight.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use pythia_stats::json::{parse, Json};
use pythia_sweep::codec::{is_digest, Campaign};
use pythia_sweep::ResultStore;

use crate::http::{read_request, write_response, Request, Response};
use crate::scheduler::{JobStatus, Scheduler, SubmitError};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing campaigns (0 allowed for tests).
    pub workers: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// Simulation threads each worker fans a campaign out over.
    pub sim_threads: usize,
    /// On-disk result store directory (`None` = in-memory only).
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_cap: 64,
            sim_threads: 1,
            cache_dir: None,
        }
    }
}

/// A bound, ready-to-serve campaign service.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
}

/// Handle to a server running on a background thread (test harness /
/// embedded use).
pub struct ServerHandle {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared scheduler (counters, direct status checks).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

impl Server {
    /// Binds the service.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound or the cache
    /// directory cannot be opened.
    pub fn bind(addr: &str, config: &ServeConfig) -> Result<Self, String> {
        let store = match &config.cache_dir {
            None => None,
            Some(dir) => Some(ResultStore::open(dir.clone())?),
        };
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let scheduler = Arc::new(Scheduler::start(
            config.workers,
            config.queue_cap,
            config.sim_threads,
            store,
        ));
        Ok(Self {
            listener,
            scheduler,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    ///
    /// # Errors
    ///
    /// Returns a message if the socket address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))
    }

    /// Serves forever on the calling thread, one handler thread per
    /// connection. Only returns on an accept error.
    ///
    /// # Errors
    ///
    /// Returns a message if the listener fails.
    pub fn serve_forever(self) -> Result<(), String> {
        for conn in self.listener.incoming() {
            let stream = conn.map_err(|e| format!("accept: {e}"))?;
            let scheduler = Arc::clone(&self.scheduler);
            std::thread::spawn(move || handle_connection(&scheduler, stream));
        }
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a handle
    /// (the thread is detached; dropping the handle leaves it serving, so
    /// this is for tests and embedded smoke use).
    ///
    /// # Errors
    ///
    /// Returns a message if the socket address cannot be read.
    pub fn spawn(self) -> Result<ServerHandle, String> {
        let addr = self.local_addr()?;
        let scheduler = Arc::clone(&self.scheduler);
        std::thread::spawn(move || {
            if let Err(e) = self.serve_forever() {
                eprintln!("serve: accept loop stopped: {e}");
            }
        });
        Ok(ServerHandle { addr, scheduler })
    }
}

fn handle_connection(scheduler: &Scheduler, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(request) => route(scheduler, &request),
        Err(e) => error_response(400, &format!("bad request: {e}")),
    };
    if let Err(e) = write_response(&mut stream, &response) {
        eprintln!("serve: failed to write response: {e}");
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, Json::obj().set("error", message).render_pretty())
}

/// Routes one request (exposed for in-process tests).
pub fn route(scheduler: &Scheduler, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["figures"]) => figures_response(),
        ("POST", ["campaigns"]) => submit(scheduler, &request.body),
        ("GET", ["campaigns", digest]) => status(scheduler, digest),
        ("GET", ["campaigns", digest, "result"]) => {
            result(scheduler, digest, request.query("format").unwrap_or("json"))
        }
        ("POST", _) | ("GET", _) => error_response(404, "no such route"),
        _ => error_response(405, "method not allowed"),
    }
}

fn figures_response() -> Response {
    // Expanding ~20 registry grids and digesting their canonical JSON is
    // milliseconds of CPU per call, and the listing is constant for the
    // process lifetime (the budget scale is fixed at startup) — render once.
    static LISTING: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    let body = LISTING.get_or_init(|| {
        let list: Vec<Json> = pythia_bench::figures::registry()
            .iter()
            .map(|def| {
                let campaign = pythia_bench::figures::campaign(def.id)
                    .expect("registry entries resolve themselves");
                Json::obj()
                    .set("id", def.id)
                    .set("title", def.title)
                    .set("panels", campaign.panels.len())
                    .set("cells", campaign.cell_count())
                    .set("digest", campaign.digest())
            })
            .collect();
        Json::obj().set("figures", Json::Arr(list)).render_pretty()
    });
    Response::json(200, body.clone())
}

/// Decodes a submission body into a campaign: `{"figure": id}` resolves
/// through the figure registry, `{"spec": {...}}` wraps one canonical
/// spec, `{"campaign": {...}}` is the full canonical form.
fn campaign_of(body: &[u8]) -> Result<Campaign, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let json = parse(text)?;
    match (json.get("figure"), json.get("spec"), json.get("campaign")) {
        (Some(fig), None, None) => {
            let id = fig.as_str().ok_or("\"figure\" must be a string")?;
            pythia_bench::figures::campaign(id)
                .ok_or_else(|| format!("unknown figure {id:?}; see GET /figures"))
        }
        (None, Some(spec), None) => {
            Ok(Campaign::single(pythia_sweep::codec::spec_from_json(spec)?))
        }
        (None, None, Some(campaign)) => Campaign::from_json(campaign),
        _ => Err("body must have exactly one of \"figure\", \"spec\", \"campaign\"".into()),
    }
}

fn submit(scheduler: &Scheduler, body: &[u8]) -> Response {
    let campaign = match campaign_of(body) {
        Ok(c) => c,
        Err(e) => return error_response(400, &e),
    };
    let name = campaign.name.clone();
    match scheduler.submit(campaign) {
        Ok(submission) => {
            let status = if matches!(submission.status, JobStatus::Done(_) | JobStatus::Failed(_)) {
                200
            } else {
                202
            };
            Response::json(
                status,
                Json::obj()
                    .set("digest", submission.digest.as_str())
                    .set("name", name)
                    .set("status", submission.status.label())
                    .set("cached", submission.cached)
                    .set("coalesced", submission.coalesced)
                    .render_pretty(),
            )
        }
        Err(SubmitError::Invalid(e)) => error_response(400, &e),
        Err(SubmitError::Busy { queue_cap }) => Response::json(
            429,
            Json::obj()
                .set("error", "job queue full, retry later")
                .set("queue_cap", queue_cap)
                .render_pretty(),
        ),
    }
}

fn status(scheduler: &Scheduler, digest: &str) -> Response {
    if !is_digest(digest) {
        return error_response(400, &format!("malformed digest {digest:?}"));
    }
    match scheduler.status(digest) {
        None => error_response(404, &format!("unknown campaign {digest:?}")),
        Some((name, job_status)) => {
            let (queued, queue_cap) = scheduler.queue_depth();
            let mut out = Json::obj()
                .set("digest", digest)
                .set("name", name)
                .set("status", job_status.label());
            if let JobStatus::Failed(e) = &job_status {
                out = out.set("error", e.as_str());
            }
            Response::json(
                200,
                out.set(
                    "queue",
                    Json::obj().set("depth", queued).set("cap", queue_cap),
                )
                .set("counters", scheduler.counters().to_json())
                .render_pretty(),
            )
        }
    }
}

fn result(scheduler: &Scheduler, digest: &str, format: &str) -> Response {
    if !is_digest(digest) {
        return error_response(400, &format!("malformed digest {digest:?}"));
    }
    match scheduler.status(digest) {
        None => error_response(404, &format!("unknown campaign {digest:?}")),
        Some((_, JobStatus::Failed(e))) => error_response(409, &format!("campaign failed: {e}")),
        Some((_, JobStatus::Queued | JobStatus::Running)) => {
            error_response(409, "campaign not done yet; poll GET /campaigns/<digest>")
        }
        Some((_, JobStatus::Done(result))) => match result.render(format) {
            Err(e) => error_response(400, &e),
            Ok(rendered) => {
                let content_type = match format {
                    "json" => "application/json",
                    "csv" => "text/csv; charset=utf-8",
                    _ => "text/markdown; charset=utf-8",
                };
                Response {
                    status: 200,
                    content_type,
                    body: rendered.into_bytes(),
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;

    fn req(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: Vec::new(),
            body: body.to_vec(),
        }
    }

    #[test]
    fn routing_edges() {
        let scheduler = Scheduler::start(0, 2, 1, None);
        assert_eq!(route(&scheduler, &req("GET", "/nope", b"")).status, 404);
        assert_eq!(route(&scheduler, &req("PUT", "/figures", b"")).status, 405);
        assert_eq!(
            route(&scheduler, &req("POST", "/campaigns", b"not json")).status,
            400
        );
        assert_eq!(
            route(
                &scheduler,
                &req("POST", "/campaigns", b"{\"figure\":\"nope\"}")
            )
            .status,
            400
        );
        assert_eq!(
            route(&scheduler, &req("GET", "/campaigns/0123456789abcdef", b"")).status,
            404
        );
        assert_eq!(
            route(&scheduler, &req("GET", "/campaigns/zzz", b"")).status,
            400
        );
        let figures = route(&scheduler, &req("GET", "/figures", b""));
        assert_eq!(figures.status, 200);
        let listing = String::from_utf8(figures.body).expect("utf-8");
        assert!(listing.contains("fig09"), "{listing}");
        scheduler.shutdown();
    }
}
